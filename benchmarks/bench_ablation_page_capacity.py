"""Ablation (ours): effect of the leaf-page capacity on the UV-index.

The paper fixes 4 KB pages.  Because the reproduction runs at reduced dataset
scale, the page capacity is the knob that controls how eagerly the adaptive
grid splits; this ablation shows the trade-off between index granularity
(leaf count, construction time) and per-query I/O.
"""

import pytest

from benchmarks.conftest import RTREE_FANOUT, SEED_KNN, emit, scaled_bundle
from repro.analysis.report import format_table
from repro.core.construction import build_uv_index_ic
from repro.core.pnn import UVIndexPNN
from repro.rtree.tree import RTree
from repro.storage.disk import DiskManager

OBJECT_COUNT = 200
CAPACITIES = [4, 8, 16, 32, 64]


@pytest.fixture(scope="module")
def capacity_sweep():
    bundle = scaled_bundle("uniform", OBJECT_COUNT, seed=37)
    rtree = RTree.bulk_load(bundle.objects, disk=DiskManager(), fanout=RTREE_FANOUT)
    results = {}
    for capacity in CAPACITIES:
        disk = DiskManager()
        index, stats = build_uv_index_ic(
            bundle.objects,
            bundle.domain,
            rtree=rtree,
            disk=disk,
            page_capacity=capacity,
            seed_knn=SEED_KNN,
        )
        pnn = UVIndexPNN(index, objects=bundle.objects)
        avg_io = sum(
            pnn.query(q, compute_probabilities=False).io.page_reads
            for q in bundle.queries
        ) / len(bundle.queries)
        avg_candidates = sum(
            pnn.query(q, compute_probabilities=False).candidates_examined
            for q in bundle.queries
        ) / len(bundle.queries)
        results[capacity] = (index.statistics(), stats, avg_io, avg_candidates)
    return results


def test_ablation_page_capacity(benchmark, capacity_sweep, capsys):
    rows = []
    for capacity in CAPACITIES:
        index_stats, stats, avg_io, avg_candidates = capacity_sweep[capacity]
        rows.append(
            [
                capacity,
                index_stats["leaf_nodes"],
                index_stats["nonleaf_nodes"],
                avg_candidates,
                avg_io,
                stats.total_seconds,
            ]
        )
    table = format_table(
        ["page capacity", "leaves", "non-leaves", "avg candidates", "avg I/O", "Tc (s)"],
        rows,
        title=(
            "Ablation -- leaf-page capacity of the UV-index "
            f"(|O| = {OBJECT_COUNT}, measured).\n"
            "Expected shape: small pages split the grid finely (few candidates "
            "per query, more nodes, slower build); large pages do the opposite."
        ),
    )
    emit(capsys, table)

    fine_stats = capacity_sweep[CAPACITIES[0]]
    coarse_stats = capacity_sweep[CAPACITIES[-1]]
    # Finer pages -> more leaves and fewer candidates per query.
    assert fine_stats[0]["leaf_nodes"] >= coarse_stats[0]["leaf_nodes"]
    assert fine_stats[3] <= coarse_stats[3] + 1e-9

    benchmark(lambda: capacity_sweep[CAPACITIES[2]][2])
