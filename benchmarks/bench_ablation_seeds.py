"""Ablation (ours): effect of the seed-sector count k_s on Algorithm 2.

The paper fixes k_s = 8 sectors.  This ablation varies k_s and reports the
size of the resulting cr-object sets and the construction time: too few seeds
leave a large initial possible region (weak pruning), while many seeds cost
more during initialisation for diminishing returns.
"""

import pytest

from benchmarks.conftest import (
    PAGE_CAPACITY,
    RTREE_FANOUT,
    SEED_KNN,
    emit,
    scaled_bundle,
)
from repro.analysis.report import format_table
from repro.core.construction import build_uv_index_ic
from repro.rtree.tree import RTree
from repro.storage.disk import DiskManager

OBJECT_COUNT = 200
SECTOR_COUNTS = [2, 4, 8, 16]


@pytest.fixture(scope="module")
def sector_sweep():
    bundle = scaled_bundle("uniform", OBJECT_COUNT, seed=19)
    rtree = RTree.bulk_load(bundle.objects, disk=DiskManager(), fanout=RTREE_FANOUT)
    results = {}
    for sectors in SECTOR_COUNTS:
        _, stats = build_uv_index_ic(
            bundle.objects,
            bundle.domain,
            rtree=rtree,
            disk=DiskManager(),
            page_capacity=PAGE_CAPACITY,
            seed_knn=SEED_KNN,
            seed_sectors=sectors,
        )
        results[sectors] = stats
    return results


def test_ablation_seed_sectors(benchmark, sector_sweep, capsys):
    rows = []
    for sectors in SECTOR_COUNTS:
        stats = sector_sweep[sectors]
        rows.append(
            [
                sectors,
                stats.avg_cr_objects,
                100.0 * stats.c_pruning_ratio,
                stats.total_seconds,
            ]
        )
    table = format_table(
        ["k_s (sectors)", "avg |Ci|", "pruning ratio (%)", "Tc (s)"],
        rows,
        title=(
            "Ablation -- seed sectors k_s in Algorithm 2 "
            f"(|O| = {OBJECT_COUNT}, measured).\n"
            "Expected shape: very few seeds weaken pruning (larger |Ci|); the "
            "paper's k_s = 8 sits near the knee of the curve."
        ),
    )
    emit(capsys, table)

    # With only 2 sectors the initial possible region is larger, so pruning
    # should not be better than with 8 sectors.
    assert sector_sweep[2].avg_cr_objects >= sector_sweep[8].avg_cr_objects * 0.9

    benchmark(lambda: sector_sweep[8].avg_cr_objects)
