"""Batch PNN evaluation: shared leaf reads vs sequential queries.

Not a paper figure -- this measures the engine's ``batch()`` query plane: a
clustered workload (many queries landing in few UV-index leaves) reads each
leaf's page list once per batch instead of once per query, so page reads
drop while the answers stay identical to sequential ``pnn()`` calls.
"""

import numpy as np
import pytest

from benchmarks.conftest import (
    PAGE_CAPACITY,
    RTREE_FANOUT,
    SEED_KNN,
    emit,
    scaled_bundle,
)
from repro.analysis.report import format_table
from repro.engine import DiagramConfig, QueryEngine
from repro.geometry.point import Point

BATCH_SIZES = [10, 50, 200]
CLUSTER_SPAN = 600.0  # side of the square the clustered queries fall in


@pytest.fixture(scope="module")
def batch_setup():
    bundle = scaled_bundle("uniform", 400, seed=37)
    engine = QueryEngine.build(
        bundle.objects,
        bundle.domain,
        DiagramConfig(
            backend="ic",
            page_capacity=PAGE_CAPACITY,
            rtree_fanout=RTREE_FANOUT,
            seed_knn=SEED_KNN,
        ),
    )
    return bundle, engine


def clustered_queries(domain, count, seed):
    rng = np.random.default_rng(seed)
    x0 = domain.xmin + 0.4 * domain.width
    y0 = domain.ymin + 0.4 * domain.height
    return [
        Point(x0 + float(rng.uniform(0, CLUSTER_SPAN)),
              y0 + float(rng.uniform(0, CLUSTER_SPAN)))
        for _ in range(count)
    ]


def test_batch_pnn_saves_page_reads(benchmark, batch_setup, capsys):
    """Print sequential vs batch page reads per batch size, then time batch()."""
    bundle, engine = batch_setup
    rows = []
    for size in BATCH_SIZES:
        workload = clustered_queries(bundle.domain, size, seed=size)
        before = engine.disk.stats.snapshot()
        sequential = [engine.pnn(q, compute_probabilities=False) for q in workload]
        seq_reads = engine.disk.stats.delta(before).page_reads

        batch = engine.batch(workload, compute_probabilities=False)
        assert [r.answer_ids for r in batch] == [r.answer_ids for r in sequential]
        assert batch.page_reads <= seq_reads
        saving = 1.0 - batch.page_reads / seq_reads if seq_reads else 0.0
        rows.append([size, seq_reads, batch.page_reads, batch.cache_hits, saving])

    emit(capsys, format_table(
        ["batch size", "sequential reads", "batch reads", "cache hits", "saving"],
        rows,
        title=("batch() vs sequential pnn() page reads, clustered workload "
               "(UV-index backend; answers verified identical)"),
        float_format="{:.1%}",
    ))

    workload = clustered_queries(bundle.domain, BATCH_SIZES[1], seed=1)
    benchmark(lambda: engine.batch(workload, compute_probabilities=False))
