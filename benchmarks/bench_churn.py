#!/usr/bin/env python
"""Churn benchmark: a sustained update stream under background checkpoints.

Opens a live deployment, runs a seeded insert/delete stream with interleaved
PNN queries while the background :class:`~repro.wal.checkpoint.Checkpointer`
folds the WAL into new snapshot generations, and gates three properties:

* **progress** -- at least two checkpoints completed during the stream
  (the generation advanced to >= 3) and the WAL was truncated each time;
* **steady state** -- the deployment does not balloon: the object population
  stays inside a band around its starting size and consecutive snapshot
  generations stay within 2x of each other on disk;
* **bounded latency** -- with ``--check``, query p99 must stay within
  ``--max-regression`` times the checked-in baseline
  (``benchmarks/baseline/BENCH_churn.json``).

Standalone on purpose (no pytest), mirroring ``ci_smoke.py``::

    python benchmarks/bench_churn.py --output-dir bench-out \
        --baseline benchmarks/baseline/BENCH_churn.json --check
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.datasets.synthetic import (  # noqa: E402
    generate_query_points,
    generate_uniform_objects,
)
from repro.engine import DiagramConfig, QueryEngine  # noqa: E402
from repro.queries.spec import PNNQuery  # noqa: E402
from repro.engine.snapshot import list_generations, wal_path  # noqa: E402
from repro.wal.checkpoint import Checkpointer  # noqa: E402
from repro.wal.drill import synthesize_object  # noqa: E402

OBJECTS = 120
UPDATES = 400
QUERY_EVERY = 4  # one PNN query per this many updates
CHECKPOINT_INTERVAL = 0.2  # seconds between background checkpoint attempts
BACKEND = "grid"
SEED = 97


def percentile(samples: list[float], fraction: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(fraction * (len(ordered) - 1) + 0.5))
    return ordered[index]


def run_churn(directory: str) -> dict:
    """The measured section: stream updates + queries under the checkpointer."""
    engine = QueryEngine.open_live(directory)
    checkpointer = Checkpointer(engine, interval=CHECKPOINT_INTERVAL)
    rng = random.Random(SEED)
    queries = generate_query_points(32, engine.domain, seed=SEED + 1)
    target = len(engine)
    next_oid = max(engine.by_id) + 1000
    latencies: list[float] = []
    generations_seen = {engine.generation}
    start = time.perf_counter()
    checkpointer.start()
    try:
        for step in range(UPDATES):
            live = sorted(engine.by_id)
            # Hold the population near its starting size: delete whenever we
            # are above target, insert whenever we are below.
            if len(live) > target or (len(live) > 1 and rng.random() < 0.5):
                engine.delete(live[rng.randrange(len(live))])
            else:
                engine.insert(synthesize_object(next_oid, rng, engine.domain))
                next_oid += 1
            if step % QUERY_EVERY == 0:
                query = queries[(step // QUERY_EVERY) % len(queries)]
                t0 = time.perf_counter()
                engine.execute(PNNQuery(query))
                latencies.append(time.perf_counter() - t0)
            generations_seen.add(engine.generation)
        # Let the checkpointer fold the tail before measuring the end state.
        deadline = time.monotonic() + 30.0
        while engine.pending_wal_records > 0 and time.monotonic() < deadline:
            time.sleep(0.05)
            generations_seen.add(engine.generation)
    finally:
        checkpointer.stop()
        if checkpointer.last_error is not None:
            raise SystemExit(f"background checkpoint failed: "
                             f"{checkpointer.last_error!r}")
    elapsed = time.perf_counter() - start

    generations = list_generations(directory)
    sizes = {
        gen: (Path(directory) / name).stat().st_size
        for gen, name in generations.items()
    }
    payload = {
        "benchmark": "churn",
        "backend": BACKEND,
        "objects_start": target,
        "objects_end": len(engine),
        "updates": UPDATES,
        "queries": len(latencies),
        "elapsed_seconds": elapsed,
        "updates_per_second": UPDATES / elapsed if elapsed else 0.0,
        "query_p50_ms": percentile(latencies, 0.50) * 1000.0,
        "query_p99_ms": percentile(latencies, 0.99) * 1000.0,
        "checkpoints": engine.generation - 1,
        "final_generation": engine.generation,
        "generations_on_disk": sorted(generations),
        "snapshot_bytes": {str(g): s for g, s in sorted(sizes.items())},
        "wal_pending_records": engine.pending_wal_records,
        "wal_bytes": Path(wal_path(directory)).stat().st_size,
    }
    engine.close_wal()
    return payload


def hard_gates(payload: dict) -> list[str]:
    """Invariant gates that apply with or without ``--check``."""
    failures = []
    if payload["final_generation"] < 3:
        failures.append(
            f"fewer than two checkpoints completed during the stream "
            f"(final generation {payload['final_generation']})"
        )
    if payload["wal_pending_records"] != 0:
        failures.append(
            f"WAL not folded at end of run: "
            f"{payload['wal_pending_records']} pending records"
        )
    drift = abs(payload["objects_end"] - payload["objects_start"])
    if drift > payload["objects_start"] * 0.5:
        failures.append(
            f"population drifted from {payload['objects_start']} to "
            f"{payload['objects_end']} (not steady)"
        )
    sizes = [s for _, s in sorted(payload["snapshot_bytes"].items())]
    for earlier, later in zip(sizes, sizes[1:]):
        ratio = later / earlier if earlier else float("inf")
        if not 0.5 <= ratio <= 2.0:
            failures.append(
                f"snapshot size not steady across generations: {sizes} "
                f"(ratio {ratio:.2f} outside 0.5-2.0)"
            )
            break
    return failures


def check_regression(payload: dict, baseline_path: Path,
                     max_regression: float) -> int:
    baseline = json.loads(baseline_path.read_text())
    allowed = baseline["query_p99_ms"] * max_regression
    got = payload["query_p99_ms"]
    print(f"regression gate: churn query p99 {got:.2f}ms vs baseline "
          f"{baseline['query_p99_ms']:.2f}ms "
          f"(allowed <= {allowed:.2f}ms at {max_regression:.1f}x)")
    if got > allowed:
        print(f"FAIL: churn query p99 regressed "
              f"{got / baseline['query_p99_ms']:.2f}x over baseline "
              f"(limit {max_regression:.1f}x)", file=sys.stderr)
        return 1
    print("gate passed")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output-dir", type=Path, default=Path("bench-out"))
    parser.add_argument(
        "--baseline", type=Path,
        default=Path(__file__).parent / "baseline" / "BENCH_churn.json",
    )
    parser.add_argument("--check", action="store_true",
                        help="fail on p99 regression vs the baseline")
    parser.add_argument("--max-regression", type=float, default=3.0)
    args = parser.parse_args(argv)

    objects, domain = generate_uniform_objects(OBJECTS, seed=SEED)
    engine = QueryEngine.build(objects, domain, DiagramConfig(backend=BACKEND))
    with tempfile.TemporaryDirectory() as tmp:
        directory = str(Path(tmp) / "live")
        engine.save_generation(directory)
        payload = run_churn(directory)

    args.output_dir.mkdir(parents=True, exist_ok=True)
    out = args.output_dir / "BENCH_churn.json"
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(json.dumps(payload, indent=2, sort_keys=True))
    print(f"wrote {out}")

    failures = hard_gates(payload)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if failures:
        return 1
    if args.check:
        return check_regression(payload, args.baseline, args.max_regression)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
