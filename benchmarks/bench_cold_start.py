"""Cold-start serving: rebuilding a diagram vs reopening its snapshot.

Not a paper figure -- this measures the storage redesign's reason to exist:
a UV-diagram built once and saved with ``QueryEngine.save()`` can be served
by a fresh process via ``QueryEngine.open()`` without reconstruction.  The
table (and the JSON line below it) compares, per dataset size, the build
time against the open time for each store kind; answers are verified
identical before any number is reported.
"""

import json
import time

import pytest

from benchmarks.conftest import (
    PAGE_CAPACITY,
    RTREE_FANOUT,
    SEED_KNN,
    emit,
    scaled_bundle,
)
from repro.analysis.report import format_table
from repro.engine import DiagramConfig, QueryEngine

SIZES = [100, 200, 400]
STORE_KINDS = ["file", "mmap", "memory"]
VERIFY_QUERIES = 6


@pytest.fixture(scope="module")
def snapshots(tmp_path_factory):
    """Build and save one engine per size, recording the build times."""
    root = tmp_path_factory.mktemp("cold_start")
    built = {}
    for size in SIZES:
        bundle = scaled_bundle("uniform", size, seed=size)
        start = time.perf_counter()
        engine = QueryEngine.build(
            bundle.objects,
            bundle.domain,
            DiagramConfig(
                backend="ic",
                page_capacity=PAGE_CAPACITY,
                rtree_fanout=RTREE_FANOUT,
                seed_knn=SEED_KNN,
            ),
        )
        build_seconds = time.perf_counter() - start
        path = str(root / f"uv_{size}.snap")
        engine.save(path)
        built[size] = (bundle, engine, path, build_seconds)
    return built


def test_open_is_faster_than_rebuild(snapshots, capsys):
    rows = []
    results = []
    for size in SIZES:
        bundle, engine, path, build_seconds = snapshots[size]
        workload = bundle.queries[:VERIFY_QUERIES]
        reference = [engine.pnn(q, compute_probabilities=False).answer_ids
                     for q in workload]
        open_seconds = {}
        for kind in STORE_KINDS:
            start = time.perf_counter()
            reopened = QueryEngine.open(path, store=kind)
            open_seconds[kind] = time.perf_counter() - start
            got = [reopened.pnn(q, compute_probabilities=False).answer_ids
                   for q in workload]
            assert got == reference, f"{kind} diverged at size {size}"
            assert open_seconds[kind] < build_seconds
        speedup = build_seconds / max(open_seconds["mmap"], 1e-9)
        rows.append([
            size, build_seconds,
            open_seconds["file"], open_seconds["mmap"], open_seconds["memory"],
            speedup,
        ])
        results.append({
            "objects": size,
            "build_seconds": build_seconds,
            "open_seconds": open_seconds,
            "speedup_mmap": speedup,
        })

    emit(capsys, format_table(
        ["|O|", "build s", "open(file) s", "open(mmap) s", "open(memory) s",
         "speedup"],
        rows,
        title=("cold start: rebuild vs QueryEngine.open, IC backend "
               "(answers verified identical)"),
        float_format="{:.4f}",
    ))
    emit(capsys, json.dumps({"benchmark": "cold_start", "results": results}))


def test_open_time(snapshots, benchmark):
    """Time the cold-start path itself on the largest snapshot."""
    _, _, path, _ = snapshots[SIZES[-1]]
    benchmark(lambda: QueryEngine.open(path, store="mmap"))
