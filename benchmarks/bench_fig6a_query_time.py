"""Figure 6(a): PNN query time vs dataset size, UV-index vs R-tree.

Paper: both curves grow with |O|; the UV-diagram outperforms the R-tree in
all cases (about 50% of the R-tree's time at |O| = 60K).
"""

import pytest

from benchmarks.conftest import (
    PAGE_CAPACITY,
    RTREE_FANOUT,
    SEED_KNN,
    SWEEP_SIZES,
    emit,
    scaled_bundle,
)
from repro.analysis.report import format_table
from repro.core.construction import build_uv_index_ic
from repro.core.pnn import UVIndexPNN
from repro.rtree.tree import RTree
from repro.storage.disk import DiskManager
from repro.storage.object_store import ObjectStore

# Query times (ms) read off Figure 6(a) of the paper (approximate).
PAPER_SERIES_MS = {
    "uv-index": {10_000: 30, 30_000: 60, 50_000: 95, 80_000: 150},
    "r-tree": {10_000: 55, 30_000: 110, 50_000: 190, 80_000: 290},
}


@pytest.fixture(scope="module")
def largest_uv_pnn():
    """A UV-index PNN processor at the largest sweep size (for timing)."""
    bundle = scaled_bundle("uniform", SWEEP_SIZES[-1], seed=SWEEP_SIZES[-1])
    disk = DiskManager()
    store = ObjectStore(disk)
    store.bulk_load(bundle.objects)
    rtree = RTree.bulk_load(bundle.objects, disk=disk, fanout=RTREE_FANOUT)
    index, _ = build_uv_index_ic(
        bundle.objects,
        bundle.domain,
        rtree=rtree,
        disk=disk,
        page_capacity=PAGE_CAPACITY,
        seed_knn=SEED_KNN,
    )
    return bundle, UVIndexPNN(index, object_store=store)


def test_fig6a_query_time_sweep(benchmark, uniform_query_sweep, largest_uv_pnn, capsys):
    """Print the Tq-vs-|O| series and benchmark one UV-index PNN query."""
    rows = []
    for size, results in uniform_query_sweep.items():
        uv = results["uv-index"]
        rt = results["r-tree"]
        ratio = rt.avg_time_ms / uv.avg_time_ms if uv.avg_time_ms else float("inf")
        rows.append([size, uv.avg_time_ms, rt.avg_time_ms, ratio])
    table = format_table(
        ["|O|", "UV-index Tq (ms)", "R-tree Tq (ms)", "R-tree / UV"],
        rows,
        title=(
            "Figure 6(a) -- PNN query time vs |O| (measured, scaled workload).\n"
            "Paper shape: both increase with |O|; UV-index wins everywhere "
            "(~2x faster at 60K objects)."
        ),
    )
    emit(capsys, table)

    # Shape assertion: the UV-index should not lose to the R-tree.
    for _size, results in uniform_query_sweep.items():
        assert results["uv-index"].avg_time_ms <= results["r-tree"].avg_time_ms * 1.25

    bundle, pnn = largest_uv_pnn
    query = bundle.queries[0]
    answers = benchmark(lambda: len(pnn.query(query).answers))
    assert answers >= 1
