"""Figure 6(b): PNN query I/O vs dataset size, UV-index vs R-tree.

Paper: the UV-index needs significantly fewer page reads than the R-tree
(about one seventh at |O| = 70K); R-tree I/O grows with |O| while UV-index
I/O stays roughly flat.
"""

import pytest

from benchmarks.conftest import (
    PAGE_CAPACITY,
    RTREE_FANOUT,
    SEED_KNN,
    SWEEP_SIZES,
    emit,
    scaled_bundle,
)
from repro.analysis.report import format_table
from repro.core.construction import build_uv_index_ic
from repro.rtree.tree import RTree
from repro.storage.disk import DiskManager

# Approximate series read off Figure 6(b) of the paper.
PAPER_SERIES_IO = {
    "uv-index": {10_000: 1.2, 40_000: 1.3, 70_000: 1.3},
    "r-tree": {10_000: 4.0, 40_000: 7.0, 70_000: 9.0},
}


@pytest.fixture(scope="module")
def point_query_setup():
    """A bare UV-index (no probability work) for timing the point query."""
    bundle = scaled_bundle("uniform", SWEEP_SIZES[-1], seed=31)
    disk = DiskManager()
    rtree = RTree.bulk_load(bundle.objects, disk=DiskManager(), fanout=RTREE_FANOUT)
    index, _ = build_uv_index_ic(
        bundle.objects,
        bundle.domain,
        rtree=rtree,
        disk=disk,
        page_capacity=PAGE_CAPACITY,
        seed_knn=SEED_KNN,
    )
    return bundle, index


def test_fig6b_query_io_sweep(benchmark, uniform_query_sweep, point_query_setup, capsys):
    """Print the I/O-vs-|O| series and benchmark the UV-index point query."""
    rows = []
    for size, results in uniform_query_sweep.items():
        uv = results["uv-index"]
        rt = results["r-tree"]
        ratio = rt.avg_index_io / uv.avg_index_io if uv.avg_index_io else float("inf")
        rows.append([size, uv.avg_index_io, rt.avg_index_io, ratio, uv.avg_io, rt.avg_io])
    table = format_table(
        [
            "|O|",
            "UV-index I/O",
            "R-tree I/O",
            "R-tree / UV",
            "UV total I/O",
            "R-tree total I/O",
        ],
        rows,
        title=(
            "Figure 6(b) -- index page reads per PNN query vs |O| (measured;\n"
            "the first two columns are index-structure reads, as in the paper; "
            "the last two add object retrieval, identical for both indexes).\n"
            "Paper shape: R-tree I/O grows with |O|, UV-index I/O stays flat "
            "and is several times smaller (about 1/7 at 70K)."
        ),
    )
    emit(capsys, table)

    for _size, results in uniform_query_sweep.items():
        assert results["uv-index"].avg_index_io <= results["r-tree"].avg_index_io
    uv_series = [results["uv-index"].avg_index_io for results in uniform_query_sweep.values()]
    assert max(uv_series) <= min(uv_series) + 2.0

    bundle, index = point_query_setup
    query = bundle.queries[1]
    leaf_entries = benchmark(lambda: len(index.point_query(query)[1]))
    assert leaf_entries >= 1
