"""Figure 6(c): breakdown of the PNN query time into its components.

Paper: object retrieval and probability computation cost roughly the same for
both indexes; the R-tree spends much more time on index traversal, which is
what makes it slower overall.
"""

from benchmarks.conftest import SWEEP_SIZES, emit
from repro.analysis.report import format_table

# Approximate shares read off Figure 6(c) of the paper (|O| = 30K).
PAPER_SHARES = {
    "uv-index": {"index": 0.18, "object_retrieval": 0.27, "probability": 0.55},
    "r-tree": {"index": 0.45, "object_retrieval": 0.20, "probability": 0.35},
}


def test_fig6c_time_breakdown(benchmark, uniform_query_sweep, capsys):
    size = SWEEP_SIZES[-1]
    results = uniform_query_sweep[size]
    rows = []
    for name in ("uv-index", "r-tree"):
        per_query = results[name].timing_ms()
        rows.append(
            [
                name,
                per_query.get("index", 0.0),
                per_query.get("object_retrieval", 0.0),
                per_query.get("probability", 0.0),
                results[name].avg_time_ms,
            ]
        )
    table = format_table(
        ["index", "traversal (ms)", "object retrieval (ms)", "probability (ms)", "total (ms)"],
        rows,
        title=(
            f"Figure 6(c) -- components of the PNN query time at |O| = {size} "
            "(measured).\nPaper shape: retrieval and probability costs are "
            "similar for both indexes; the R-tree pays much more for index "
            "traversal."
        ),
    )
    emit(capsys, table)

    uv = results["uv-index"].timing_ms()
    rt = results["r-tree"].timing_ms()
    # The R-tree's traversal component must dominate the UV-index's.
    assert rt.get("index", 0.0) >= uv.get("index", 0.0)

    benchmark(lambda: results["uv-index"].timing_ms())
