"""Figure 6(d): PNN query time vs uncertainty-region size.

Paper: the query time of both indexes increases with the region size (larger
regions mean more answer objects), and the UV-index stays faster than the
R-tree throughout the sweep.
"""

import pytest

from benchmarks.conftest import emit, run_scaled_query_experiment, scaled_bundle
from repro.analysis.report import format_table

OBJECT_COUNT = 200
DIAMETERS = [20.0, 100.0, 200.0, 400.0]

# Approximate values read off Figure 6(d) of the paper (region size 20..100).
PAPER_SERIES_MS = {
    "uv-index": {20: 45, 60: 75, 100: 110},
    "r-tree": {20: 80, 60: 120, 100: 185},
}


@pytest.fixture(scope="module")
def uncertainty_sweep():
    results = {}
    for diameter in DIAMETERS:
        bundle = scaled_bundle("uniform", OBJECT_COUNT, diameter=diameter, seed=17)
        results[diameter] = run_scaled_query_experiment(bundle)
    return results


def test_fig6d_query_time_vs_uncertainty(benchmark, uncertainty_sweep, capsys):
    rows = []
    for diameter, results in uncertainty_sweep.items():
        uv = results["uv-index"]
        rt = results["r-tree"]
        rows.append([diameter, uv.avg_answers, uv.avg_time_ms, rt.avg_time_ms])
    table = format_table(
        ["diameter", "avg answers", "UV-index Tq (ms)", "R-tree Tq (ms)"],
        rows,
        title=(
            f"Figure 6(d) -- PNN query time vs uncertainty-region size (|O| = {OBJECT_COUNT}).\n"
            "Paper shape: time grows with the region size for both indexes; "
            "the UV-index remains the faster of the two."
        ),
    )
    emit(capsys, table)

    diameters = list(uncertainty_sweep)
    uv_times = [uncertainty_sweep[d]["uv-index"].avg_time_ms for d in diameters]
    answer_counts = [uncertainty_sweep[d]["uv-index"].avg_answers for d in diameters]
    # Bigger regions -> more answer objects (the driver of the time growth).
    assert answer_counts[-1] > answer_counts[0]
    # And the time at the largest diameter exceeds the time at the smallest.
    assert uv_times[-1] > uv_times[0] * 0.8
    for d in diameters:
        assert (
            uncertainty_sweep[d]["uv-index"].avg_time_ms
            <= uncertainty_sweep[d]["r-tree"].avg_time_ms * 1.25
        )

    benchmark(lambda: [uncertainty_sweep[d]["uv-index"].avg_time_ms for d in diameters])
