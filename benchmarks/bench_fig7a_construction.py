"""Figure 7(a): index construction time vs |O| for Basic, ICR and IC.

Paper: the Basic method (exact UV-cells via Algorithm 1 over all objects)
blows up sharply with the dataset size (97 hours at 50K objects), while the
pruning-based ICR and IC stay flat by comparison, with IC the cheapest.
"""

import pytest

from benchmarks.conftest import emit, run_scaled_construction, scaled_bundle
from repro.analysis.report import format_table

# The Basic method is intentionally run only on tiny datasets -- that is the
# point of the figure.
BASIC_SIZES = [20, 40, 60]
PRUNED_SIZES = [100, 200, 400]

PAPER_SERIES_HOURS = {
    "basic": {10_000: 4, 30_000: 35, 50_000: 97},
    "icr": {10_000: 2, 40_000: 18, 70_000: 42},
    "ic": {10_000: 0.3, 40_000: 2.0, 70_000: 4.5},
}


@pytest.fixture(scope="module")
def construction_times():
    times = {"basic": {}, "icr": {}, "ic": {}}
    for size in BASIC_SIZES:
        bundle = scaled_bundle("uniform", size, diameter=300.0, seed=size)
        times["basic"][size] = run_scaled_construction(bundle, "basic").seconds
        times["icr"][size] = run_scaled_construction(bundle, "icr").seconds
        times["ic"][size] = run_scaled_construction(bundle, "ic").seconds
    for size in PRUNED_SIZES:
        bundle = scaled_bundle("uniform", size, seed=size)
        times["icr"][size] = run_scaled_construction(bundle, "icr").seconds
        times["ic"][size] = run_scaled_construction(bundle, "ic").seconds
    return times


def test_fig7a_construction_time(benchmark, construction_times, capsys):
    sizes = sorted(set(BASIC_SIZES) | set(PRUNED_SIZES))
    rows = []
    for size in sizes:
        rows.append(
            [
                size,
                construction_times["basic"].get(size, float("nan")),
                construction_times["icr"].get(size, float("nan")),
                construction_times["ic"].get(size, float("nan")),
            ]
        )
    table = format_table(
        ["|O|", "Basic Tc (s)", "ICR Tc (s)", "IC Tc (s)"],
        rows,
        title=(
            "Figure 7(a) -- construction time vs |O| (measured; Basic only at "
            "tiny sizes, exactly because it explodes).\n"
            "Paper shape: Basic >> ICR > IC; Basic reaches 97 hours at 50K "
            "objects while IC stays in minutes-to-hours territory."
        ),
    )
    emit(capsys, table)

    # Shape assertions at the common sizes.
    for size in BASIC_SIZES:
        assert construction_times["ic"][size] <= construction_times["basic"][size]
    # Basic grows super-linearly: doubling |O| should more than double Tc.
    assert construction_times["basic"][BASIC_SIZES[-1]] > 2.0 * construction_times["basic"][BASIC_SIZES[0]]
    # IC is the cheapest pruned method at the largest pruned size.
    largest = PRUNED_SIZES[-1]
    assert construction_times["ic"][largest] <= construction_times["icr"][largest]

    benchmark(lambda: construction_times["ic"][PRUNED_SIZES[0]])
