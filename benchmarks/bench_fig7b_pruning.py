"""Figure 7(b): pruning ratios of I-pruning and C-pruning vs |O|.

Paper: at |O| = 40K, I-pruning removes 90.9% of the objects and C-pruning
(cumulatively) 95.5%; both ratios grow slightly with the dataset size.
"""

from benchmarks.conftest import SWEEP_SIZES, emit
from repro.analysis.report import format_table

PAPER_SERIES_PERCENT = {
    "i-pruning": {10_000: 88.0, 40_000: 90.9, 80_000: 93.0},
    "c-pruning": {10_000: 93.5, 40_000: 95.5, 80_000: 96.5},
}


def test_fig7b_pruning_ratios(benchmark, construction_sweep, capsys):
    rows = []
    for size in SWEEP_SIZES:
        stats = construction_sweep["ic"][size].stats
        rows.append(
            [
                size,
                100.0 * stats.i_pruning_ratio,
                100.0 * stats.c_pruning_ratio,
                stats.avg_cr_objects,
            ]
        )
    table = format_table(
        ["|O|", "I-pruning pc (%)", "C-pruning pc (%)", "avg |Ci|"],
        rows,
        title=(
            "Figure 7(b) -- pruning ratio of I- and C-pruning vs |O| (measured).\n"
            "Paper shape: ~90% after I-pruning and ~95% after C-pruning at 40K "
            "objects, slowly increasing with |O|."
        ),
    )
    emit(capsys, table)

    for size in SWEEP_SIZES:
        stats = construction_sweep["ic"][size].stats
        # C-pruning is applied after I-pruning, so its cumulative ratio cannot
        # be lower.
        assert stats.c_pruning_ratio >= stats.i_pruning_ratio - 1e-9
        assert stats.i_pruning_ratio >= 0.5
    # The ratios improve (or at least do not degrade much) with more objects.
    first = construction_sweep["ic"][SWEEP_SIZES[0]].stats.c_pruning_ratio
    last = construction_sweep["ic"][SWEEP_SIZES[-1]].stats.c_pruning_ratio
    assert last >= first - 0.05

    benchmark(lambda: construction_sweep["ic"][SWEEP_SIZES[0]].stats.c_pruning_ratio)
