"""Figure 7(c): construction time of IC vs ICR over the |O| sweep.

Paper: IC is far cheaper than ICR (about 10% of ICR's time at |O| = 70K),
because ICR must build exact UV-cells from the cr-objects to extract
r-objects before indexing.
"""

from benchmarks.conftest import SWEEP_SIZES, emit
from repro.analysis.report import format_table

PAPER_SERIES_HOURS = {
    "icr": {10_000: 2, 40_000: 18, 70_000: 42},
    "ic": {10_000: 0.3, 40_000: 2.0, 70_000: 4.5},
}


def test_fig7c_ic_vs_icr(benchmark, construction_sweep, capsys):
    rows = []
    for size in SWEEP_SIZES:
        ic_seconds = construction_sweep["ic"][size].seconds
        icr_seconds = construction_sweep["icr"][size].seconds
        rows.append(
            [size, icr_seconds, ic_seconds, ic_seconds / icr_seconds if icr_seconds else 0.0]
        )
    table = format_table(
        ["|O|", "ICR Tc (s)", "IC Tc (s)", "IC / ICR"],
        rows,
        title=(
            "Figure 7(c) -- construction time of IC vs ICR (measured).\n"
            "Paper shape: IC costs a small fraction of ICR (about 10% at 70K "
            "objects) and the gap widens with |O|."
        ),
    )
    emit(capsys, table)

    for size in SWEEP_SIZES:
        assert construction_sweep["ic"][size].seconds <= construction_sweep["icr"][size].seconds
    # The relative advantage should not shrink as the dataset grows.
    first_ratio = (
        construction_sweep["ic"][SWEEP_SIZES[0]].seconds
        / construction_sweep["icr"][SWEEP_SIZES[0]].seconds
    )
    last_ratio = (
        construction_sweep["ic"][SWEEP_SIZES[-1]].seconds
        / construction_sweep["icr"][SWEEP_SIZES[-1]].seconds
    )
    assert last_ratio <= first_ratio * 1.4

    benchmark(lambda: construction_sweep["ic"][SWEEP_SIZES[0]].seconds)
