"""Figure 7(d): breakdown of the ICR construction time.

Paper: for most dataset sizes ICR spends the bulk of its construction time
generating exact r-objects (building UV-cells from the cr-objects); I/C
pruning and indexing are comparatively cheap.
"""

from benchmarks.conftest import SWEEP_SIZES, emit
from repro.analysis.report import format_table

PAPER_SHARES = {"pruning": 0.15, "r_objects": 0.70, "indexing": 0.15}


def test_fig7d_icr_breakdown(benchmark, construction_sweep, capsys):
    rows = []
    for size in SWEEP_SIZES:
        fractions = construction_sweep["icr"][size].phase_fractions()
        rows.append(
            [
                size,
                100.0 * fractions.get("pruning", 0.0),
                100.0 * fractions.get("r_objects", 0.0),
                100.0 * fractions.get("indexing", 0.0),
            ]
        )
    table = format_table(
        ["|O|", "I+C pruning (%)", "r-object generation (%)", "indexing (%)"],
        rows,
        title=(
            "Figure 7(d) -- ICR construction-time breakdown (measured).\n"
            "Paper shape: generating exact r-objects dominates the ICR cost."
        ),
    )
    emit(capsys, table)

    for size in SWEEP_SIZES:
        fractions = construction_sweep["icr"][size].phase_fractions()
        assert fractions.get("r_objects", 0.0) >= fractions.get("indexing", 0.0)
        assert sum(fractions.values()) > 0.99

    benchmark(lambda: construction_sweep["icr"][SWEEP_SIZES[0]].phase_fractions())
