"""Figure 7(e): breakdown of the IC construction time.

Paper: IC skips r-object generation entirely; its time is split between
I/C pruning and indexing the cr-objects with Algorithm 3.
"""

from benchmarks.conftest import SWEEP_SIZES, emit
from repro.analysis.report import format_table

PAPER_SHARES = {"pruning": 0.55, "indexing": 0.45}


def test_fig7e_ic_breakdown(benchmark, construction_sweep, capsys):
    rows = []
    for size in SWEEP_SIZES:
        fractions = construction_sweep["ic"][size].phase_fractions()
        rows.append(
            [
                size,
                100.0 * fractions.get("pruning", 0.0),
                100.0 * fractions.get("indexing", 0.0),
            ]
        )
    table = format_table(
        ["|O|", "I+C pruning (%)", "indexing (%)"],
        rows,
        title=(
            "Figure 7(e) -- IC construction-time breakdown (measured).\n"
            "Paper shape: only two components (pruning and indexing); no "
            "r-object generation phase at all."
        ),
    )
    emit(capsys, table)

    for size in SWEEP_SIZES:
        fractions = construction_sweep["ic"][size].phase_fractions()
        assert "r_objects" not in fractions
        assert set(fractions) == {"pruning", "indexing"}
        assert sum(fractions.values()) > 0.99

    benchmark(lambda: construction_sweep["ic"][SWEEP_SIZES[0]].phase_fractions())
