"""Figure 7(f): construction time vs uncertainty-region size, IC vs ICR.

Paper: ICR's construction time rises sharply with the region size (larger
regions overlap more, pruning gets harder, and exact r-object generation gets
much more expensive), while IC is comparatively insensitive.
"""

import pytest

from benchmarks.conftest import emit, run_scaled_construction, scaled_bundle
from repro.analysis.report import format_table

OBJECT_COUNT = 150
DIAMETERS = [20.0, 100.0, 200.0, 300.0]

PAPER_SERIES_HOURS = {
    "icr": {20: 0.4, 60: 1.2, 100: 2.7},
    "ic": {20: 0.2, 60: 0.3, 100: 0.4},
}


@pytest.fixture(scope="module")
def uncertainty_construction():
    results = {"ic": {}, "icr": {}}
    for diameter in DIAMETERS:
        bundle = scaled_bundle("uniform", OBJECT_COUNT, diameter=diameter, seed=3)
        results["ic"][diameter] = run_scaled_construction(bundle, "ic")
        results["icr"][diameter] = run_scaled_construction(bundle, "icr")
    return results


def test_fig7f_construction_vs_uncertainty(benchmark, uncertainty_construction, capsys):
    rows = []
    for diameter in DIAMETERS:
        icr = uncertainty_construction["icr"][diameter].seconds
        ic = uncertainty_construction["ic"][diameter].seconds
        rows.append([diameter, icr, ic])
    table = format_table(
        ["diameter", "ICR Tc (s)", "IC Tc (s)"],
        rows,
        title=(
            f"Figure 7(f) -- construction time vs uncertainty-region size "
            f"(|O| = {OBJECT_COUNT}, measured).\n"
            "Paper shape: ICR rises sharply with the region size; IC is "
            "relatively insensitive."
        ),
    )
    emit(capsys, table)

    icr_growth = (
        uncertainty_construction["icr"][DIAMETERS[-1]].seconds
        / uncertainty_construction["icr"][DIAMETERS[0]].seconds
    )
    ic_growth = (
        uncertainty_construction["ic"][DIAMETERS[-1]].seconds
        / uncertainty_construction["ic"][DIAMETERS[0]].seconds
    )
    # ICR degrades at least as fast as IC when the regions grow.
    assert icr_growth >= ic_growth * 0.9
    for diameter in DIAMETERS:
        assert (
            uncertainty_construction["ic"][diameter].seconds
            <= uncertainty_construction["icr"][diameter].seconds * 1.1
        )

    benchmark(lambda: uncertainty_construction["ic"][DIAMETERS[0]].seconds)
