"""Figure 7(g): effect of the centre variance (skewness) on construction time.

Paper: the IC construction time is higher when the data is more skewed (a
smaller sigma means denser clusters, smaller UV-cells and more r-objects);
at the most skewed setting tested (sigma = 1500) it is about an hour.
"""

import pytest

from benchmarks.conftest import emit, run_scaled_construction, scaled_bundle
from repro.analysis.report import format_table

OBJECT_COUNT = 200
SIGMAS = [1500.0, 2000.0, 2500.0, 3000.0, 3500.0]

PAPER_SERIES_HOURS = {1500: 1.05, 2000: 0.75, 2500: 0.55, 3000: 0.45, 3500: 0.35}


@pytest.fixture(scope="module")
def skewness_sweep():
    results = {}
    for sigma in SIGMAS:
        bundle = scaled_bundle("skewed", OBJECT_COUNT, sigma=sigma, seed=11)
        results[sigma] = run_scaled_construction(bundle, "ic")
    return results


def test_fig7g_skewness(benchmark, skewness_sweep, capsys):
    rows = []
    for sigma in SIGMAS:
        result = skewness_sweep[sigma]
        rows.append(
            [
                sigma,
                result.seconds,
                result.stats.avg_cr_objects,
                PAPER_SERIES_HOURS[int(sigma)],
            ]
        )
    table = format_table(
        ["sigma", "IC Tc (s)", "avg |Ci|", "paper Tc (hours, 30K objects)"],
        rows,
        title=(
            f"Figure 7(g) -- IC construction time vs centre variance sigma "
            f"(|O| = {OBJECT_COUNT}, measured).\n"
            "Paper shape: more skew (smaller sigma) -> denser data -> more "
            "cr-objects -> higher construction time."
        ),
    )
    emit(capsys, table)

    # More skew should not make construction cheaper, and it should produce
    # at least as many cr-objects per object.
    most_skewed = skewness_sweep[SIGMAS[0]]
    least_skewed = skewness_sweep[SIGMAS[-1]]
    assert most_skewed.stats.avg_cr_objects >= least_skewed.stats.avg_cr_objects * 0.9
    assert most_skewed.seconds >= least_skewed.seconds * 0.8

    benchmark(lambda: skewness_sweep[SIGMAS[0]].seconds)
