"""Figure 7(h): UV-partition retrieval time vs query-region size.

Paper: the retrieval time grows with the size of the query range R (more
UV-partitions are loaded) but remains small in absolute terms.
"""

import pytest

from benchmarks.conftest import (
    PAGE_CAPACITY,
    RTREE_FANOUT,
    SEED_KNN,
    emit,
    scaled_bundle,
)
from repro.analysis.report import format_table
from repro.core.pattern import PatternAnalyzer
from repro.core.construction import build_uv_index_ic
from repro.geometry.rectangle import Rect
from repro.rtree.tree import RTree
from repro.storage.disk import DiskManager

OBJECT_COUNT = 300
# Query-region side lengths, as fractions of the domain side.
REGION_FRACTIONS = [0.05, 0.1, 0.2, 0.4]

PAPER_SERIES_MS = {100: 35, 200: 55, 300: 80, 400: 110, 500: 150}


@pytest.fixture(scope="module")
def pattern_setup():
    bundle = scaled_bundle("uniform", OBJECT_COUNT, seed=23)
    disk = DiskManager()
    rtree = RTree.bulk_load(bundle.objects, disk=DiskManager(), fanout=RTREE_FANOUT)
    index, _ = build_uv_index_ic(
        bundle.objects,
        bundle.domain,
        rtree=rtree,
        disk=disk,
        page_capacity=PAGE_CAPACITY,
        seed_knn=SEED_KNN,
    )
    return bundle, PatternAnalyzer(index)


def test_fig7h_partition_query(benchmark, pattern_setup, capsys):
    bundle, analyzer = pattern_setup
    domain = bundle.domain
    center = domain.center
    rows = []
    measurements = {}
    for fraction in REGION_FRACTIONS:
        half = domain.width * fraction / 2.0
        region = Rect(
            max(domain.xmin, center.x - half),
            max(domain.ymin, center.y - half),
            min(domain.xmax, center.x + half),
            min(domain.ymax, center.y + half),
        )
        result = analyzer.partitions_in(region)
        measurements[fraction] = result
        rows.append(
            [
                f"{fraction * 100:.0f}% of domain side",
                len(result.partitions),
                result.io.page_reads,
                1000.0 * result.seconds,
            ]
        )
    table = format_table(
        ["query region", "partitions", "page reads", "time (ms)"],
        rows,
        title=(
            "Figure 7(h) -- UV-partition retrieval vs query-region size "
            f"(|O| = {OBJECT_COUNT}, measured).\n"
            "Paper shape: time grows with the region size but stays small."
        ),
    )
    emit(capsys, table)

    # Larger regions return at least as many partitions and read at least as
    # many pages.
    partition_counts = [len(measurements[f].partitions) for f in REGION_FRACTIONS]
    page_reads = [measurements[f].io.page_reads for f in REGION_FRACTIONS]
    assert partition_counts == sorted(partition_counts)
    assert page_reads == sorted(page_reads)

    largest = REGION_FRACTIONS[-1]
    half = bundle.domain.width * largest / 2.0
    region = Rect(center.x - half, center.y - half, center.x + half, center.y + half)
    benchmark(lambda: len(analyzer.partitions_in(region).partitions))
