"""Parallel sharded construction: speedup vs worker count, parity enforced.

Not a paper figure -- this measures the ``repro.parallel`` scheduler's reason
to exist: the cell-computation phase of diagram construction shards across
worker processes while the indexing phase replays results in canonical order,
so a parallel build must return a **bit-identical** diagram in a fraction of
the wall time.

Every series is verified against the serial reference before any number is
reported: identical answer sets *and* identical probabilities on the full
query workload.  The speedup target (>= 1.8x at 4 workers) is only enforced
when the machine actually has 4+ usable cores; on smaller machines (or
cgroup-limited CI runners) the measured numbers are still emitted to
``BENCH_parallel.json`` with ``target_enforced: false``.  Shared CI runners
additionally set ``BENCH_SPEEDUP_STRICT=0`` so a noisy neighbour cannot fail
an unrelated PR -- the wall-time regression gate there is ``ci_smoke.py
--check``, not this assertion.
"""

import os

import pytest

from benchmarks.conftest import (
    PAGE_CAPACITY,
    RTREE_FANOUT,
    SEED_KNN,
    emit,
    scaled_bundle,
    write_bench_json,
)
from repro.analysis.report import format_table
from repro.engine import DiagramConfig, QueryEngine
from repro.parallel import ConstructionScheduler, available_workers

OBJECTS = 320
WORKER_COUNTS = [2, 4]
TARGET_SPEEDUP = 1.8
TARGET_WORKERS = 4


def _build(bundle, scheduler=None, workers=1):
    import time

    config = DiagramConfig(
        backend="ic",
        page_capacity=PAGE_CAPACITY,
        rtree_fanout=RTREE_FANOUT,
        seed_knn=SEED_KNN,
        workers=workers,
    )
    start = time.perf_counter()
    engine = QueryEngine.build(
        bundle.objects, bundle.domain, config, scheduler=scheduler
    )
    return engine, time.perf_counter() - start


def _answers(engine, queries):
    return [
        [(a.oid, a.probability) for a in engine.pnn(q).sorted_by_probability()]
        for q in queries
    ]


@pytest.fixture(scope="module")
def parallel_sweep():
    bundle = scaled_bundle("uniform", OBJECTS, seed=11)
    serial_engine, serial_seconds = _build(bundle)
    reference = _answers(serial_engine, bundle.queries)

    series = [
        {
            "workers": 1,
            "strategy": "serial",
            "executor": "serial",
            "seconds": serial_seconds,
            "speedup": 1.0,
            "fell_back_to_serial": False,
        }
    ]
    for workers in WORKER_COUNTS:
        for strategy in ("round_robin", "spatial_tile"):
            scheduler = ConstructionScheduler(
                workers=workers, shard_strategy=strategy, executor="process"
            )
            engine, seconds = _build(bundle, scheduler=scheduler, workers=workers)
            assert _answers(engine, bundle.queries) == reference, (
                f"parallel build ({workers} workers, {strategy}) diverged "
                "from the serial reference"
            )
            report = scheduler.last_report
            series.append(
                {
                    "workers": workers,
                    "strategy": strategy,
                    "executor": report.executor,
                    "seconds": seconds,
                    "speedup": serial_seconds / max(seconds, 1e-9),
                    "fell_back_to_serial": report.fell_back_to_serial,
                    "shards": [
                        {"size": s.size, "seconds": s.seconds}
                        for s in report.shards
                    ],
                }
            )
    return {"serial_seconds": serial_seconds, "series": series}


def test_parallel_construction_speedup(parallel_sweep, capsys, benchmark):
    cores = available_workers()
    strict = os.environ.get("BENCH_SPEEDUP_STRICT", "1") != "0"
    target_enforced = strict and cores >= TARGET_WORKERS
    series = parallel_sweep["series"]

    rows = [
        [s["workers"], s["strategy"], s["executor"], s["seconds"], s["speedup"]]
        for s in series
    ]
    emit(capsys, format_table(
        ["workers", "strategy", "executor", "build s", "speedup"],
        rows,
        title=(
            f"parallel IC construction over {OBJECTS} objects "
            f"({cores} usable cores; parallel output verified bit-identical "
            "to serial on the full query workload)"
        ),
        float_format="{:.3f}",
    ))

    best_at_target = max(
        (s["speedup"] for s in series if s["workers"] == TARGET_WORKERS),
        default=0.0,
    )
    write_bench_json("parallel", {
        "benchmark": "parallel_construction",
        "objects": OBJECTS,
        "usable_cores": cores,
        "serial_seconds": parallel_sweep["serial_seconds"],
        "series": series,
        "parity": "bit-identical answers and probabilities vs serial",
        "target_speedup": TARGET_SPEEDUP,
        "target_workers": TARGET_WORKERS,
        "best_speedup_at_target_workers": best_at_target,
        "target_enforced": target_enforced,
    })

    if target_enforced:
        assert best_at_target >= TARGET_SPEEDUP, (
            f"expected >= {TARGET_SPEEDUP}x speedup at {TARGET_WORKERS} workers "
            f"on a {cores}-core machine, measured {best_at_target:.2f}x"
        )

    benchmark(lambda: parallel_sweep["serial_seconds"])
