#!/usr/bin/env python
"""Vectorized vs scalar qualification-probability kernel on the Figure 6(c) workload.

Figure 6(c) shows the probability-computation (refinement) component
dominating PNN query time.  This benchmark isolates exactly that component:
it builds the fig6c uniform workload, collects each query's answer objects
once, then times the scalar reference kernel against the vectorized kernel
on identical inputs, verifying parity (<= 1e-9) along the way.

Standalone on purpose (no pytest, just the library and the stdlib)::

    python benchmarks/bench_prob_kernel.py --output-dir bench-out --check

``--check`` fails the run when the measured speedup drops below
``--min-speedup`` (default 5x, the acceptance target).
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.datasets.loader import load_dataset  # noqa: E402
from repro.engine import DiagramConfig, QueryEngine  # noqa: E402
from repro.queries.probability import qualification_probabilities  # noqa: E402
from repro.queries.probability_kernel import (  # noqa: E402
    RingCache,
    qualification_probabilities_vectorized,
)

# The Figure 6(c) workload at benchmark scale: uniform objects, diameter 300,
# the benchmarks/conftest.py index knobs, largest sweep size.
OBJECTS = 400
QUERIES = 12
DIAMETER = 300.0
CONFIG_KNOBS = dict(backend="ic", page_capacity=32, rtree_fanout=16, seed_knn=60)


def collect_answer_sets(engine, queries):
    """The refinement inputs: each query's verified answer objects."""
    from repro.queries.spec import PNNQuery

    answer_sets = []
    for query in queries:
        ids = engine.execute(
            PNNQuery(query, compute_probabilities=False)
        ).answer_ids
        answer_sets.append((query, engine.object_store.fetch_many(ids)))
    return answer_sets


def time_kernel(answer_sets, repeats, evaluate):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        results = [evaluate(objects, query) for query, objects in answer_sets]
        best = min(best, time.perf_counter() - start)
    return best, results


def max_parity_diff(scalar_results, vectorized_results):
    """Largest absolute probability difference between the two kernels' results."""
    worst = 0.0
    for scalar, vectorized in zip(scalar_results, vectorized_results):
        if scalar.keys() != vectorized.keys():
            raise SystemExit("kernels disagreed on the answer-object key sets")
        for oid, p in scalar.items():
            worst = max(worst, abs(p - vectorized[oid]))
    return worst


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--objects", type=int, default=OBJECTS)
    parser.add_argument("--queries", type=int, default=QUERIES)
    parser.add_argument("--seed", type=int, default=400)
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats; the best run of each kernel counts")
    parser.add_argument("--min-speedup", type=float, default=5.0,
                        help="speedup the --check gate requires")
    parser.add_argument("--output-dir", default="bench-out", type=Path,
                        help="where BENCH_prob.json is written")
    parser.add_argument("--check", action="store_true",
                        help="fail when the speedup drops below --min-speedup")
    args = parser.parse_args(argv)

    bundle = load_dataset("uniform", args.objects, diameter=DIAMETER,
                          query_count=args.queries, seed=args.seed)
    print(f"building {CONFIG_KNOBS['backend']} engine over {args.objects} objects ...")
    engine = QueryEngine.build(bundle.objects, bundle.domain,
                               DiagramConfig(**CONFIG_KNOBS))
    queries = bundle.queries[: args.queries]
    answer_sets = collect_answer_sets(engine, queries)
    answer_sizes = [len(objects) for _, objects in answer_sets]

    scalar_seconds, scalar_results = time_kernel(
        answer_sets, args.repeats,
        lambda objects, query: qualification_probabilities(objects, query),
    )
    ring_cache = RingCache()
    vectorized_seconds, vectorized_results = time_kernel(
        answer_sets, args.repeats,
        lambda objects, query: qualification_probabilities_vectorized(
            objects, query, ring_cache=ring_cache),
    )

    max_diff = max_parity_diff(scalar_results, vectorized_results)
    if max_diff > 1e-9:
        raise SystemExit(f"kernel parity violated: max abs diff {max_diff:.3e}")

    speedup = scalar_seconds / vectorized_seconds if vectorized_seconds > 0 else float("inf")
    per_query_ms = 1000.0 / len(queries)
    print(f"refinement over {len(queries)} queries "
          f"(answer sizes {min(answer_sizes)}-{max(answer_sizes)}, "
          f"mean {sum(answer_sizes) / len(answer_sizes):.1f}):")
    print(f"  scalar     : {scalar_seconds * per_query_ms:8.3f} ms/query")
    print(f"  vectorized : {vectorized_seconds * per_query_ms:8.3f} ms/query")
    print(f"  speedup    : {speedup:.1f}x  (parity max |diff| {max_diff:.2e})")

    payload = {
        "benchmark": "prob_kernel",
        "workload": "fig6c-uniform",
        "objects": args.objects,
        "queries": len(queries),
        "answer_sizes": answer_sizes,
        "scalar_seconds": scalar_seconds,
        "vectorized_seconds": vectorized_seconds,
        "speedup": speedup,
        "max_abs_diff": max_diff,
        "min_speedup_target": args.min_speedup,
        "platform": platform.platform(),
        "python": platform.python_version(),
    }
    args.output_dir.mkdir(parents=True, exist_ok=True)
    path = args.output_dir / "BENCH_prob.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {path}")

    if args.check and speedup < args.min_speedup:
        print(f"FAIL: speedup {speedup:.1f}x below the {args.min_speedup:.1f}x target",
              file=sys.stderr)
        return 1
    if args.check:
        print(f"gate passed ({speedup:.1f}x >= {args.min_speedup:.1f}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
