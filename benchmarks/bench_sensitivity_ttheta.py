"""Sensitivity of the UV-index to the split threshold T_theta (Section VI-B.1).

Paper: the index differs only slightly over a wide range of T_theta, but very
small values (e.g. 0.2) make the adaptive grid reluctant to split so it
degrades into long linked lists of pages; the paper therefore uses T_theta = 1.
"""

import pytest

from benchmarks.conftest import (
    PAGE_CAPACITY,
    RTREE_FANOUT,
    SEED_KNN,
    emit,
    scaled_bundle,
)
from repro.analysis.report import format_table
from repro.core.construction import build_uv_index_ic
from repro.core.pnn import UVIndexPNN
from repro.rtree.tree import RTree
from repro.storage.disk import DiskManager

OBJECT_COUNT = 200
THRESHOLDS = [0.2, 0.5, 0.8, 1.0]


@pytest.fixture(scope="module")
def threshold_sweep():
    bundle = scaled_bundle("uniform", OBJECT_COUNT, seed=41)
    rtree = RTree.bulk_load(bundle.objects, disk=DiskManager(), fanout=RTREE_FANOUT)
    results = {}
    for threshold in THRESHOLDS:
        disk = DiskManager()
        index, stats = build_uv_index_ic(
            bundle.objects,
            bundle.domain,
            rtree=rtree,
            disk=disk,
            page_capacity=PAGE_CAPACITY,
            split_threshold=threshold,
            seed_knn=SEED_KNN,
        )
        pnn = UVIndexPNN(index, objects=bundle.objects)
        io_total = 0
        for q in bundle.queries:
            io_total += pnn.query(q, compute_probabilities=False).io.page_reads
        results[threshold] = (index, stats, io_total / len(bundle.queries))
    return bundle, results


def test_sensitivity_ttheta(benchmark, threshold_sweep, capsys):
    bundle, results = threshold_sweep
    rows = []
    for threshold in THRESHOLDS:
        index, stats, avg_io = results[threshold]
        index_stats = index.statistics()
        rows.append(
            [
                threshold,
                index_stats["leaf_nodes"],
                index_stats["max_pages_per_leaf"],
                avg_io,
                stats.total_seconds,
            ]
        )
    table = format_table(
        ["T_theta", "leaf nodes", "max pages/leaf", "avg query I/O", "Tc (s)"],
        rows,
        title=(
            "Sensitivity test -- effect of the split threshold T_theta "
            f"(|O| = {OBJECT_COUNT}, measured).\n"
            "Paper shape: small T_theta refuses to split and degrades into "
            "long page chains; larger values behave similarly to each other."
        ),
    )
    emit(capsys, table)

    # A small threshold splits less: fewer leaves, longer page chains.
    small_index = results[THRESHOLDS[0]][0].statistics()
    large_index = results[THRESHOLDS[-1]][0].statistics()
    assert small_index["leaf_nodes"] <= large_index["leaf_nodes"]
    assert small_index["max_pages_per_leaf"] >= large_index["max_pages_per_leaf"]
    # Query I/O with the degraded index is no better than with T_theta = 1.
    assert results[THRESHOLDS[0]][2] >= results[THRESHOLDS[-1]][2] * 0.95

    pnn = UVIndexPNN(results[THRESHOLDS[-1]][0], objects=bundle.objects)
    query = bundle.queries[0]
    benchmark(lambda: len(pnn.query(query, compute_probabilities=False).answers))
