#!/usr/bin/env python
"""Serving load benchmark: qps scaling across workers + a fault drill.

Two phases over one saved snapshot:

1. **Scaling** -- closed-loop HTTP load (a pool of keep-alive client
   threads) against the service at 1 worker and at 4 workers.  A simulated
   per-page read latency makes each query I/O-bound, the way the paper's
   disk-resident workload is -- worker processes then overlap their sleeps,
   so throughput scales with the fleet even on a single-core runner (the
   same device the PR 3 parallel-construction benchmark uses).  The gate is
   ``qps(4 workers) >= 2.5x qps(1 worker)``.

2. **Fault drill** -- the same load against 4 workers while one worker is
   SIGKILLed mid-run.  The router must respawn the worker and re-execute the
   requests the crash orphaned; the gate is **zero client-visible failures
   beyond admission control**: every request answers 200 (or 429 when the
   in-flight budget is momentarily full), never 5xx/504.

Standalone on purpose (no pytest), mirroring ``ci_smoke.py``::

    python benchmarks/bench_serving.py --output-dir bench-out --check

emits ``BENCH_serving.json`` with sustained qps and client-side p50/p99 per
worker count plus the drill's counters.
"""

from __future__ import annotations

import argparse
import http.client
import json
import os
import platform
import signal
import sys
import tempfile
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.datasets.loader import load_dataset  # noqa: E402
from repro.engine import DiagramConfig, QueryEngine  # noqa: E402
from repro.serve import LatencyHistogram, QueryService, ServeConfig  # noqa: E402

OBJECTS = 150
CLIENTS = 8
DURATION_S = 6.0
READ_LATENCY_S = 0.02
TARGET_SPEEDUP = 2.5
WORKER_COUNTS = (1, 4)


class LoadClient(threading.Thread):
    """One closed-loop client: request, record, repeat until the deadline."""

    def __init__(self, host: str, port: int, bodies, stop_at: float,
                 histogram: LatencyHistogram):
        super().__init__(daemon=True)
        self.host, self.port = host, port
        self.bodies = bodies
        self.stop_at = stop_at
        self.histogram = histogram
        self.statuses: dict = {}
        self.transport_errors = 0

    def run(self) -> None:
        connection = http.client.HTTPConnection(self.host, self.port, timeout=30)
        index = 0
        while time.monotonic() < self.stop_at:
            body = self.bodies[index % len(self.bodies)]
            index += 1
            start = time.perf_counter()
            try:
                connection.request("POST", "/query", body=body,
                                   headers={"Content-Type": "application/json"})
                response = connection.getresponse()
                response.read()
                status = response.status
            except (http.client.HTTPException, OSError):
                # The supervisor owns the listening socket, so a worker crash
                # never severs connections; count (and retry on) anything
                # transport-level as a hard failure.
                self.transport_errors += 1
                connection.close()
                connection = http.client.HTTPConnection(
                    self.host, self.port, timeout=30
                )
                continue
            self.histogram.record(time.perf_counter() - start)
            self.statuses[status] = self.statuses.get(status, 0) + 1
        connection.close()


def run_load(service: QueryService, bodies, duration: float,
             clients: int = CLIENTS, mid_run=None):
    """Drive closed-loop load; returns (seconds, histogram, statuses, errors)."""
    histogram = LatencyHistogram()
    stop_at = time.monotonic() + duration
    pool = [
        LoadClient(service.config.host, service.port, bodies, stop_at, histogram)
        for _ in range(clients)
    ]
    start = time.monotonic()
    for client in pool:
        client.start()
    if mid_run is not None:
        mid_run()
    for client in pool:
        client.join()
    elapsed = time.monotonic() - start
    statuses: dict = {}
    transport_errors = 0
    for client in pool:
        transport_errors += client.transport_errors
        for status, count in client.statuses.items():
            statuses[status] = statuses.get(status, 0) + count
    return elapsed, histogram, statuses, transport_errors


def build_snapshot(args) -> str:
    bundle = load_dataset("uniform", args.objects, diameter=300.0,
                          query_count=32, seed=args.seed)
    engine = QueryEngine.build(
        bundle.objects, bundle.domain,
        DiagramConfig(backend="ic", page_capacity=32, rtree_fanout=16, seed_knn=60),
    )
    path = os.path.join(tempfile.mkdtemp(prefix="bench-serving-"), "uv.snap")
    engine.save(path)
    return path, bundle


def query_bodies(bundle) -> list:
    return [
        json.dumps({"type": "pnn", "point": [point.x, point.y],
                    "threshold": 0.05})
        for point in bundle.queries
    ]


def measure_scaling(snapshot: str, bodies, args) -> dict:
    series = {}
    for workers in WORKER_COUNTS:
        config = ServeConfig(
            snapshot_path=snapshot, workers=workers, port=0,
            read_latency=args.read_latency, queue_depth=max(8, args.clients),
            hang_timeout=args.hang_timeout,
        )
        with QueryService(config) as service:
            # Warm up the fleet (first request per worker pays numpy set-up).
            run_load(service, bodies, duration=0.5,
                     clients=min(4, args.clients))
            elapsed, histogram, statuses, errors = run_load(
                service, bodies, duration=args.duration, clients=args.clients
            )
            stats = service.stats()
        completed = statuses.get(200, 0)
        latency = histogram.to_dict()
        series[str(workers)] = {
            "workers": workers,
            "seconds": elapsed,
            "completed": completed,
            "qps": completed / elapsed if elapsed else 0.0,
            "p50_ms": latency["p50_ms"],
            "p99_ms": latency["p99_ms"],
            "mean_ms": latency["mean_ms"],
            "statuses": {str(k): v for k, v in sorted(statuses.items())},
            "transport_errors": errors,
            "server_counters": stats["router"]["counters"],
        }
        print(f"{workers} worker(s): {series[str(workers)]['qps']:.1f} qps, "
              f"p50 {latency['p50_ms']:.1f} ms, p99 {latency['p99_ms']:.1f} ms "
              f"({completed} requests in {elapsed:.1f}s)")
    return series


def fault_drill(snapshot: str, bodies, args) -> dict:
    """Kill one of four workers under load; the client must never notice."""
    config = ServeConfig(
        snapshot_path=snapshot, workers=4, port=0,
        read_latency=args.read_latency, queue_depth=max(8, args.clients),
        respawn_delay=0.1, hang_timeout=args.hang_timeout,
    )
    with QueryService(config) as service:
        router = service.router
        victim_box = {}

        def kill_one_worker():
            time.sleep(args.duration / 3.0)
            victim = router.worker_pids()[0]
            victim_box["pid"] = victim
            os.kill(victim, signal.SIGKILL)

        elapsed, histogram, statuses, errors = run_load(
            service, bodies, duration=args.duration, clients=args.clients,
            mid_run=kill_one_worker,
        )
        # Give the monitor time to finish the respawn before reading stats.
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline and router.workers_alive() < 4:
            time.sleep(0.05)
        counters = dict(router.counters)
        workers_alive = router.workers_alive()
        pids = router.worker_pids()

    completed = statuses.get(200, 0)
    rejected = statuses.get(429, 0)
    hard_failures = errors + sum(
        count for status, count in statuses.items() if status not in (200, 429)
    )
    latency = histogram.to_dict()
    drill = {
        "workers": 4,
        "killed_pid": victim_box.get("pid"),
        "seconds": elapsed,
        "completed": completed,
        "qps": completed / elapsed if elapsed else 0.0,
        "p50_ms": latency["p50_ms"],
        "p99_ms": latency["p99_ms"],
        "rejected_429": rejected,
        "hard_failures": hard_failures,
        "statuses": {str(k): v for k, v in sorted(statuses.items())},
        "respawns": counters["respawns"],
        "retried_after_crash": counters["retried_after_crash"],
        "workers_alive_after": workers_alive,
        "respawned_pid": pids[0],
    }
    print(f"fault drill: killed pid {drill['killed_pid']}, "
          f"{drill['respawns']} respawn(s), "
          f"{drill['retried_after_crash']} request(s) retried, "
          f"{completed} served, {rejected} x 429, "
          f"{hard_failures} hard failure(s)")
    return drill


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--objects", type=int, default=OBJECTS)
    parser.add_argument("--clients", type=int, default=CLIENTS)
    parser.add_argument("--duration", type=float, default=DURATION_S,
                        help="seconds of sustained load per series point")
    parser.add_argument("--read-latency", type=float, default=READ_LATENCY_S,
                        help="simulated seconds per counted page read in the "
                             "workers (makes the workload I/O-bound)")
    parser.add_argument("--seed", type=int, default=13)
    parser.add_argument("--output-dir", default="bench-out", type=Path)
    parser.add_argument("--target-speedup", type=float, default=TARGET_SPEEDUP)
    parser.add_argument("--check", action="store_true",
                        help="fail on speedup < target or drill failures")
    parser.add_argument("--hang-timeout", type=float, default=0.0,
                        help="kill-and-respawn deadline (seconds) for a "
                             "worker that stops answering; 0 disables")
    parser.add_argument("--skip-drill", action="store_true",
                        help="scaling series only (quick local runs)")
    args = parser.parse_args(argv)

    snapshot, bundle = build_snapshot(args)
    bodies = query_bodies(bundle)
    print(f"snapshot: {snapshot} ({args.objects} objects, "
          f"read latency {args.read_latency * 1000:.0f} ms/page)")

    series = measure_scaling(snapshot, bodies, args)
    base = series[str(WORKER_COUNTS[0])]["qps"]
    peak = series[str(WORKER_COUNTS[-1])]["qps"]
    speedup = peak / base if base else 0.0
    print(f"scaling: {speedup:.2f}x qps at {WORKER_COUNTS[-1]} workers "
          f"(target {args.target_speedup:.1f}x)")

    drill = None if args.skip_drill else fault_drill(snapshot, bodies, args)

    payload = {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "objects": args.objects,
        "clients": args.clients,
        "duration_seconds": args.duration,
        "read_latency_seconds": args.read_latency,
        "scaling": series,
        "speedup": speedup,
        "target_speedup": args.target_speedup,
        "fault_drill": drill,
    }
    args.output_dir.mkdir(parents=True, exist_ok=True)
    out = args.output_dir / "BENCH_serving.json"
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out}")

    if args.check:
        failed = False
        if speedup < args.target_speedup:
            print(f"FAIL: speedup {speedup:.2f}x < {args.target_speedup:.1f}x")
            failed = True
        if drill is not None:
            if drill["hard_failures"] > 0:
                print(f"FAIL: {drill['hard_failures']} client-visible "
                      f"failure(s) beyond admission control")
                failed = True
            if drill["respawns"] < 1:
                print("FAIL: the killed worker was never respawned")
                failed = True
        if failed:
            return 1
        print("gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
