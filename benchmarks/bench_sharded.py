#!/usr/bin/env python
"""Sharded routing benchmark: what the shard bounds save on a PNN workload.

Builds a 4-shard deployment over the Figure 6(c)-style uniform PNN workload
(the paper's query-cost testbed), runs the same queries twice through the
scatter-gather router -- once routed by the ``SHARDMAP`` possible-region
bounds, once scattered to every shard -- and gates two properties:

* **parity** -- both modes return bit-identical answers for every query
  (routing must never change an answer, only who pays page reads);
* **routing savings** -- the routed pass performs at least
  ``MIN_SAVINGS``x fewer candidate (index) page reads than scatter-to-all.
  With ``--check``, the measured ratio must additionally stay within
  ``--max-regression`` of the checked-in baseline
  (``benchmarks/baseline/BENCH_sharded.json``).

Standalone on purpose (no pytest), mirroring ``ci_smoke.py``::

    python benchmarks/bench_sharded.py --output-dir bench-out \
        --baseline benchmarks/baseline/BENCH_sharded.json --check
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.datasets.synthetic import (  # noqa: E402
    generate_query_points,
    generate_uniform_objects,
)
from repro.engine import DiagramConfig  # noqa: E402
from repro.queries.spec import PNNQuery  # noqa: E402
from repro.shard import (  # noqa: E402
    ShardedQueryEngine,
    build_sharded_deployment,
)

OBJECTS = 200
QUERIES = 32
SHARDS = 4
BACKEND = "ic"
SEED = 42

#: The routed pass must avoid at least this factor of candidate page reads.
MIN_SAVINGS = 2.0


def run_mode(directory: str, queries, scatter_all: bool) -> dict:
    """One full pass over the workload in one routing mode (fresh engines,
    so neither mode inherits the other's warm ring cache)."""
    engine = ShardedQueryEngine.open(directory)
    index_reads = 0
    total_reads = 0
    answers = []
    start = time.perf_counter()
    for point in queries:
        result = engine.execute(PNNQuery(point), scatter_all=scatter_all)
        index_reads += result.index_io.page_reads
        total_reads += result.io.page_reads
        answers.append([answer.to_dict() for answer in result.answers])
    elapsed = time.perf_counter() - start
    return {
        "mode": "scatter_all" if scatter_all else "routed",
        "index_page_reads": index_reads,
        "total_page_reads": total_reads,
        "elapsed_seconds": elapsed,
        "answers": answers,
    }


def run_benchmark() -> dict:
    objects, domain = generate_uniform_objects(OBJECTS, seed=SEED,
                                               diameter=300.0)
    queries = generate_query_points(QUERIES, domain, seed=SEED + 1)
    with tempfile.TemporaryDirectory() as tmp:
        directory = str(Path(tmp) / "deployment")
        deployment = build_sharded_deployment(
            objects, domain, directory,
            config=DiagramConfig(backend=BACKEND), shards=SHARDS,
        )
        routed = run_mode(directory, queries, scatter_all=False)
        scattered = run_mode(directory, queries, scatter_all=True)

    parity = routed.pop("answers") == scattered.pop("answers")
    savings = (
        scattered["index_page_reads"] / routed["index_page_reads"]
        if routed["index_page_reads"]
        else float("inf")
    )
    return {
        "benchmark": "sharded_routing",
        "backend": BACKEND,
        "objects": OBJECTS,
        "queries": QUERIES,
        "shards": len(deployment.shard_map),
        "epoch": deployment.epoch,
        "parity": parity,
        "routed": routed,
        "scatter_all": scattered,
        "index_read_savings": savings,
        "min_savings_gate": MIN_SAVINGS,
    }


def hard_gates(payload: dict) -> list[str]:
    """Invariant gates that apply with or without ``--check``."""
    failures = []
    if not payload["parity"]:
        failures.append("routed and scatter-all answers diverged; routing "
                        "changed an answer")
    savings = payload["index_read_savings"]
    if savings < MIN_SAVINGS:
        failures.append(
            f"routing avoided only {savings:.2f}x candidate page reads "
            f"(gate: >= {MIN_SAVINGS:.1f}x; routed "
            f"{payload['routed']['index_page_reads']}, scatter-all "
            f"{payload['scatter_all']['index_page_reads']})"
        )
    return failures


def check_regression(payload: dict, baseline_path: Path,
                     max_regression: float) -> int:
    baseline = json.loads(baseline_path.read_text())
    allowed = baseline["index_read_savings"] / max_regression
    got = payload["index_read_savings"]
    print(f"regression gate: routing savings {got:.2f}x vs baseline "
          f"{baseline['index_read_savings']:.2f}x "
          f"(allowed >= {allowed:.2f}x at 1/{max_regression:.1f})")
    if got < allowed:
        print(f"FAIL: routing savings fell to "
              f"{got / baseline['index_read_savings']:.2f}x of baseline "
              f"(limit 1/{max_regression:.1f})", file=sys.stderr)
        return 1
    print("gate passed")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output-dir", type=Path, default=Path("bench-out"))
    parser.add_argument(
        "--baseline", type=Path,
        default=Path(__file__).parent / "baseline" / "BENCH_sharded.json",
    )
    parser.add_argument("--check", action="store_true",
                        help="fail on savings regression vs the baseline")
    parser.add_argument("--max-regression", type=float, default=1.5)
    args = parser.parse_args(argv)

    payload = run_benchmark()

    args.output_dir.mkdir(parents=True, exist_ok=True)
    out = args.output_dir / "BENCH_sharded.json"
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(json.dumps(payload, indent=2, sort_keys=True))
    print(f"wrote {out}")

    failures = hard_gates(payload)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if failures:
        return 1
    if args.check:
        return check_regression(payload, args.baseline, args.max_regression)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
