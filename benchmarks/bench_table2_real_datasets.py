"""Table II: query time, construction time and pruning ratio on real datasets.

Paper (utility 17K / roads 30K / rrlines 36K): the UV-diagram consistently
answers PNN queries faster than the R-tree (89 vs 141 ms, 82 vs 135 ms,
107 vs 159 ms), IC construction takes 784-2723 s, and the pruning ratio p_c
stays between 86% and 89%.

This reproduction substitutes generated datasets with the same spatial
character (clustered / road-like / rail-like), at reduced scale.
"""

import pytest

from benchmarks.conftest import (
    emit,
    run_scaled_construction,
    run_scaled_query_experiment,
    scaled_bundle,
)
from repro.analysis.report import format_table

REAL_LIKE_SIZE = 250
# The real-like substitutes are strongly clustered (that is their point), so
# the density-matched diameter used for the uniform sweeps would make the
# regions overlap excessively; a smaller diameter keeps the overlap level in
# line with the paper's geographic datasets.
REAL_LIKE_DIAMETER = 80.0

PAPER_TABLE2 = {
    # dataset: (|O|, Tq(UVD) ms, Tq(R-tree) ms, Tc s, pc %)
    "utility": (17_000, 89, 141, 784, 89),
    "roads": (30_000, 82, 135, 2207, 88),
    "rrlines": (36_000, 107, 159, 2723, 86),
}


@pytest.fixture(scope="module")
def real_like_results():
    results = {}
    for name in ("utility", "roads", "rrlines"):
        bundle = scaled_bundle(name, REAL_LIKE_SIZE, diameter=REAL_LIKE_DIAMETER, seed=5)
        query_results = run_scaled_query_experiment(bundle)
        construction = run_scaled_construction(bundle, "ic")
        results[name] = (query_results, construction)
    return results


def test_table2_real_datasets(benchmark, real_like_results, capsys):
    rows = []
    for name, (query_results, construction) in real_like_results.items():
        uv = query_results["uv-index"]
        rt = query_results["r-tree"]
        paper = PAPER_TABLE2[name]
        rows.append(
            [
                name,
                REAL_LIKE_SIZE,
                uv.avg_time_ms,
                rt.avg_time_ms,
                construction.seconds,
                100.0 * construction.stats.c_pruning_ratio,
                f"{paper[1]}/{paper[2]}ms, pc={paper[4]}%",
            ]
        )
    table = format_table(
        [
            "dataset",
            "|O|",
            "Tq(UVD) ms",
            "Tq(R-tree) ms",
            "Tc (s)",
            "pc (%)",
            "paper (17K-36K objects)",
        ],
        rows,
        title=(
            "Table II -- real-dataset substitutes (clustered / road-like / "
            "rail-like), measured at reduced scale.\n"
            "Paper shape: UV-diagram faster than the R-tree on every dataset; "
            "pruning ratio pc in the high 80s / 90s."
        ),
    )
    emit(capsys, table)

    for _name, (query_results, construction) in real_like_results.items():
        assert (
            query_results["uv-index"].avg_time_ms
            <= query_results["r-tree"].avg_time_ms * 1.25
        )
        assert construction.stats.c_pruning_ratio >= 0.5

    benchmark(lambda: len(real_like_results))
