#!/usr/bin/env python
"""Threshold / top-k PNN early termination on the Figure 6(c) workload.

Probability-threshold PNN prunes candidates whose qualification-probability
upper bound falls below tau before full integration; top-k PNN prunes
against the running k-th probability.  This benchmark quantifies how much
refinement work the filters actually save on the fig6c uniform workload:

* **full integrations** -- candidates that went through the reference-
  arithmetic integration path (deterministic, jitter-free work metric),
* **wall time** of the scalar reference kernel, where full integration
  dominates (the vectorized kernel's savings are smaller because its CDF
  matrix is shared either way),

and verifies along the way that every filtered result equals post-filtering
the unfiltered output.  Standalone on purpose (no pytest)::

    python benchmarks/bench_threshold_pnn.py --output-dir bench-out --check

``--check`` fails when tau = 0.1 does not do measurably less refinement
work than tau = 0 (fewer full integrations), or when filtered answers
diverge from the post-filtered reference.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.datasets.loader import load_dataset  # noqa: E402
from repro.engine import DiagramConfig, QueryEngine  # noqa: E402
from repro.queries.probability import qualification_probabilities  # noqa: E402
from repro.queries.probability_kernel import (  # noqa: E402
    RefinementStats,
    RingCache,
    qualification_probabilities_vectorized,
)
from repro.queries.spec import PNNQuery  # noqa: E402

# The Figure 6(c) workload at benchmark scale (shared with bench_prob_kernel).
OBJECTS = 400
QUERIES = 12
DIAMETER = 300.0
CONFIG_KNOBS = dict(backend="ic", page_capacity=32, rtree_fanout=16, seed_knn=60)
THRESHOLDS = (0.0, 0.05, 0.1, 0.3)
TOP_KS = (1, 3)


def collect_answer_sets(engine, queries):
    """The refinement inputs: each query's verified answer objects."""
    answer_sets = []
    for query in queries:
        ids = engine.execute(
            PNNQuery(query, compute_probabilities=False)
        ).answer_ids
        answer_sets.append((query, engine.object_store.fetch_many(ids)))
    return answer_sets


def run_kernel(answer_sets, kernel, repeats, threshold=0.0, top_k=None):
    """Best-of-N wall time + aggregated work stats + per-query results."""
    best = float("inf")
    results = None
    stats = None
    for _ in range(repeats):
        round_stats = RefinementStats()
        ring_cache = RingCache()
        start = time.perf_counter()
        round_results = []
        for query, objects in answer_sets:
            query_stats = RefinementStats()
            if kernel == "scalar":
                probabilities = qualification_probabilities(
                    objects, query, threshold=threshold, top_k=top_k,
                    stats=query_stats,
                )
            else:
                probabilities = qualification_probabilities_vectorized(
                    objects, query, ring_cache=ring_cache, threshold=threshold,
                    top_k=top_k, stats=query_stats,
                )
            round_stats.merge(query_stats)
            round_results.append(probabilities)
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
        results = round_results
        stats = round_stats
    return best, stats, results


def verify_post_filter_equality(reference, filtered, threshold, top_k, label):
    """Filtered probabilities must equal the reference's (surviving entries)."""
    for full, got in zip(reference, filtered):
        survivors = sorted(
            ((oid, p) for oid, p in full.items() if p >= threshold),
            key=lambda item: (-item[1], item[0]),
        )
        if top_k is not None:
            survivors = survivors[:top_k]
        for oid, expected in survivors:
            if abs(got[oid] - expected) > 1e-9:
                raise SystemExit(
                    f"{label}: probability of object {oid} diverged from the "
                    f"post-filtered reference ({got[oid]!r} vs {expected!r})"
                )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--objects", type=int, default=OBJECTS)
    parser.add_argument("--queries", type=int, default=QUERIES)
    parser.add_argument("--seed", type=int, default=400)
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats; the best run of each setting counts")
    parser.add_argument("--output-dir", default="bench-out", type=Path,
                        help="where BENCH_threshold.json is written")
    parser.add_argument("--check", action="store_true",
                        help="fail unless tau=0.1 does measurably less "
                             "refinement work than tau=0")
    args = parser.parse_args(argv)

    bundle = load_dataset("uniform", args.objects, diameter=DIAMETER,
                          query_count=args.queries, seed=args.seed)
    print(f"building {CONFIG_KNOBS['backend']} engine over {args.objects} objects ...")
    engine = QueryEngine.build(bundle.objects, bundle.domain,
                               DiagramConfig(**CONFIG_KNOBS))
    queries = bundle.queries[: args.queries]
    answer_sets = collect_answer_sets(engine, queries)
    answer_sizes = [len(objects) for _, objects in answer_sets]
    print(f"refinement inputs: {len(queries)} queries, answer sizes "
          f"{min(answer_sizes)}-{max(answer_sizes)} "
          f"(mean {sum(answer_sizes) / len(answer_sizes):.1f})")

    rows = []
    reference = {}
    for kernel in ("scalar", "vectorized"):
        for threshold in THRESHOLDS:
            seconds, stats, results = run_kernel(
                answer_sets, kernel, args.repeats, threshold=threshold
            )
            if threshold == 0.0:
                reference[kernel] = results
            else:
                verify_post_filter_equality(
                    reference[kernel], results, threshold, None,
                    f"{kernel} tau={threshold}",
                )
            rows.append({
                "kernel": kernel,
                "threshold": threshold,
                "top_k": None,
                "seconds": seconds,
                "candidates": stats.candidates,
                "integrated": stats.integrated,
                "pruned": stats.pruned,
            })
            print(f"  {kernel:10s} tau={threshold:<4g}: {seconds * 1000:7.2f} ms, "
                  f"{stats.integrated}/{stats.candidates} fully integrated "
                  f"({stats.pruned} pruned)")
        for top_k in TOP_KS:
            seconds, stats, results = run_kernel(
                answer_sets, kernel, args.repeats, top_k=top_k
            )
            verify_post_filter_equality(
                reference[kernel], results, 0.0, top_k, f"{kernel} top-{top_k}"
            )
            rows.append({
                "kernel": kernel,
                "threshold": 0.0,
                "top_k": top_k,
                "seconds": seconds,
                "candidates": stats.candidates,
                "integrated": stats.integrated,
                "pruned": stats.pruned,
            })
            print(f"  {kernel:10s} top-{top_k:<5d}: {seconds * 1000:7.2f} ms, "
                  f"{stats.integrated}/{stats.candidates} fully integrated "
                  f"({stats.pruned} pruned)")

    def row(kernel, threshold, top_k=None):
        return next(
            r for r in rows
            if r["kernel"] == kernel and r["threshold"] == threshold
            and r["top_k"] == top_k
        )

    scalar_full = row("scalar", 0.0)
    scalar_tau = row("scalar", 0.1)
    vector_full = row("vectorized", 0.0)
    vector_tau = row("vectorized", 0.1)
    work_reduction = 1.0 - scalar_tau["integrated"] / max(1, scalar_full["integrated"])
    scalar_speedup = (
        scalar_full["seconds"] / scalar_tau["seconds"]
        if scalar_tau["seconds"] > 0 else float("inf")
    )
    print(f"tau=0.1 vs tau=0: {scalar_full['integrated']} -> "
          f"{scalar_tau['integrated']} full integrations "
          f"({work_reduction:.0%} less refinement work), "
          f"scalar wall-time speedup {scalar_speedup:.2f}x")

    payload = {
        "benchmark": "threshold_pnn",
        "workload": "fig6c-uniform",
        "objects": args.objects,
        "queries": len(queries),
        "answer_sizes": answer_sizes,
        "rows": rows,
        "tau01_integrated": scalar_tau["integrated"],
        "tau0_integrated": scalar_full["integrated"],
        "tau01_work_reduction": work_reduction,
        "tau01_scalar_speedup": scalar_speedup,
        "tau01_vectorized_pruned": vector_tau["pruned"],
        "platform": platform.platform(),
        "python": platform.python_version(),
    }
    args.output_dir.mkdir(parents=True, exist_ok=True)
    path = args.output_dir / "BENCH_threshold.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {path}")

    if args.check:
        failures = []
        if scalar_tau["integrated"] >= scalar_full["integrated"]:
            failures.append(
                "tau=0.1 did not reduce full integrations in the scalar kernel"
            )
        if vector_tau["integrated"] >= vector_full["integrated"]:
            failures.append(
                "tau=0.1 did not reduce full integrations in the vectorized kernel"
            )
        if failures:
            for failure in failures:
                print(f"FAIL: {failure}", file=sys.stderr)
            return 1
        print(f"gate passed (tau=0.1 integrates "
              f"{scalar_tau['integrated']} < {scalar_full['integrated']} "
              f"candidates; {work_reduction:.0%} less refinement work)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
