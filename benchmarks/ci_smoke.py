#!/usr/bin/env python
"""CI bench-smoke runner: small benchmarks + a perf-regression gate.

Runs six fast benchmarks (IC construction, batch PNN, cold-start open,
qualification-probability refinement, execute/explain planning accuracy,
threshold-PNN early termination), writes one machine-readable
``BENCH_*.json`` per benchmark, and -- with ``--check`` -- fails when
construction or refinement wall-time regresses more than
``--max-regression`` times the checked-in baseline
(``benchmarks/baseline/BENCH_baseline.json``).  The execute/explain smoke
additionally hard-fails (no flag needed) when the planner's page-read
estimate drifts outside 2x of the measured reads, and the threshold smoke
when tau = 0.1 fails to reduce full-integration work.

Standalone on purpose: no pytest, just the library and the stdlib, so the CI
job (and a developer bisecting a slowdown) can run it directly::

    python benchmarks/ci_smoke.py --output-dir bench-out \
        --baseline benchmarks/baseline/BENCH_baseline.json --check

The baseline is intentionally generous (roughly 2x a warm local run) so the
2x gate trips on genuine algorithmic regressions, not on runner jitter.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.datasets.loader import load_dataset  # noqa: E402
from repro.engine import DiagramConfig, QueryEngine  # noqa: E402
from repro.queries.spec import BatchQuery, PNNQuery  # noqa: E402

OBJECTS = 120
QUERIES = 12
CONFIG_KNOBS = dict(backend="ic", page_capacity=32, rtree_fanout=16, seed_knn=60)


def write_json(output_dir: Path, name: str, payload: dict) -> Path:
    output_dir.mkdir(parents=True, exist_ok=True)
    path = output_dir / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def smoke_construction(bundle) -> tuple[QueryEngine, dict]:
    start = time.perf_counter()
    engine = QueryEngine.build(
        bundle.objects, bundle.domain, DiagramConfig(**CONFIG_KNOBS)
    )
    seconds = time.perf_counter() - start
    stats = engine.construction_stats
    return engine, {
        "benchmark": "construction_smoke",
        "objects": len(bundle.objects),
        "backend": CONFIG_KNOBS["backend"],
        "construction_seconds": seconds,
        "avg_cr_objects": stats.avg_cr_objects,
        "c_pruning_ratio": stats.c_pruning_ratio,
        "phase_fractions": stats.phase_fractions(),
    }


def smoke_batch_pnn(engine, queries) -> dict:
    sequential_reads = 0
    start = time.perf_counter()
    for query in queries:
        sequential_reads += engine.execute(PNNQuery(query)).io.page_reads
    sequential_seconds = time.perf_counter() - start
    before = engine.io_stats()
    start = time.perf_counter()
    stream = engine.execute(BatchQuery.of(queries))
    results = [result for _, result, _ in stream]
    batch_seconds = time.perf_counter() - start
    batch_reads = engine.io_stats().delta(before).page_reads
    return {
        "benchmark": "batch_pnn_smoke",
        "queries": len(results),
        "sequential_page_reads": sequential_reads,
        "sequential_seconds": sequential_seconds,
        "batch_page_reads": batch_reads,
        "batch_seconds": batch_seconds,
        "cache_hits": stream.cache.hits,
        "cache_misses": stream.cache.misses,
    }


def smoke_cold_start(engine, queries) -> dict:
    def answer_sets(served):
        return [
            served.execute(PNNQuery(q, compute_probabilities=False)).answer_ids
            for q in queries
        ]

    reference = answer_sets(engine)
    with tempfile.TemporaryDirectory() as tmp:
        path = str(Path(tmp) / "uv.snap")
        start = time.perf_counter()
        engine.save(path)
        save_seconds = time.perf_counter() - start

        open_seconds = {}
        for kind in ("file", "mmap"):
            start = time.perf_counter()
            reopened = QueryEngine.open(path, store=kind)
            open_seconds[kind] = time.perf_counter() - start
            if answer_sets(reopened) != reference:
                raise SystemExit(f"cold-start answers diverged for {kind} store")
    return {
        "benchmark": "cold_start_smoke",
        "save_seconds": save_seconds,
        "open_seconds": open_seconds,
        "answers_verified": True,
    }


def smoke_refinement(engine, queries) -> dict:
    """Vectorized vs scalar refinement (qualification probabilities) timing.

    Reuses the collection / timing / parity helpers of the full benchmark
    (``bench_prob_kernel.py``, importable because both scripts share this
    directory) so the smoke and the benchmark cannot drift apart.
    """
    from bench_prob_kernel import collect_answer_sets, max_parity_diff, time_kernel
    from repro.queries.probability import qualification_probabilities
    from repro.queries.probability_kernel import (
        RingCache,
        qualification_probabilities_vectorized,
    )

    answer_sets = collect_answer_sets(engine, queries)
    scalar_seconds, scalar = time_kernel(
        answer_sets, 1, lambda objs, q: qualification_probabilities(objs, q)
    )
    ring_cache = RingCache()
    vectorized_seconds, vectorized = time_kernel(
        answer_sets, 1,
        lambda objs, q: qualification_probabilities_vectorized(
            objs, q, ring_cache=ring_cache),
    )

    max_diff = max_parity_diff(scalar, vectorized)
    if max_diff > 1e-9:
        raise SystemExit(f"refinement kernels diverged: max abs diff {max_diff:.3e}")
    return {
        "benchmark": "refinement_smoke",
        "queries": len(queries),
        "scalar_seconds": scalar_seconds,
        "refinement_seconds": vectorized_seconds,
        "speedup": scalar_seconds / vectorized_seconds if vectorized_seconds else 0.0,
        "max_abs_diff": max_diff,
    }


def smoke_execute_explain(engine, queries) -> dict:
    """Planner accuracy gate: estimates within 2x of measured page reads.

    Explains every workload query, sums estimated and actual page reads,
    and hard-fails when the aggregate ratio leaves the [0.5, 2.0] band --
    the planner's EXPLAIN output is only trustworthy while its cost model
    tracks the simulated disk.
    """
    estimated = 0.0
    actual = 0
    strategies = set()
    for query in queries:
        report = engine.explain(PNNQuery(query))
        estimated += report.estimated_page_reads
        actual += report.actual_page_reads
        strategies.add(report.plan.strategy)
    ratio = estimated / actual if actual else float("inf")
    if not 0.5 <= ratio <= 2.0:
        raise SystemExit(
            f"planner estimate drifted: {estimated:.1f} estimated vs "
            f"{actual} actual page reads (ratio {ratio:.2f}, allowed 0.5-2.0)"
        )
    return {
        "benchmark": "execute_explain_smoke",
        "queries": len(queries),
        "estimated_page_reads": estimated,
        "actual_page_reads": actual,
        "estimate_ratio": ratio,
        "strategies": sorted(strategies),
    }


def smoke_threshold_pnn(engine, queries) -> dict:
    """tau-PNN gate: tau=0.1 must do less full-integration refinement work.

    Runs every workload query unfiltered and at tau=0.1, checks the filtered
    answers equal post-filtering the full answers, and hard-fails when the
    filter fails to reduce the number of fully-integrated candidates.
    """
    full_integrated = 0
    tau_integrated = 0
    pruned = 0
    for query in queries:
        full = engine.execute(PNNQuery(query))
        filtered = engine.execute(PNNQuery(query, threshold=0.1))
        expected = [a for a in full.answers if a.probability >= 0.1]
        got = [(a.oid, a.probability) for a in filtered.answers]
        want = [(a.oid, a.probability) for a in expected]
        if [g[0] for g in got] != [w[0] for w in want] or any(
            abs(g[1] - w[1]) > 1e-9 for g, w in zip(got, want)
        ):
            raise SystemExit(f"tau-PNN diverged from post-filtering at {query}")
        if full.refinement is not None:
            full_integrated += full.refinement.integrated
        if filtered.refinement is not None:
            tau_integrated += filtered.refinement.integrated
            pruned += filtered.refinement.pruned
    if tau_integrated >= full_integrated:
        raise SystemExit(
            f"tau=0.1 did not reduce refinement work "
            f"({tau_integrated} vs {full_integrated} full integrations)"
        )
    return {
        "benchmark": "threshold_pnn_smoke",
        "queries": len(queries),
        "tau": 0.1,
        "full_integrated": full_integrated,
        "tau_integrated": tau_integrated,
        "tau_pruned": pruned,
        "work_reduction": 1.0 - tau_integrated / max(1, full_integrated),
    }


GATED_METRICS = (
    ("construction_seconds", "construction"),
    ("refinement_seconds", "refinement"),
)


def check_regression(measured: dict, baseline_path: Path, max_regression: float) -> int:
    baseline = json.loads(baseline_path.read_text())
    failed = 0
    for key, label in GATED_METRICS:
        allowed = baseline[key] * max_regression
        got = measured[key]
        print(f"regression gate: {label} {got:.3f}s vs baseline "
              f"{baseline[key]:.3f}s "
              f"(allowed <= {allowed:.3f}s at {max_regression:.1f}x)")
        if got > allowed:
            print(f"FAIL: {label} wall-time regressed "
                  f"{got / baseline[key]:.2f}x over baseline "
                  f"(limit {max_regression:.1f}x)", file=sys.stderr)
            failed = 1
    if not failed:
        print("gate passed")
    return failed


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--objects", type=int, default=OBJECTS)
    parser.add_argument("--queries", type=int, default=QUERIES)
    parser.add_argument("--seed", type=int, default=13)
    parser.add_argument("--output-dir", default="bench-out", type=Path,
                        help="where BENCH_*.json files are written")
    parser.add_argument("--baseline", type=Path,
                        default=Path(__file__).parent / "baseline" / "BENCH_baseline.json")
    parser.add_argument("--check", action="store_true",
                        help="fail when construction regresses past the baseline")
    parser.add_argument("--max-regression", type=float, default=2.0,
                        help="allowed multiple of the baseline wall-time")
    args = parser.parse_args(argv)

    bundle = load_dataset("uniform", args.objects, diameter=300.0,
                          query_count=args.queries, seed=args.seed)
    queries = bundle.queries[: args.queries]

    engine, construction = smoke_construction(bundle)
    construction["platform"] = platform.platform()
    construction["python"] = platform.python_version()
    print(f"construction: {construction['construction_seconds']:.3f}s "
          f"over {construction['objects']} objects")
    write_json(args.output_dir, "construction", construction)

    batch = smoke_batch_pnn(engine, queries)
    print(f"batch pnn: {batch['batch_page_reads']} page reads vs "
          f"{batch['sequential_page_reads']} sequential")
    write_json(args.output_dir, "batch_pnn", batch)

    cold = smoke_cold_start(engine, queries)
    print(f"cold start: save {cold['save_seconds']:.3f}s, "
          f"open(file) {cold['open_seconds']['file']:.3f}s, "
          f"open(mmap) {cold['open_seconds']['mmap']:.3f}s")
    write_json(args.output_dir, "cold_start", cold)

    refinement = smoke_refinement(engine, queries)
    print(f"refinement: vectorized {refinement['refinement_seconds']:.3f}s vs "
          f"scalar {refinement['scalar_seconds']:.3f}s "
          f"({refinement['speedup']:.1f}x)")
    write_json(args.output_dir, "refinement", refinement)

    explain = smoke_execute_explain(engine, queries)
    print(f"execute/explain: {explain['estimated_page_reads']:.1f} estimated vs "
          f"{explain['actual_page_reads']} actual page reads "
          f"(ratio {explain['estimate_ratio']:.2f}, "
          f"strategies {', '.join(explain['strategies'])})")
    write_json(args.output_dir, "execute_explain", explain)

    threshold = smoke_threshold_pnn(engine, queries)
    print(f"threshold pnn: tau=0.1 integrates {threshold['tau_integrated']} vs "
          f"{threshold['full_integrated']} candidates "
          f"({threshold['work_reduction']:.0%} less refinement work, "
          f"{threshold['tau_pruned']} pruned)")
    write_json(args.output_dir, "threshold_pnn", threshold)

    if args.check:
        measured = dict(construction)
        measured["refinement_seconds"] = refinement["refinement_seconds"]
        return check_regression(measured, args.baseline, args.max_regression)
    return 0


if __name__ == "__main__":
    sys.exit(main())
