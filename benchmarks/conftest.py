"""Shared fixtures and helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper at reduced scale
(pure-Python substrate, see DESIGN.md): the printed tables show the paper's
reported series next to the measured one so that the *shape* comparison (who
wins, by how much, where it bends) is immediate.

Expensive constructions are shared across benchmark modules through
session-scoped fixtures; the ``benchmark`` fixture then times the individual
operation each figure is about.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List

import pytest

from repro.analysis.experiments import (
    QueryExperimentResult,
    run_construction_experiment,
    run_query_experiment,
)
from repro.datasets.loader import DatasetBundle, load_dataset

# Scaled-down workload knobs (the paper uses 10k-80k objects on a C++/disk
# stack; the pure-Python reproduction sweeps hundreds of objects and scales
# page capacity accordingly).  UV-index leaf entries (<ID, MBC, pointer>) are
# roughly half the size of R-tree leaf entries (MBR + id), so on equal-sized
# pages the UV-index fits about twice as many entries per page -- hence
# PAGE_CAPACITY = 2 * RTREE_FANOUT.  A small simulated read latency makes
# wall-clock query times reflect page I/O, as the paper's disk-based numbers
# do.
SWEEP_SIZES: List[int] = [100, 200, 400]
QUERY_COUNT = 12
PAGE_CAPACITY = 32
RTREE_FANOUT = 16
SEED_KNN = 60
# The paper covers ~0.4% of the 10k x 10k domain with uncertainty regions
# (30K objects of diameter 40).  With only a few hundred objects the same
# diameter would make the space unrealistically sparse, so the benchmark
# default scales the diameter up to keep the uncertainty density (and hence
# answer-set sizes) comparable to the paper's workload.
DIAMETER = 300.0
READ_LATENCY_S = 0.002


def run_scaled_query_experiment_defaults() -> Dict[str, object]:
    """The default keyword arguments for query experiments (for reference)."""
    return dict(
        page_capacity=PAGE_CAPACITY,
        rtree_fanout=RTREE_FANOUT,
        seed_knn=SEED_KNN,
        read_latency=READ_LATENCY_S,
        compute_probabilities=True,
    )


def scaled_bundle(name: str, count: int, diameter: float = DIAMETER, sigma=None,
                  seed: int = 0) -> DatasetBundle:
    """Load a dataset bundle with the benchmark-wide query count."""
    return load_dataset(
        name, count, diameter=diameter, sigma=sigma, query_count=QUERY_COUNT, seed=seed
    )


def run_scaled_query_experiment(bundle: DatasetBundle, **overrides) -> Dict[str, QueryExperimentResult]:
    """Query experiment with the benchmark-wide index knobs."""
    params = run_scaled_query_experiment_defaults()
    params.update(overrides)
    return run_query_experiment(bundle, **params)


def run_scaled_construction(bundle: DatasetBundle, method: str, **overrides):
    """Construction experiment with the benchmark-wide index knobs."""
    params = dict(
        page_capacity=PAGE_CAPACITY,
        rtree_fanout=RTREE_FANOUT,
        seed_knn=SEED_KNN,
    )
    params.update(overrides)
    return run_construction_experiment(bundle, method=method, **params)


@pytest.fixture(scope="session")
def uniform_query_sweep() -> Dict[int, Dict[str, QueryExperimentResult]]:
    """PNN query performance of the UV-index and the R-tree over the |O| sweep.

    Shared by the Figure 6(a), 6(b) and 6(c) benchmarks.  A small warm-up
    experiment runs first so that one-time costs (imports, numpy set-up) do
    not get attributed to the first sweep point.
    """
    warmup = scaled_bundle("uniform", 30, seed=999)
    run_scaled_query_experiment(warmup)

    results: Dict[int, Dict[str, QueryExperimentResult]] = {}
    for size in SWEEP_SIZES:
        bundle = scaled_bundle("uniform", size, seed=size)
        results[size] = run_scaled_query_experiment(bundle)
    return results


@pytest.fixture(scope="session")
def construction_sweep():
    """IC and ICR construction statistics over the |O| sweep.

    Shared by the Figure 7(b)-(e) benchmarks.
    """
    results = {"ic": {}, "icr": {}}
    for size in SWEEP_SIZES:
        bundle = scaled_bundle("uniform", size, seed=size)
        results["ic"][size] = run_scaled_construction(bundle, "ic")
        results["icr"][size] = run_scaled_construction(bundle, "icr")
    return results


def emit(capsys, text: str) -> None:
    """Print a result table straight to the terminal, bypassing capture."""
    with capsys.disabled():
        print("\n" + text + "\n")


def bench_output_dir() -> Path:
    """Where machine-readable ``BENCH_*.json`` files go.

    Defaults to ``bench-out/`` under the current directory; CI points
    ``BENCH_OUTPUT_DIR`` at its artifact staging directory.
    """
    root = Path(os.environ.get("BENCH_OUTPUT_DIR", "bench-out"))
    root.mkdir(parents=True, exist_ok=True)
    return root


def write_bench_json(name: str, payload: Dict) -> Path:
    """Write one benchmark's machine-readable result as ``BENCH_<name>.json``."""
    path = bench_output_dir() / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
