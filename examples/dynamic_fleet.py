#!/usr/bin/env python
"""Scenario: a dynamic fleet with k-nearest dispatching and map rendering.

This example exercises the extension modules built on top of the paper's
core, all through one :class:`QueryEngine`: live updates (vehicles joining
and leaving the fleet), probabilistic k-NN dispatching ("which 3 vehicles
could plausibly be the closest responders?"), and the SVG renderer for a
visual sanity check.

Run with::

    python examples/dynamic_fleet.py
"""

from repro import (
    DiagramConfig,
    KNNQuery,
    PNNQuery,
    Point,
    QueryEngine,
    UVDiagram,
    generate_uniform_objects,
)
from repro.uncertain.objects import UncertainObject
from repro.viz.svg import render_uv_diagram


def main() -> None:
    # A fleet of vehicles whose reported GPS positions are imprecise.
    vehicles, domain = generate_uniform_objects(150, diameter=350.0, seed=21)
    engine = QueryEngine.build(
        vehicles, domain,
        DiagramConfig(backend="ic", page_capacity=16, rtree_fanout=16, seed_knn=60),
    )
    print(f"fleet of {len(engine)} vehicles indexed "
          f"in {engine.construction_stats.total_seconds:.2f}s")

    # ------------------------------------------------------------------ #
    # Probabilistic k-NN dispatch: the three most plausible closest vehicles.
    # ------------------------------------------------------------------ #
    incident = Point(6_100.0, 3_800.0)
    k_result = engine.execute(KNNQuery(incident, k=3, worlds=3000))
    print(f"\ntop candidates to be among the 3 closest vehicles to "
          f"({incident.x:.0f}, {incident.y:.0f}):")
    for answer in k_result.top(5):
        print(f"  vehicle {answer.oid:>4}  P(in top-3) = {answer.probability:.3f}")
    print(f"  (probabilities over all {len(k_result.answers)} candidates sum to "
          f"{k_result.expected_in_top_k():.2f} = k)")

    # ------------------------------------------------------------------ #
    # The fleet changes: two vehicles go offline, one new vehicle appears
    # right next to the incident.
    # ------------------------------------------------------------------ #
    offline = [vid for vid, _ in [(a.oid, a) for a in k_result.top(2)]]
    for vid in offline:
        refreshed = engine.delete(vid)
        print(f"\nvehicle {vid} went offline -- "
              f"{len(refreshed)} nearby vehicles had their index entries refreshed")

    newcomer = UncertainObject.gaussian(9_999, Point(6_150.0, 3_850.0), 175.0)
    engine.insert(newcomer)
    print(f"vehicle {newcomer.oid} joined near the incident")

    result = engine.execute(PNNQuery(incident))
    print("\nPNN after the fleet update:")
    for answer in result.sorted_by_probability()[:4]:
        print(f"  vehicle {answer.oid:>4}  P(nearest) = {answer.probability:.3f}")
    assert newcomer.oid in result.answer_ids

    # ------------------------------------------------------------------ #
    # Render the final state of the UV-diagram.
    # ------------------------------------------------------------------ #
    canvas = render_uv_diagram(
        UVDiagram.from_engine(engine),
        width=700,
        highlight_cells=[newcomer.oid],
        query_points=[incident],
        title="dynamic fleet: UV-diagram after updates",
    )
    output = "dynamic_fleet_uv_diagram.svg"
    canvas.save(output)
    print(f"\nwrote {output} ({canvas.width}x{canvas.height}); "
          "open it in a browser to inspect the adaptive grid and the "
          "newcomer's highlighted UV-cell")


if __name__ == "__main__":
    main()
