#!/usr/bin/env python
"""Typed query descriptors, EXPLAIN, and threshold / top-k PNN.

The tour of the planning layer:

1. build an engine and express queries as immutable descriptors
   (``PNNQuery`` / ``KNNQuery`` / ``RangeQuery`` / ``BatchQuery``),
2. EXPLAIN a query: the chosen strategy, the cost model's page-read
   estimate, and -- because explain also runs the query -- the actual
   counted reads and per-stage timings,
3. run probability-threshold (tau) and top-k PNN, whose refinement step
   skips full integration for candidates that provably miss the filter,
4. stream a batch of queries through one shared read cache,
5. reopen a saved snapshot and show the planner honouring its saved config.

Run with::

    python examples/explain_queries.py
"""

import tempfile
from pathlib import Path

from repro import (
    BatchQuery,
    DiagramConfig,
    KNNQuery,
    PNNQuery,
    Point,
    QueryEngine,
    RangeQuery,
    Rect,
    generate_query_points,
    generate_uniform_objects,
)


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1. An engine plus a handful of descriptors.  Descriptors are frozen
    #    dataclasses: build once, reuse, log next to the plan that ran them.
    # ------------------------------------------------------------------ #
    objects, domain = generate_uniform_objects(300, diameter=500.0, seed=11)
    config = DiagramConfig(backend="ic", page_capacity=16, rtree_fanout=16,
                           seed_knn=60)
    engine = QueryEngine.build(objects, domain, config)
    point = Point(5_000.0, 5_000.0)
    print(f"engine: {engine.backend.name!r} backend over {len(engine)} objects\n")

    # ------------------------------------------------------------------ #
    # 2. EXPLAIN ANALYZE: the plan, its estimates, and what actually
    #    happened.  The planner prices the primary structure against the
    #    shared R-tree and notes why it chose what it chose.
    # ------------------------------------------------------------------ #
    report = engine.explain(PNNQuery(point))
    print(report.describe())
    print()

    # ------------------------------------------------------------------ #
    # 3. Threshold and top-k PNN.  Answers equal post-filtering the full
    #    result; the refinement step does provably less full integration.
    # ------------------------------------------------------------------ #
    full = engine.execute(PNNQuery(point))
    tau = engine.execute(PNNQuery(point, threshold=0.1))
    top2 = engine.execute(PNNQuery(point, top_k=2))
    print(f"full result   : {[(a.oid, round(a.probability, 3)) for a in full.answers]}")
    print(f"tau = 0.1     : {[(a.oid, round(a.probability, 3)) for a in tau.answers]}")
    print(f"top-2         : {[(a.oid, round(a.probability, 3)) for a in top2.answers]}")
    if tau.refinement is not None:
        print(f"tau refinement: {tau.refinement.integrated} integrated, "
              f"{tau.refinement.pruned} pruned of "
              f"{tau.refinement.candidates} candidates\n")

    # ------------------------------------------------------------------ #
    # 4. Other shapes ride the same entry point: k-NN over sampled worlds
    #    and UV-partition retrieval in a rectangle.
    # ------------------------------------------------------------------ #
    knn = engine.execute(KNNQuery(point, k=3, worlds=1000, seed=7))
    print(f"k-NN (k=3)    : {[(a.oid, round(a.probability, 3)) for a in knn.top(3)]}")
    partitions = engine.execute(RangeQuery(Rect(4000.0, 4000.0, 6000.0, 6000.0)))
    print(f"partitions    : {len(partitions.partitions)} in the query rectangle\n")

    # ------------------------------------------------------------------ #
    # 5. Batch streaming: (query, result, plan) triples arrive one by one
    #    while leaf reads stay shared across the whole batch.
    # ------------------------------------------------------------------ #
    workload = generate_query_points(25, domain, seed=99)
    stream = engine.execute(BatchQuery.of(workload, threshold=0.05))
    top_answers = []
    for _query, result, _plan in stream:
        best = result.top()
        if best is not None:
            top_answers.append(best.oid)
    print(f"batch stream  : {len(top_answers)} results via {stream.plan.strategy} "
          f"({stream.cache.hits} cached granule reads)")

    # ------------------------------------------------------------------ #
    # 6. Snapshots: a reopened engine plans with its *saved* configuration.
    # ------------------------------------------------------------------ #
    with tempfile.TemporaryDirectory() as tmp:
        path = str(Path(tmp) / "uv.snap")
        engine.save(path)
        served = QueryEngine.open(path)
        plan = served.planner.plan(PNNQuery(point))
        print(f"reopened plan : backend={plan.backend}, kernel={plan.prob_kernel}, "
              f"strategy={plan.strategy}")


if __name__ == "__main__":
    main()
