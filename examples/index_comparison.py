#!/usr/bin/env python
"""Scenario: choosing an index for a PNN workload (UV-index vs R-tree vs grid).

The paper's evaluation compares the UV-index against the R-tree with
branch-and-prune search; the related work also mentions uniform grids.  This
example runs the same PNN workload on all three indexes over the same data,
reports per-query time, page I/O, and candidate counts, and verifies that
they all return identical answer sets.

Run with::

    python examples/index_comparison.py
"""

import time

from repro import UVDiagram, load_dataset
from repro.analysis.report import format_table
from repro.core.uv_cell import answer_objects_brute_force
from repro.grid.uniform_grid import GridPNN, UniformGridIndex
from repro.storage.disk import DiskManager
from repro.storage.object_store import ObjectStore


def main() -> None:
    bundle = load_dataset("rrlines", 300, diameter=300.0, query_count=25, seed=9)
    print(f"dataset: {bundle.size} rail-corridor objects, "
          f"{len(bundle.queries)} query points")

    # UV-diagram (includes its own R-tree baseline, sharing the object store).
    diagram = UVDiagram.build(bundle.objects, bundle.domain, page_capacity=16,
                              rtree_fanout=16, seed_knn=80)

    # Uniform grid baseline with its own disk/object store.
    grid_disk = DiskManager()
    grid_store = ObjectStore(grid_disk)
    grid_store.bulk_load(bundle.objects)
    grid = UniformGridIndex(bundle.domain, resolution=16, disk=grid_disk)
    grid.build(bundle.objects)
    grid_pnn = GridPNN(grid, object_store=grid_store)

    processors = {
        "uv-index": lambda q: diagram.pnn(q),
        "r-tree": lambda q: diagram.pnn_rtree(q),
        "grid": lambda q: grid_pnn.query(q),
    }

    totals = {name: {"ms": 0.0, "io": 0, "candidates": 0} for name in processors}
    answer_sets = {}
    for query in bundle.queries:
        reference = answer_objects_brute_force(bundle.objects, query)
        for name, run in processors.items():
            start = time.perf_counter()
            result = run(query)
            elapsed = time.perf_counter() - start
            totals[name]["ms"] += 1000.0 * elapsed
            totals[name]["io"] += result.io.page_reads
            totals[name]["candidates"] += result.candidates_examined
            answer_sets.setdefault(name, []).append(sorted(result.answer_ids))
            assert sorted(result.answer_ids) == reference, f"{name} diverged at {query}"

    rows = []
    queries = len(bundle.queries)
    for name, numbers in totals.items():
        rows.append(
            [
                name,
                numbers["ms"] / queries,
                numbers["io"] / queries,
                numbers["candidates"] / queries,
            ]
        )
    print()
    print(
        format_table(
            ["index", "avg time (ms)", "avg page reads", "avg candidates"],
            rows,
            title="PNN workload comparison (all three indexes return identical answers)",
        )
    )
    print("\nall indexes agreed with the brute-force oracle on every query.")


if __name__ == "__main__":
    main()
