#!/usr/bin/env python
"""Scenario: choosing an index for a PNN workload (UV-index vs R-tree vs grid).

The paper's evaluation compares the UV-index against the R-tree with
branch-and-prune search; the related work also mentions uniform grids.  With
the pluggable backend registry this comparison is a loop over backend names:
each :class:`QueryEngine` runs the same workload behind the same query plane,
reports per-query time, page I/O, and candidate counts, and the answer sets
are verified to be identical.

Run with::

    python examples/index_comparison.py
"""

from repro import BatchQuery, DiagramConfig, PNNQuery, QueryEngine, load_dataset
from repro.analysis.report import format_table
from repro.core.uv_cell import answer_objects_brute_force

BACKENDS = ["ic", "rtree", "grid"]


def main() -> None:
    bundle = load_dataset("rrlines", 300, diameter=300.0, query_count=25, seed=9)
    print(f"dataset: {bundle.size} rail-corridor objects, "
          f"{len(bundle.queries)} query points")

    config = DiagramConfig(page_capacity=16, rtree_fanout=16, seed_knn=80,
                           grid_resolution=16)
    engines = {
        name: QueryEngine.build(bundle.objects, bundle.domain,
                                config.replace(backend=name))
        for name in BACKENDS
    }

    totals = {name: {"ms": 0.0, "io": 0, "candidates": 0} for name in engines}
    for query in bundle.queries:
        reference = answer_objects_brute_force(bundle.objects, query)
        for name, engine in engines.items():
            result = engine.execute(PNNQuery(query))
            totals[name]["ms"] += 1000.0 * result.timing.total()
            totals[name]["io"] += result.io.page_reads
            totals[name]["candidates"] += result.candidates_examined
            assert sorted(result.answer_ids) == reference, f"{name} diverged at {query}"

    rows = []
    queries = len(bundle.queries)
    for name, numbers in totals.items():
        rows.append(
            [
                name,
                numbers["ms"] / queries,
                numbers["io"] / queries,
                numbers["candidates"] / queries,
            ]
        )
    print()
    print(
        format_table(
            ["backend", "avg time (ms)", "avg page reads", "avg candidates"],
            rows,
            title="PNN workload comparison (all three backends return identical answers)",
        )
    )

    # Batch streaming shares leaf reads across the whole workload.
    ic_engine = engines["ic"]
    before = ic_engine.io_stats()
    stream = ic_engine.execute(
        BatchQuery.of(bundle.queries, compute_probabilities=False)
    )
    results = [result for _query, result, _plan in stream]
    reads = ic_engine.io_stats().delta(before).page_reads
    print(f"\nbatch mode on the UV-index backend: {reads} page reads "
          f"for {len(results)} queries ({stream.cache.hits} leaf reads served "
          "from the batch cache)")
    print("all backends agreed with the brute-force oracle on every query.")


if __name__ == "__main__":
    main()
