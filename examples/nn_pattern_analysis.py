#!/usr/bin/env python
"""Scenario: nearest-neighbour pattern analysis over skewed data.

Section V-C of the paper argues that the UV-diagram is not only a query
accelerator but also an analysis tool: the extent of a UV-cell tells you how
widely an object can be "the nearest thing", and the density of UV-partitions
reveals how contested different parts of the space are (the paper cites the
study of bluetooth-virus spreading among mobile users as a motivating
application).

This example builds UV-diagrams over a *uniform* and a *skewed* population of
imprecise mobile-device positions and contrasts their nearest-neighbour
patterns:

* cell-area distribution (how unequal is "nearest-neighbour coverage"?),
* partition density in the crowded centre vs the sparse periphery,
* how the same analysis degrades if the classic Voronoi diagram over the
  centre points is used instead (ignoring uncertainty).

Run with::

    python examples/nn_pattern_analysis.py
"""

import statistics

from repro import Rect, UVDiagram, generate_skewed_objects, generate_uniform_objects
from repro.voronoi.point_voronoi import PointVoronoiDiagram


def describe_cell_areas(diagram: UVDiagram, label: str) -> None:
    """Print summary statistics of the UV-cell areas."""
    areas = [diagram.uv_cell_area(obj.oid) for obj in diagram.objects]
    domain_area = diagram.domain.area()
    shares = [a / domain_area for a in areas]
    print(f"  {label}: UV-cell area as share of the domain -- "
          f"min {min(shares):.2%}, median {statistics.median(shares):.2%}, "
          f"max {max(shares):.2%}")


def describe_density(diagram: UVDiagram, region: Rect, label: str) -> None:
    """Print the nearest-neighbour density inside a region."""
    result = diagram.partitions_in(region)
    counts = [p.object_count for p in result.partitions]
    print(f"  {label}: {len(result.partitions)} partitions, "
          f"avg {statistics.mean(counts):.1f} / max {max(counts)} candidate NNs per partition")


def main() -> None:
    count = 220
    diameter = 250.0

    uniform_objects, domain = generate_uniform_objects(count, diameter=diameter, seed=5)
    skewed_objects, _ = generate_skewed_objects(count, sigma=1500.0, diameter=diameter, seed=5)

    uniform = UVDiagram.build(uniform_objects, domain, page_capacity=16,
                              rtree_fanout=16, seed_knn=60)
    skewed = UVDiagram.build(skewed_objects, domain, page_capacity=16,
                             rtree_fanout=16, seed_knn=60)
    print(f"built two UV-diagrams over {count} objects "
          f"(uniform: {uniform.construction_stats.total_seconds:.2f}s, "
          f"skewed: {skewed.construction_stats.total_seconds:.2f}s)")

    # ------------------------------------------------------------------ #
    # 1. Cell-area distribution: skewed data produces very unequal cells.
    # ------------------------------------------------------------------ #
    print("\nUV-cell area distribution:")
    describe_cell_areas(uniform, "uniform population")
    describe_cell_areas(skewed, "skewed population ")

    # ------------------------------------------------------------------ #
    # 2. Partition density: centre vs periphery of the skewed population.
    # ------------------------------------------------------------------ #
    centre = Rect.from_center(domain.center, domain.width * 0.1, domain.height * 0.1)
    corner = Rect(domain.xmin, domain.ymin, domain.xmin + domain.width * 0.2,
                  domain.ymin + domain.height * 0.2)
    print("\nnearest-neighbour density (skewed population):")
    describe_density(skewed, centre, "domain centre   ")
    describe_density(skewed, corner, "domain corner   ")

    # ------------------------------------------------------------------ #
    # 3. What the classic Voronoi diagram would claim (ignoring uncertainty):
    #    each point has exactly one nearest neighbour, so every "partition"
    #    has density 1 object -- the probabilistic ambiguity is invisible.
    # ------------------------------------------------------------------ #
    voronoi = PointVoronoiDiagram([o.center for o in skewed_objects], domain=domain)
    probe = domain.center
    crisp_owner = voronoi.nearest_site(probe)
    fuzzy = skewed.pnn(probe)
    print("\nuncertainty matters:")
    print(f"  classic Voronoi at the domain centre: exactly one NN, object {crisp_owner}")
    print(f"  UV-diagram at the same point: {len(fuzzy.answers)} possible NNs, "
          f"top-2 probabilities "
          f"{[round(a.probability, 3) for a in fuzzy.sorted_by_probability()[:2]]}")


if __name__ == "__main__":
    main()
