#!/usr/bin/env python
"""Parallel construction: shard a 500-object build across 4 workers.

The walk-through of the ``repro.parallel`` scheduler:

1. build a 500-object diagram **serially** (the reference),
2. build the same diagram with a 4-worker **multiprocessing** scheduler and
   verify the answers are bit-identical -- parallelism never changes results,
3. inspect the scheduler's **shard report** (who computed what, for how long),
4. **save a snapshot** of the parallel-built diagram so later processes serve
   it cold-start (`QueryEngine.open`) without rebuilding at all -- build in
   parallel once, open in milliseconds forever after.

Run with::

    python examples/parallel_build.py
"""

import os
import tempfile
import time

from repro import (
    ConstructionScheduler,
    DiagramConfig,
    PNNQuery,
    QueryEngine,
    available_workers,
    generate_query_points,
    generate_uniform_objects,
)


def main() -> None:
    objects, domain = generate_uniform_objects(500, diameter=300.0, seed=7)
    config = DiagramConfig(backend="ic", page_capacity=16, rtree_fanout=16,
                           seed_knn=60)
    queries = generate_query_points(20, domain, seed=1)

    # ------------------------------------------------------------------ #
    # 1. The serial reference build.
    # ------------------------------------------------------------------ #
    start = time.perf_counter()
    serial = QueryEngine.build(objects, domain, config)
    serial_seconds = time.perf_counter() - start
    print(f"serial build: {serial_seconds:.2f}s over {len(serial)} objects")

    # ------------------------------------------------------------------ #
    # 2. The same build, sharded across 4 worker processes.
    # ------------------------------------------------------------------ #
    scheduler = ConstructionScheduler(workers=4, shard_strategy="spatial_tile")
    start = time.perf_counter()
    parallel = QueryEngine.build(objects, domain, config.replace(workers=4),
                                 scheduler=scheduler)
    parallel_seconds = time.perf_counter() - start
    print(f"parallel build: {parallel_seconds:.2f}s with 4 workers "
          f"({available_workers()} usable cores, "
          f"{serial_seconds / parallel_seconds:.2f}x speedup)")

    assert all(
        parallel.execute(PNNQuery(q)).probabilities
        == serial.execute(PNNQuery(q)).probabilities
        for q in queries
    )
    print("answers verified bit-identical to the serial build")

    # ------------------------------------------------------------------ #
    # 3. What did each shard cost?
    # ------------------------------------------------------------------ #
    report = scheduler.last_report
    print(f"shard report: {report.shard_count} shards via {report.executor} "
          f"executor, strategy {report.strategy!r}")
    for shard in report.shards:
        print(f"  shard {shard.index}: {shard.size} objects "
              f"in {shard.seconds:.2f}s")

    # ------------------------------------------------------------------ #
    # 4. Snapshot the parallel-built diagram for cold-start serving.
    # ------------------------------------------------------------------ #
    workdir = tempfile.mkdtemp(prefix="uv_parallel_")
    snapshot = os.path.join(workdir, "uv_diagram.snap")
    parallel.save(snapshot)
    start = time.perf_counter()
    served = QueryEngine.open(snapshot, store="mmap")
    open_seconds = time.perf_counter() - start
    result = served.execute(PNNQuery(queries[0]))
    print(f"snapshot: {os.path.getsize(snapshot):,} bytes; reopened via mmap "
          f"in {open_seconds * 1000:.1f}ms "
          f"({parallel_seconds / open_seconds:.0f}x faster than rebuilding); "
          f"first query -> {result.answer_ids}")


if __name__ == "__main__":
    main()
