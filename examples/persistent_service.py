#!/usr/bin/env python
"""Persistent storage: build once, snapshot, and serve from a cold start.

The walk-through of the storage layer's persistence API:

1. build an engine and **save** it -- the whole diagram (config, objects,
   UV-index, R-tree, leaf pages) becomes one snapshot file,
2. **open** the snapshot in a "fresh process" and verify the answers are
   identical to the original engine, without rebuilding anything,
3. serve the same snapshot through the **mmap** store (lazy, read-mostly --
   the cold-start path a query service would use),
4. turn on the **buffer pool** and watch repeated queries stop costing I/O,
5. keep a *live* engine directly on a file-backed store.

Run with::

    python examples/persistent_service.py
"""

import os
import tempfile
import time

from repro import (
    DiagramConfig,
    PNNQuery,
    QueryEngine,
    generate_query_points,
    generate_uniform_objects,
)


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="uv_snapshots_")
    snapshot = os.path.join(workdir, "uv_diagram.snap")

    # ------------------------------------------------------------------ #
    # 1. Build once, save once.
    # ------------------------------------------------------------------ #
    objects, domain = generate_uniform_objects(300, diameter=300.0, seed=7)
    config = DiagramConfig(backend="ic", page_capacity=16, rtree_fanout=16,
                           seed_knn=60)
    start = time.perf_counter()
    engine = QueryEngine.build(objects, domain, config)
    build_seconds = time.perf_counter() - start
    engine.save(snapshot)
    print(f"built in {build_seconds:.2f}s, saved "
          f"{os.path.getsize(snapshot):,} bytes to {snapshot}")

    # ------------------------------------------------------------------ #
    # 2. Reopen without reconstruction; answers are identical.
    # ------------------------------------------------------------------ #
    start = time.perf_counter()
    served = QueryEngine.open(snapshot)
    open_seconds = time.perf_counter() - start
    queries = generate_query_points(20, domain, seed=1)
    assert all(
        served.execute(PNNQuery(q)).probabilities
        == engine.execute(PNNQuery(q)).probabilities
        for q in queries
    )
    print(f"reopened in {open_seconds*1000:.1f}ms "
          f"({build_seconds / open_seconds:.0f}x faster than rebuilding), "
          f"answers identical")

    # ------------------------------------------------------------------ #
    # 3. Cold-start serving through mmap: nothing is decoded up front.
    # ------------------------------------------------------------------ #
    cold = QueryEngine.open(snapshot, store="mmap")
    result = cold.execute(PNNQuery(queries[0]))
    print(f"mmap serving: first query -> {result.answer_ids} "
          f"[{result.io.page_reads} page reads]")

    # ------------------------------------------------------------------ #
    # 4. The buffer pool turns repeated reads into cache hits.
    # ------------------------------------------------------------------ #
    cached = QueryEngine.open(snapshot, buffer_pages=64)
    for q in queries:
        cached.execute(PNNQuery(q))
    for q in queries:  # warm pass
        cached.execute(PNNQuery(q))
    stats = cached.io_stats()
    print(f"buffer pool: {stats.cache_hits} hits / {stats.cache_misses} misses "
          f"({stats.cache_hit_ratio:.0%} hit ratio)")

    # ------------------------------------------------------------------ #
    # 5. Or keep the live engine on a durable file store from the start.
    # ------------------------------------------------------------------ #
    live_path = os.path.join(workdir, "live.snap")
    live = QueryEngine.build(
        objects, domain,
        config.replace(store="file", store_path=live_path),
    )
    live.save(live_path)  # flushes the working set in place + writes metadata
    print(f"live file-backed engine flushed to {live_path} "
          f"(dirty={live.dirty})")


if __name__ == "__main__":
    main()
