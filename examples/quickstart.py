#!/usr/bin/env python
"""Quickstart: build a UV-diagram and run probabilistic nearest-neighbour queries.

This is the five-minute tour of the library:

1. generate a small uncertain dataset (objects = circular uncertainty region
   + pdf),
2. build a query engine with the paper's recommended IC construction
   (``DiagramConfig(backend="ic")``),
3. run a PNN query and inspect the answer objects and their qualification
   probabilities,
4. compare against the R-tree baseline and a brute-force oracle,
5. peek at the structure of the underlying UV-index,
6. evaluate a whole workload in one batch with shared leaf reads.

Run with::

    python examples/quickstart.py
"""

from repro import (
    BatchQuery,
    DiagramConfig,
    PNNQuery,
    Point,
    QueryEngine,
    generate_query_points,
    generate_uniform_objects,
)
from repro.core.uv_cell import answer_objects_brute_force


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1. A small synthetic dataset: 200 objects in a 10k x 10k domain, each
    #    with a circular uncertainty region of diameter 300 and a truncated
    #    Gaussian pdf stored as a 20-bar histogram (the paper's setup).
    # ------------------------------------------------------------------ #
    objects, domain = generate_uniform_objects(200, diameter=300.0, seed=7)
    print(f"dataset: {len(objects)} uncertain objects in "
          f"[{domain.xmin:.0f},{domain.xmax:.0f}]^2")

    # ------------------------------------------------------------------ #
    # 2. Build the query engine (IC construction: I-pruning + C-pruning, then
    #    index the cr-objects directly).  The backend is a registry name, so
    #    swapping "ic" for "grid" or "rtree" changes the index, not the code.
    # ------------------------------------------------------------------ #
    config = DiagramConfig(backend="ic", page_capacity=16, rtree_fanout=16,
                           seed_knn=60)
    engine = QueryEngine.build(objects, domain, config)
    stats = engine.construction_stats
    print(f"built UV-index in {stats.total_seconds:.2f}s "
          f"(avg |C_i| = {stats.avg_cr_objects:.1f}, "
          f"pruning ratio = {stats.c_pruning_ratio:.1%})")

    # ------------------------------------------------------------------ #
    # 3. A probabilistic nearest-neighbour query.
    # ------------------------------------------------------------------ #
    query = Point(5_000.0, 5_000.0)
    result = engine.execute(PNNQuery(query))
    print(f"\nPNN at ({query.x:.0f}, {query.y:.0f}):")
    for answer in result.sorted_by_probability():
        obj = engine.object(answer.oid)
        print(f"  object {answer.oid:>4}  "
              f"center=({obj.center.x:7.1f}, {obj.center.y:7.1f})  "
              f"P(nearest) = {answer.probability:.3f}")
    print(f"  total probability = {result.total_probability():.3f}, "
          f"leaf-page reads = {result.io.page_reads}")

    # ------------------------------------------------------------------ #
    # 4. Cross-check against the R-tree baseline and a brute-force oracle
    #    (a second engine whose backend IS the branch-and-prune R-tree).
    # ------------------------------------------------------------------ #
    rtree_engine = QueryEngine.build(objects, domain, config.replace(backend="rtree"))
    rtree_result = rtree_engine.execute(PNNQuery(query))
    brute = answer_objects_brute_force(objects, query)
    print("\nconsistency check:")
    print(f"  UV-index answers : {sorted(result.answer_ids)}")
    print(f"  R-tree answers   : {sorted(rtree_result.answer_ids)}")
    print(f"  brute force      : {brute}")
    assert sorted(result.answer_ids) == sorted(rtree_result.answer_ids) == brute

    # ------------------------------------------------------------------ #
    # 5. A short query workload + index structure.
    # ------------------------------------------------------------------ #
    queries = generate_query_points(20, domain, seed=42)
    uv_io = sum(engine.execute(PNNQuery(q, compute_probabilities=False)).io.page_reads
                for q in queries)
    rt_io = sum(rtree_engine.execute(PNNQuery(q, compute_probabilities=False)).io.page_reads
                for q in queries)
    print(f"\nworkload of {len(queries)} queries: "
          f"UV-index {uv_io} page reads vs R-tree {rt_io} page reads")

    index_stats = engine.statistics()
    print("UV-index structure: "
          f"{index_stats['leaf_nodes']:.0f} leaves, "
          f"{index_stats['nonleaf_nodes']:.0f} non-leaf nodes, "
          f"max depth {index_stats['max_depth']:.0f}, "
          f"{index_stats['avg_entries_per_leaf']:.1f} entries/leaf on average")

    # ------------------------------------------------------------------ #
    # 6. Batch evaluation: the whole workload streamed through one shared
    #    read cache -- leaf page lists are read once and shared across the
    #    queries that land in them.
    # ------------------------------------------------------------------ #
    before = engine.io_stats()
    stream = engine.execute(BatchQuery.of(queries, compute_probabilities=False))
    results = [result for _query, result, _plan in stream]
    reads = engine.io_stats().delta(before).page_reads
    print(f"batch mode: {reads} page reads for {len(results)} queries "
          f"({stream.cache.hits} leaf reads served from the batch cache)")


if __name__ == "__main__":
    main()
