#!/usr/bin/env python
"""Scenario: imprecise object locations extracted from satellite imagery.

The paper's introduction motivates the UV-diagram with geographical objects
whose positions are imprecise -- e.g. objects extracted from noisy satellite
images, or user positions deliberately blurred for privacy.  This example
models a town whose features cluster along roads (the *roads-like* generator),
builds a UV-diagram, and answers the kinds of questions the paper discusses:

* "which facilities could be closest to this incident location, and with what
  probability?" (PNN),
* "over how large an area could facility X be the nearest one?" (UV-cell
  retrieval),
* "how does the nearest-neighbour density look inside this district?"
  (UV-partition retrieval).

Run with::

    python examples/satellite_objects.py
"""

from repro import Point, Rect, UVDiagram
from repro.datasets.real_like import generate_roads_like


def main() -> None:
    # Facilities detected along a road network; every detected position is
    # uncertain within a 400-unit-diameter circle (image resolution + privacy
    # blurring).
    objects, domain = generate_roads_like(300, diameter=400.0, roads=15, seed=3)
    diagram = UVDiagram.build(objects, domain, page_capacity=16, rtree_fanout=16,
                              seed_knn=80)
    print(f"indexed {len(diagram)} imprecise facilities "
          f"in {diagram.construction_stats.total_seconds:.2f}s")

    # ------------------------------------------------------------------ #
    # An incident is reported at a known, precise location.  Which facilities
    # might be the closest responder, and how likely is each?
    # ------------------------------------------------------------------ #
    incident = Point(4_200.0, 6_300.0)
    result = diagram.pnn(incident)
    print(f"\nincident at ({incident.x:.0f}, {incident.y:.0f}) -- "
          f"{len(result.answers)} candidate nearest facilities:")
    for answer in result.sorted_by_probability():
        facility = diagram.object(answer.oid)
        distance = facility.center.distance_to(incident)
        print(f"  facility {answer.oid:>4}  ~{distance:7.1f} units away  "
              f"P(nearest) = {answer.probability:.3f}")

    # ------------------------------------------------------------------ #
    # Nearest-neighbour pattern analysis: the "coverage area" of the most
    # probable facility, i.e. where it can possibly be the nearest one.
    # ------------------------------------------------------------------ #
    top = result.sorted_by_probability()[0]
    area = diagram.uv_cell_area(top.oid)
    extent = diagram.uv_cell_extent(top.oid)
    print(f"\nfacility {top.oid} can be the nearest neighbour over "
          f"~{area / domain.area():.1%} of the domain")
    print(f"  approximate extent: x in [{extent.xmin:.0f}, {extent.xmax:.0f}], "
          f"y in [{extent.ymin:.0f}, {extent.ymax:.0f}]")

    # ------------------------------------------------------------------ #
    # District-level density: how many facilities compete to be the nearest
    # neighbour across a chosen district?
    # ------------------------------------------------------------------ #
    district = Rect(3_000.0, 5_000.0, 6_000.0, 8_000.0)
    partitions = diagram.partitions_in(district)
    densities = [p.density for p in partitions.partitions]
    print(f"\ndistrict [{district.xmin:.0f},{district.xmax:.0f}] x "
          f"[{district.ymin:.0f},{district.ymax:.0f}]:")
    print(f"  {len(partitions.partitions)} UV-partitions intersect the district")
    print(f"  densest partition has {max(p.object_count for p in partitions.partitions)} "
          "candidate nearest neighbours")
    print(f"  density range: {min(densities):.2e} .. {max(densities):.2e} objects/unit^2")
    print(f"  retrieval cost: {partitions.io.page_reads} page reads, "
          f"{1000.0 * partitions.seconds:.1f} ms")


if __name__ == "__main__":
    main()
