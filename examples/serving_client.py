#!/usr/bin/env python
"""Scenario: query a running ``repro serve`` instance over HTTP.

The serving layer turns one saved snapshot into a multi-process query
service; this example plays the client side with nothing but the stdlib.
It starts a service in-process for the demo (so the script is
self-contained), but every request below works identically against a
stand-alone server started with::

    python -m repro build --objects 200 --save uv.snap
    python -m repro serve --load uv.snap --workers 4 --port 8765

and then ``ServingClient("http://127.0.0.1:8765")``.

Run with::

    python examples/serving_client.py
"""

import json
import tempfile
import urllib.error
import urllib.request


class ServingClient:
    """A minimal JSON-over-HTTP client for the ``repro serve`` API."""

    def __init__(self, url: str, client_id: str = "example-client"):
        self.url = url.rstrip("/")
        self.client_id = client_id

    def _call(self, method: str, path: str, body=None):
        data = json.dumps(body).encode("utf-8") if body is not None else None
        request = urllib.request.Request(
            self.url + path, data=data, method=method,
            headers={"Content-Type": "application/json",
                     "X-Client-Id": self.client_id},
        )
        try:
            with urllib.request.urlopen(request, timeout=30) as response:
                return response.status, json.loads(response.read())
        except urllib.error.HTTPError as error:
            # 429 = back off and retry; 400 = fix the request body.
            return error.code, json.loads(error.read())

    def query(self, descriptor: dict):
        """POST /query -- the body is a serialized query descriptor."""
        return self._call("POST", "/query", descriptor)

    def explain(self, descriptor: dict):
        """POST /explain -- EXPLAIN ANALYZE over the wire."""
        return self._call("POST", "/explain", descriptor)

    def health(self):
        return self._call("GET", "/health")

    def stats(self):
        return self._call("GET", "/stats")


def main() -> None:
    from repro import DiagramConfig, QueryEngine, generate_uniform_objects
    from repro.serve import QueryService, ServeConfig, wait_for_health

    # -- a snapshot to serve (normally: `repro build --save uv.snap`) ----- #
    objects, domain = generate_uniform_objects(150, diameter=350.0, seed=21)
    engine = QueryEngine.build(objects, domain, DiagramConfig(backend="icr"))
    snapshot = tempfile.mkdtemp(prefix="serving-example-") + "/uv.snap"
    engine.save(snapshot)

    # -- the service (normally: `repro serve --load uv.snap --workers 2`) - #
    config = ServeConfig(snapshot_path=snapshot, workers=2, port=0,
                         rate_limit=200.0)
    with QueryService(config) as service:
        assert wait_for_health(service.url, timeout=30)
        client = ServingClient(service.url)

        status, health = client.health()
        print(f"health: {health['status']} "
              f"({health['workers_alive']}/{health['workers_total']} workers)")

        # A probability-threshold PNN query: "who is the nearest neighbour
        # of (500, 500) with at least 10% probability?"
        status, result = client.query(
            {"type": "pnn", "point": [500.0, 500.0], "threshold": 0.1}
        )
        print(f"\nPNN(500, 500) tau=0.1 -> HTTP {status}")
        for answer in result["answers"]:
            print(f"  object {answer['oid']}: p={answer['probability']:.3f}")
        print(f"  ({result['io']['page_reads']} page reads)")

        # The same point, EXPLAIN ANALYZE: plan + estimates vs. actuals.
        status, report = client.explain(
            {"type": "pnn", "point": [500.0, 500.0], "threshold": 0.1}
        )
        plan = report["plan"]
        print(f"\nexplain -> strategy {plan['strategy']!r}, "
              f"{report['estimated_page_reads']:.1f} estimated vs "
              f"{report['actual_page_reads']} actual page reads")

        # A batch: many PNN queries through one shared read cache.
        status, batch = client.query({"type": "batch", "queries": [
            {"type": "pnn", "point": [x, 400.0]} for x in (200.0, 210.0, 220.0)
        ]})
        print(f"\nbatch of {len(batch['results'])} queries: "
              f"{batch['cache_hits']} leaf reads served from the shared cache")

        # Server-side observability: per-query-type latency histograms.
        status, stats = client.stats()
        for kind, histogram in sorted(stats["router"]["latency"].items()):
            print(f"latency[{kind}]: n={histogram['count']} "
                  f"p50={histogram['p50_ms']:.1f}ms "
                  f"p99={histogram['p99_ms']:.1f}ms")

    print("\nservice drained and stopped.")


if __name__ == "__main__":
    main()
