#!/usr/bin/env python
"""Scenario: the full lifecycle of a spatially-sharded deployment.

One logical UV-diagram, split across four shard snapshots behind a
scatter-gather router: build the fleet, watch the router skip shards whose
possible-region bound cannot affect a query, verify answers are
bit-identical to an unsharded engine, stream live updates into the owning
shards' WALs, checkpoint the whole fleet, and rebalance it into a new
epoch after the updates skew the tiles.

Run with::

    python examples/sharded_deployment.py
"""

import tempfile
from pathlib import Path

from repro import (
    DiagramConfig,
    PNNQuery,
    Point,
    QueryEngine,
    generate_uniform_objects,
)
from repro.shard import (
    ShardedQueryEngine,
    build_sharded_deployment,
    rebalance,
)
from repro.uncertain.objects import UncertainObject


def main() -> None:
    objects, domain = generate_uniform_objects(240, diameter=350.0, seed=5)
    config = DiagramConfig(backend="ic", page_capacity=16, seed_knn=60)

    with tempfile.TemporaryDirectory() as tmp:
        fleet = str(Path(tmp) / "fleet")

        # ------------------------------------------------------------- #
        # Build: one live deployment directory per shard + a SHARDMAP.
        # ------------------------------------------------------------- #
        deployment = build_sharded_deployment(
            objects, domain, fleet, config=config, shards=4
        )
        print(f"built epoch {deployment.epoch} with "
              f"{len(deployment.shard_map)} shards:")
        for info in deployment.shard_map.shards:
            print(f"  shard {info.shard_id}: {info.objects} objects, "
                  f"tile [{info.tile.xmin:.0f}, {info.tile.ymin:.0f}] - "
                  f"[{info.tile.xmax:.0f}, {info.tile.ymax:.0f}]")

        # ------------------------------------------------------------- #
        # Query: same surface as QueryEngine, bit-identical answers,
        # and the router's bound-distance pruning shows up as fewer
        # candidate page reads than scattering to every shard.
        # ------------------------------------------------------------- #
        corner = PNNQuery(Point(domain.xmin + 40.0, domain.ymin + 40.0))
        reference = QueryEngine.build(objects, domain, config)
        with ShardedQueryEngine.open(fleet) as engine:
            routed = engine.execute(corner)
            assert ([a.to_dict() for a in routed.answers]
                    == [a.to_dict() for a in reference.execute(corner).answers])
            print(f"\ncorner PNN answers match the unsharded engine; "
                  f"routed candidate reads: {routed.index_io.page_reads}")
        with ShardedQueryEngine.open(fleet) as engine:
            scattered = engine.execute(corner, scatter_all=True)
            print(f"scatter-to-all would have paid: "
                  f"{scattered.index_io.page_reads}")

        # ------------------------------------------------------------- #
        # Live updates: inserts/deletes route to the owning shard's WAL.
        # Pile newcomers into one corner to skew the tiles.
        # ------------------------------------------------------------- #
        with ShardedQueryEngine.open_live(fleet) as engine:
            for i in range(40):
                center = Point(domain.xmin + 300.0 + 17.0 * i,
                               domain.ymin + 300.0 + 11.0 * i)
                engine.insert(UncertainObject.uniform(10_000 + i, center, 160.0))
            engine.delete(objects[0].oid)
            print(f"\nstreamed 41 updates; pending WAL records per fleet: "
                  f"{engine.pending_wal_records}")
            folded = engine.checkpoint()
            print(f"checkpointed every shard; generations now "
                  f"{[summary.generation for summary in folded]}")

        # ------------------------------------------------------------- #
        # Rebalance: re-tile the skewed fleet into epoch 2 behind an
        # atomic SHARDMAP flip. Answers must not change.
        # ------------------------------------------------------------- #
        with ShardedQueryEngine.open(fleet) as engine:
            before = [a.to_dict() for a in engine.execute(corner).answers]
        plan, new_deployment = rebalance(fleet, prune=True)
        print(f"\n{plan.describe()}")
        with ShardedQueryEngine.open(fleet) as engine:
            after = [a.to_dict() for a in engine.execute(corner).answers]
            assert before == after, "rebalance changed an answer"
            print(f"epoch {engine.epoch}: same answers, "
                  f"{len(new_deployment.shard_map)} shards, "
                  f"per-shard objects "
                  f"{[info.objects for info in new_deployment.shard_map.shards]}")


if __name__ == "__main__":
    main()
