"""Setuptools entry point.

The pyproject.toml carries the project metadata; this file exists so that
``pip install -e .`` also works with older setuptools/pip tool-chains that
lack PEP 660 editable-install support (e.g. offline environments without the
``wheel`` package).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "UV-diagram: a Voronoi diagram for uncertain data (ICDE 2010) - "
        "reproduction library"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    package_data={"repro": ["py.typed"]},
    python_requires=">=3.9",
    install_requires=["numpy", "scipy"],
    extras_require={"dev": ["pytest", "pytest-benchmark", "hypothesis"]},
)
