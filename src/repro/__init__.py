"""repro: a reproduction of "UV-diagram: A Voronoi Diagram for Uncertain Data".

The package implements the UV-diagram of Cheng, Xie, Yiu, Chen and Sun (ICDE
2010) together with every substrate the paper's evaluation depends on: an
uncertain-object model, a simulated disk with I/O accounting, an R-tree
baseline with branch-and-prune PNN search, the adaptive UV-index, and the
probability machinery for probabilistic nearest-neighbour queries.

Typical usage::

    from repro import DiagramConfig, PNNQuery, Point, QueryEngine, generate_uniform_objects

    objects, domain = generate_uniform_objects(500, seed=7)
    engine = QueryEngine.build(objects, domain, DiagramConfig(backend="ic"))
    result = engine.execute(PNNQuery(Point(5000.0, 5000.0), threshold=0.1))
    for answer in result.answers:
        print(answer.oid, answer.probability)
    print(engine.explain(PNNQuery(Point(5000.0, 5000.0))))

The legacy ``UVDiagram`` facade remains available and forwards to the engine.
"""

from repro.geometry.point import Point
from repro.geometry.circle import Circle
from repro.geometry.rectangle import Rect
from repro.uncertain.objects import UncertainObject
from repro.uncertain.pdf import HistogramPdf, TruncatedGaussianPdf, UniformPdf
from repro.core.diagram import UVDiagram
from repro.engine import (
    BatchResult,
    BatchStream,
    DiagramConfig,
    ExplainReport,
    IndexBackend,
    QueryEngine,
    QueryPlan,
    QueryPlanner,
    ReadOnlyEngineError,
    UnsupportedQueryError,
    available_backends,
    register_backend,
)
from repro.queries.spec import (
    BatchQuery,
    KNNQuery,
    PNNQuery,
    RangeQuery,
    query_from_dict,
)
from repro.core.uv_cell import UVCell, build_all_uv_cells, build_exact_uv_cell
from repro.core.uv_index import UVIndex
from repro.core.cr_objects import CRObjectFinder
from repro.core.construction import (
    build_uv_index_basic,
    build_uv_index_ic,
    build_uv_index_icr,
)
from repro.core.pnn import UVIndexPNN
from repro.parallel import ConstructionScheduler, available_workers
from repro.core.pattern import PatternAnalyzer
from repro.rtree.tree import RTree
from repro.rtree.pnn import RTreePNN
from repro.queries.result import PNNAnswer, PNNResult
from repro.datasets.synthetic import (
    DEFAULT_DOMAIN,
    generate_query_points,
    generate_skewed_objects,
    generate_uniform_objects,
)
from repro.datasets.real_like import real_like_dataset
from repro.datasets.loader import DatasetBundle, load_dataset

__version__ = "1.0.0"

__all__ = [
    "Point",
    "Circle",
    "Rect",
    "UncertainObject",
    "UniformPdf",
    "TruncatedGaussianPdf",
    "HistogramPdf",
    "UVDiagram",
    "QueryEngine",
    "QueryPlan",
    "QueryPlanner",
    "ExplainReport",
    "DiagramConfig",
    "IndexBackend",
    "BatchResult",
    "BatchStream",
    "PNNQuery",
    "KNNQuery",
    "RangeQuery",
    "BatchQuery",
    "query_from_dict",
    "ReadOnlyEngineError",
    "UnsupportedQueryError",
    "available_backends",
    "register_backend",
    "UVCell",
    "build_exact_uv_cell",
    "build_all_uv_cells",
    "UVIndex",
    "CRObjectFinder",
    "build_uv_index_basic",
    "build_uv_index_ic",
    "build_uv_index_icr",
    "ConstructionScheduler",
    "available_workers",
    "UVIndexPNN",
    "PatternAnalyzer",
    "RTree",
    "RTreePNN",
    "PNNAnswer",
    "PNNResult",
    "DEFAULT_DOMAIN",
    "generate_uniform_objects",
    "generate_skewed_objects",
    "generate_query_points",
    "real_like_dataset",
    "DatasetBundle",
    "load_dataset",
    "__version__",
]
