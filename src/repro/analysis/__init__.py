"""Experiment harness: instrumented runs, aggregation, and table formatting.

The benchmark scripts under ``benchmarks/`` are thin wrappers around this
package: each one loads a dataset, calls an experiment function defined here,
and prints the resulting table next to the corresponding series from the
paper.
"""

from repro.analysis.experiments import (
    QueryExperimentResult,
    ConstructionExperimentResult,
    run_query_experiment,
    run_construction_experiment,
    compare_query_performance,
)
from repro.analysis.report import format_table, format_comparison, series_summary

__all__ = [
    "QueryExperimentResult",
    "ConstructionExperimentResult",
    "run_query_experiment",
    "run_construction_experiment",
    "compare_query_performance",
    "format_table",
    "format_comparison",
    "series_summary",
]
