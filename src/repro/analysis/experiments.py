"""Reusable experiment drivers shared by the benchmark scripts.

Each driver builds the indexes once, runs a batch of PNN queries (or a
construction run), and aggregates the metrics the paper reports: average
query time, average leaf-page I/O per query, the three-way time breakdown,
construction time with its phase breakdown, and pruning ratios.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.construction import (
    ConstructionStats,
    build_uv_index_basic,
    build_uv_index_ic,
    build_uv_index_icr,
)
from repro.core.pnn import UVIndexPNN
from repro.datasets.loader import DatasetBundle
from repro.engine.config import DiagramConfig
from repro.engine.engine import QueryEngine
from repro.geometry.point import Point
from repro.queries.result import PNNResult
from repro.rtree.pnn import RTreePNN
from repro.rtree.tree import RTree
from repro.storage.disk import DiskManager
from repro.storage.object_store import ObjectStore
from repro.storage.stats import TimingBreakdown


@dataclass
class QueryExperimentResult:
    """Aggregated PNN query metrics for one index on one dataset."""

    index_name: str
    dataset: str
    objects: int
    queries: int
    avg_time_ms: float
    avg_io: float
    avg_index_io: float
    avg_answers: float
    avg_candidates: float
    timing: TimingBreakdown = field(default_factory=TimingBreakdown)

    def timing_ms(self) -> Dict[str, float]:
        """Average per-query milliseconds of each time bucket."""
        if self.queries == 0:
            return {}
        return {
            name: 1000.0 * seconds / self.queries
            for name, seconds in self.timing.buckets.items()
        }


@dataclass
class ConstructionExperimentResult:
    """Aggregated construction metrics for one method on one dataset."""

    method: str
    dataset: str
    objects: int
    seconds: float
    stats: ConstructionStats

    def phase_fractions(self) -> Dict[str, float]:
        """Phase shares of construction time."""
        return self.stats.phase_fractions()


def _aggregate_queries(
    index_name: str,
    dataset_name: str,
    object_count: int,
    results: Sequence[PNNResult],
) -> QueryExperimentResult:
    total_time = 0.0
    total_io = 0
    total_index_io = 0
    total_answers = 0
    total_candidates = 0
    timing = TimingBreakdown()
    for result in results:
        if result.timing is not None:
            total_time += result.timing.total()
            timing.merge(result.timing)
        if result.io is not None:
            total_io += result.io.page_reads
        if result.index_io is not None:
            total_index_io += result.index_io.page_reads
        total_answers += len(result.answers)
        total_candidates += result.candidates_examined
    count = max(1, len(results))
    return QueryExperimentResult(
        index_name=index_name,
        dataset=dataset_name,
        objects=object_count,
        queries=len(results),
        avg_time_ms=1000.0 * total_time / count,
        avg_io=total_io / count,
        avg_index_io=total_index_io / count,
        avg_answers=total_answers / count,
        avg_candidates=total_candidates / count,
        timing=timing,
    )


def run_query_experiment(
    bundle: DatasetBundle,
    queries: Optional[Sequence[Point]] = None,
    construction: str = "ic",
    compute_probabilities: bool = True,
    page_capacity: Optional[int] = None,
    max_nonleaf: int = 4000,
    split_threshold: float = 1.0,
    seed_knn: int = 300,
    rtree_fanout: int = 100,
    read_latency: float = 0.0,
) -> Dict[str, QueryExperimentResult]:
    """Run the same PNN workload on the UV-index and the R-tree baseline.

    Args:
        read_latency: optional simulated cost (seconds) of one page read,
            applied to both indexes' disks so that wall-clock query times
            reflect I/O the way the paper's disk-based measurements do.

    Returns a mapping ``{"uv-index": ..., "r-tree": ...}``.
    """
    queries = list(queries) if queries is not None else list(bundle.queries)
    objects = bundle.objects

    # Separate disks so that each index's I/O is counted independently.
    uv_disk = DiskManager(read_latency=read_latency)
    uv_store = ObjectStore(uv_disk)
    uv_store.bulk_load(objects)
    helper_rtree = RTree.bulk_load(objects, disk=DiskManager(), fanout=rtree_fanout)

    builder = {
        "ic": build_uv_index_ic,
        "icr": build_uv_index_icr,
    }.get(construction)
    if builder is None:
        raise ValueError(f"unsupported construction for query experiments: {construction!r}")
    uv_index, _ = builder(
        objects,
        bundle.domain,
        rtree=helper_rtree,
        disk=uv_disk,
        page_capacity=page_capacity,
        max_nonleaf=max_nonleaf,
        split_threshold=split_threshold,
        seed_knn=seed_knn,
    )
    uv_pnn = UVIndexPNN(uv_index, object_store=uv_store)

    rtree_disk = DiskManager(read_latency=read_latency)
    rtree_store = ObjectStore(rtree_disk)
    rtree_store.bulk_load(objects)
    rtree = RTree.bulk_load(objects, disk=rtree_disk, fanout=rtree_fanout)
    rtree_pnn = RTreePNN(rtree, object_store=rtree_store)

    uv_results = [
        uv_pnn.query(q, compute_probabilities=compute_probabilities) for q in queries
    ]
    rtree_results = [
        rtree_pnn.query(q, compute_probabilities=compute_probabilities) for q in queries
    ]

    return {
        "uv-index": _aggregate_queries(
            "uv-index", bundle.name, len(objects), uv_results
        ),
        "r-tree": _aggregate_queries(
            "r-tree", bundle.name, len(objects), rtree_results
        ),
    }


@dataclass
class BackendComparisonRow:
    """Aggregated metrics for one backend in a side-by-side comparison."""

    backend: str
    objects: int
    queries: int
    build_seconds: float
    avg_query_ms: float
    avg_page_reads: float
    avg_index_reads: float
    avg_answers: float
    answers_agree: bool
    cache_hit_ratio: float = 0.0


def run_backend_comparison(
    bundle: DatasetBundle,
    backend_names: Sequence[str],
    queries: Optional[Sequence[Point]] = None,
    config: Optional[DiagramConfig] = None,
    compute_probabilities: bool = False,
    prebuilt: Optional[Dict[str, QueryEngine]] = None,
) -> List[BackendComparisonRow]:
    """Run the same PNN workload through several engine backends.

    Each backend gets its own engine (and disk, so I/O is counted
    independently); ``answers_agree`` records whether a backend returned the
    same answer sets as the first backend in the list, which exercises the
    registry's parity guarantee end-to-end.  ``prebuilt`` supplies existing
    engines by backend name (e.g. one reopened from a snapshot); those skip
    the build and report a zero build time.  ``cache_hit_ratio`` reflects the
    integrated buffer pool over the workload (zero when ``buffer_pages`` is
    off).
    """
    if not backend_names:
        raise ValueError("at least one backend name is required")
    queries = list(queries) if queries is not None else list(bundle.queries)
    config = config if config is not None else DiagramConfig()

    rows: List[BackendComparisonRow] = []
    reference_answers: Optional[List[List[int]]] = None
    for name in backend_names:
        prebuilt_engine = (prebuilt or {}).get(name)
        if prebuilt_engine is not None:
            engine = prebuilt_engine
            build_seconds = 0.0
        else:
            start = time.perf_counter()
            engine = QueryEngine.build(
                bundle.objects, bundle.domain, config.replace(backend=name)
            )
            build_seconds = time.perf_counter() - start
        workload_before = engine.disk.stats.snapshot()
        # Pin each engine to its own primary structure: the table compares
        # index structures, so the planner must not reroute a slow backend's
        # queries to the shared R-tree.
        results = [
            engine._legacy_pnn(q, compute_probabilities=compute_probabilities)
            for q in queries
        ]
        workload_io = engine.disk.stats.delta(workload_before)
        answers = [sorted(r.answer_ids) for r in results]
        if reference_answers is None:
            reference_answers = answers
        aggregated = _aggregate_queries(name, bundle.name, len(bundle.objects), results)
        rows.append(
            BackendComparisonRow(
                backend=name,
                objects=len(bundle.objects),
                queries=len(queries),
                build_seconds=build_seconds,
                avg_query_ms=aggregated.avg_time_ms,
                avg_page_reads=aggregated.avg_io,
                avg_index_reads=aggregated.avg_index_io,
                avg_answers=aggregated.avg_answers,
                answers_agree=answers == reference_answers,
                cache_hit_ratio=workload_io.cache_hit_ratio,
            )
        )
    return rows


def compare_query_performance(
    results: Dict[str, QueryExperimentResult]
) -> Dict[str, float]:
    """Win factors of the UV-index over the R-tree (time and I/O)."""
    uv = results["uv-index"]
    rt = results["r-tree"]
    return {
        "time_ratio_rtree_over_uv": (
            rt.avg_time_ms / uv.avg_time_ms if uv.avg_time_ms > 0 else float("inf")
        ),
        "io_ratio_rtree_over_uv": (
            rt.avg_io / uv.avg_io if uv.avg_io > 0 else float("inf")
        ),
    }


def run_construction_experiment(
    bundle: DatasetBundle,
    method: str = "ic",
    page_capacity: Optional[int] = None,
    max_nonleaf: int = 4000,
    split_threshold: float = 1.0,
    seed_knn: int = 300,
    rtree_fanout: int = 100,
) -> ConstructionExperimentResult:
    """Time one construction pipeline (Basic / ICR / IC) on a dataset."""
    objects = bundle.objects
    disk = DiskManager()
    method = method.lower()
    start = time.perf_counter()
    if method == "basic":
        _, stats = build_uv_index_basic(
            objects,
            bundle.domain,
            disk=disk,
            page_capacity=page_capacity,
            max_nonleaf=max_nonleaf,
            split_threshold=split_threshold,
        )
    else:
        rtree = RTree.bulk_load(objects, disk=DiskManager(), fanout=rtree_fanout)
        builder = build_uv_index_ic if method == "ic" else build_uv_index_icr
        _, stats = builder(
            objects,
            bundle.domain,
            rtree=rtree,
            disk=disk,
            page_capacity=page_capacity,
            max_nonleaf=max_nonleaf,
            split_threshold=split_threshold,
            seed_knn=seed_knn,
        )
    elapsed = time.perf_counter() - start
    return ConstructionExperimentResult(
        method=method,
        dataset=bundle.name,
        objects=len(objects),
        seconds=elapsed,
        stats=stats,
    )
