"""Plain-text table formatting for the benchmark harness.

The paper reports results as figures and one table; the reproduction prints
every result as an aligned text table so that "the same rows/series the paper
reports" can be read directly from the benchmark output (and diffed between
runs).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
    float_format: str = "{:.3f}",
) -> str:
    """Render an aligned text table.

    Args:
        headers: column names.
        rows: row values; floats are formatted with ``float_format``.
        title: optional title line printed above the table.
        float_format: format spec applied to float cells.
    """
    def render(cell: object) -> str:
        if isinstance(cell, float):
            return float_format.format(cell)
        return str(cell)

    rendered_rows = [[render(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    parts: List[str] = []
    if title:
        parts.append(title)
    parts.append(line(list(headers)))
    parts.append(line(["-" * w for w in widths]))
    for row in rendered_rows:
        parts.append(line(row))
    return "\n".join(parts)


def format_comparison(
    label: str,
    paper_series: Dict[object, float],
    measured_series: Dict[object, float],
    paper_unit: str = "",
    measured_unit: str = "",
) -> str:
    """Side-by-side table of the paper's reported series and the measured one.

    The absolute values are not expected to match (different hardware and
    scale); the table makes the *shape* comparison explicit.
    """
    keys = list(paper_series.keys()) + [
        k for k in measured_series.keys() if k not in paper_series
    ]
    rows = []
    for key in keys:
        rows.append(
            [
                key,
                paper_series.get(key, float("nan")),
                measured_series.get(key, float("nan")),
            ]
        )
    headers = [
        "parameter",
        f"paper {paper_unit}".strip(),
        f"measured {measured_unit}".strip(),
    ]
    return format_table(headers, rows, title=label)


def series_summary(series: Dict[object, float]) -> str:
    """One-line summary (min / max / monotonicity) of a numeric series."""
    if not series:
        return "(empty series)"
    values = list(series.values())
    keys = list(series.keys())
    increasing = all(values[i] <= values[i + 1] + 1e-12 for i in range(len(values) - 1))
    decreasing = all(values[i] >= values[i + 1] - 1e-12 for i in range(len(values) - 1))
    trend = "increasing" if increasing else "decreasing" if decreasing else "non-monotonic"
    return (
        f"range [{min(values):.3f}, {max(values):.3f}] over {keys[0]}..{keys[-1]}, "
        f"trend: {trend}"
    )


def ratio(numerator: float, denominator: float) -> float:
    """Safe ratio helper used by the win-factor summaries."""
    if denominator == 0:
        return float("inf") if numerator > 0 else 0.0
    return numerator / denominator
