"""Command-line interface: ``python -m repro <command>``.

Four sub-commands cover the everyday interactions with the library:

* ``info``      -- library version and a summary of the available components,
* ``build``     -- generate a dataset, build a UV-diagram, print index stats,
* ``query``     -- build a diagram and answer one or more PNN queries,
* ``render``    -- build a diagram and write an SVG picture of it.

The CLI is intentionally thin: every command maps directly onto the public
Python API so that scripts can graduate from the shell to Python verbatim.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro import __version__
from repro.core.diagram import UVDiagram
from repro.datasets.loader import load_dataset
from repro.geometry.point import Point


def _add_dataset_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dataset", default="uniform",
                        choices=["uniform", "skewed", "utility", "roads", "rrlines"],
                        help="dataset generator to use")
    parser.add_argument("--objects", type=int, default=200, help="number of objects")
    parser.add_argument("--diameter", type=float, default=300.0,
                        help="uncertainty-region diameter")
    parser.add_argument("--sigma", type=float, default=2000.0,
                        help="centre standard deviation (skewed dataset only)")
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument("--method", default="ic", choices=["ic", "icr", "basic"],
                        help="UV-index construction method")
    parser.add_argument("--page-capacity", type=int, default=16,
                        help="leaf-page capacity of the UV-index")
    parser.add_argument("--seed-knn", type=int, default=60,
                        help="k of the seed-selection k-NN query")


def _build_diagram(args: argparse.Namespace) -> UVDiagram:
    bundle = load_dataset(
        args.dataset,
        args.objects,
        diameter=args.diameter,
        sigma=args.sigma if args.dataset == "skewed" else None,
        seed=args.seed,
    )
    return UVDiagram.build(
        bundle.objects,
        bundle.domain,
        method=args.method,
        page_capacity=args.page_capacity,
        seed_knn=args.seed_knn,
        rtree_fanout=16,
    )


def _command_info(_: argparse.Namespace) -> int:
    print(f"repro {__version__} -- UV-diagram: a Voronoi diagram for uncertain data")
    print("components: geometry kernel, uncertain-object model, simulated disk,")
    print("            R-tree baseline, uniform grid, UV-index (IC/ICR/Basic),")
    print("            PNN / k-PNN / pattern queries, dataset generators, SVG viz")
    print("entry points: repro.UVDiagram.build(...), repro.load_dataset(...)")
    return 0


def _command_build(args: argparse.Namespace) -> int:
    diagram = _build_diagram(args)
    stats = diagram.construction_stats
    print(f"built a UV-diagram over {len(diagram)} objects "
          f"({args.dataset}, diameter {args.diameter})")
    print(f"  method            : {stats.method}")
    print(f"  construction time : {stats.total_seconds:.2f} s")
    if stats.avg_cr_objects:
        print(f"  avg |C_i|         : {stats.avg_cr_objects:.1f}")
        print(f"  pruning ratio     : {stats.c_pruning_ratio:.1%}")
    for key, value in diagram.index_statistics().items():
        print(f"  index {key:<22}: {value:.1f}")
    return 0


def _command_query(args: argparse.Namespace) -> int:
    diagram = _build_diagram(args)
    if args.at:
        coordinates = [float(part) for part in args.at.split(",")]
        if len(coordinates) != 2:
            print("error: --at expects 'x,y'", file=sys.stderr)
            return 2
        queries = [Point(coordinates[0], coordinates[1])]
    else:
        from repro.datasets.synthetic import generate_query_points

        queries = generate_query_points(args.count, diagram.domain, seed=args.seed + 1)
    for query in queries:
        result = diagram.pnn(query)
        answers = ", ".join(
            f"{a.oid} (p={a.probability:.3f})" for a in result.sorted_by_probability()
        )
        print(f"PNN({query.x:.1f}, {query.y:.1f}) -> {answers} "
              f"[{result.io.page_reads} page reads]")
    return 0


def _command_render(args: argparse.Namespace) -> int:
    from repro.viz.svg import render_uv_diagram

    diagram = _build_diagram(args)
    highlight = [int(oid) for oid in args.highlight.split(",") if oid] if args.highlight else []
    canvas = render_uv_diagram(
        diagram,
        width=args.width,
        highlight_cells=highlight,
        title=f"UV-diagram ({args.dataset}, {len(diagram)} objects)",
    )
    canvas.save(args.output)
    print(f"wrote {args.output} ({canvas.width}x{canvas.height})")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="UV-diagram: a Voronoi diagram for uncertain data (ICDE 2010 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command")

    info = subparsers.add_parser("info", help="show library information")
    info.set_defaults(handler=_command_info)

    build = subparsers.add_parser("build", help="build a UV-diagram and print statistics")
    _add_dataset_arguments(build)
    build.set_defaults(handler=_command_build)

    query = subparsers.add_parser("query", help="build a UV-diagram and run PNN queries")
    _add_dataset_arguments(query)
    query.add_argument("--at", default=None, help="query point as 'x,y' (default: random)")
    query.add_argument("--count", type=int, default=3,
                       help="number of random queries when --at is not given")
    query.set_defaults(handler=_command_query)

    render = subparsers.add_parser("render", help="render the UV-diagram to an SVG file")
    _add_dataset_arguments(render)
    render.add_argument("--output", default="uv_diagram.svg", help="output SVG path")
    render.add_argument("--width", type=int, default=800, help="image width in pixels")
    render.add_argument("--highlight", default="",
                        help="comma-separated object ids whose UV-cells are shaded")
    render.set_defaults(handler=_command_render)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if not getattr(args, "handler", None):
        parser.print_help()
        return 1
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
