"""Command-line interface: ``python -m repro <command>``.

Six sub-commands cover the everyday interactions with the library:

* ``info``        -- library version and a summary of the available components,
* ``build``       -- generate a dataset, build a query engine, print index
  stats (``--save`` persists a snapshot file; ``--save-dir`` lays out a live
  deployment directory: generation 1 + write-ahead log + manifest),
* ``query``       -- answer PNN queries over a built engine (``--load`` serves
  a snapshot or deployment directory instead of rebuilding; ``--threshold`` /
  ``--top-k`` run the probability-threshold and top-k variants),
* ``explain``     -- plan a query, run it, and print estimated vs. actual page
  reads plus per-stage timings (EXPLAIN ANALYZE),
* ``compare``     -- run the same query workload across several backends,
* ``render``      -- build (or ``--load``) a diagram and write an SVG picture,
* ``serve``       -- run the multi-worker HTTP query service over a snapshot
  or deployment directory (``repro serve --load uv.snap --workers 4``),
* ``checkpoint``  -- fold a deployment's write-ahead log into a new snapshot
  generation and flip the manifest (accepts sharded deployments too, and
  ``--status`` then reports every shard),
* ``shard-build`` -- build a spatially-sharded deployment: one snapshot
  generation per shard behind a ``SHARDMAP`` manifest,
* ``rebalance``   -- split / merge a sharded deployment's shards from
  observed statistics into a new epoch,
* ``wal-inspect`` -- print a write-ahead log's records and diagnostics,
* ``lint``        -- run the project-invariant static analyzer
  (``repro lint``, also available as ``python -m repro.lint``).

The CLI is intentionally thin: every command maps directly onto the public
Python API (:class:`repro.QueryEngine` + :class:`repro.DiagramConfig` +
the :mod:`repro.queries.spec` descriptors) so that scripts can graduate from
the shell to Python verbatim.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro import __version__
from repro.datasets.loader import DatasetBundle, load_dataset
from repro.engine import DiagramConfig, QueryEngine, available_backends
from repro.geometry.point import Point
from repro.queries.spec import BatchQuery, PNNQuery


def _add_dataset_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dataset", default="uniform",
                        choices=["uniform", "skewed", "utility", "roads", "rrlines"],
                        help="dataset generator to use")
    parser.add_argument("--objects", type=int, default=200, help="number of objects")
    parser.add_argument("--diameter", type=float, default=300.0,
                        help="uncertainty-region diameter")
    parser.add_argument("--sigma", type=float, default=2000.0,
                        help="centre standard deviation (skewed dataset only)")
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument("--method", default=None, choices=available_backends(),
                        help="deprecated alias of --backend")
    parser.add_argument("--backend", default=None, choices=available_backends(),
                        help="index backend (default: ic)")
    parser.add_argument("--page-capacity", type=int, default=16,
                        help="leaf-page capacity of the UV-index")
    parser.add_argument("--seed-knn", type=int, default=60,
                        help="k of the seed-selection k-NN query")
    parser.add_argument("--grid-resolution", type=int, default=16,
                        help="cells per axis of the grid backend")
    parser.add_argument("--store", default="memory", choices=["memory", "file"],
                        help="page store backing the build (default: memory)")
    parser.add_argument("--store-path", default=None,
                        help="page-file path (required for --store file)")
    parser.add_argument("--buffer-pages", type=int, default=None,
                        help="LRU buffer-pool capacity on the read path "
                             "(0 = off; default: off for builds, the saved "
                             "value for --load)")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes for the construction's "
                             "cell-computation phase (1 = serial; results "
                             "are bit-identical either way)")
    parser.add_argument("--shard-strategy", default="round_robin",
                        choices=["round_robin", "spatial_tile"],
                        help="how objects are sharded across workers")
    parser.add_argument("--prob-kernel", default=None,
                        choices=["vectorized", "scalar"],
                        help="qualification-probability kernel for the PNN "
                             "refinement step (scalar is the pure-Python "
                             "reference implementation; default: vectorized, "
                             "or the saved value for --load)")


def _add_query_point_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--at", default=None, help="query point as 'x,y' (default: random)")
    parser.add_argument("--count", type=int, default=3,
                        help="number of random queries when --at is not given")
    parser.add_argument("--threshold", type=float, default=0.0,
                        help="qualification-probability threshold tau: only "
                             "answers with p >= tau are reported, with "
                             "refinement-level early termination")
    parser.add_argument("--top-k", type=int, default=None, dest="top_k",
                        help="report only the k most probable answers")


def _add_load_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--load", default=None, metavar="SNAPSHOT",
                        help="serve a saved snapshot (or a live deployment "
                             "directory's current generation) instead of "
                             "rebuilding")
    parser.add_argument("--load-store", default="file",
                        choices=["file", "mmap", "memory"],
                        help="store kind used to open --load (default: file)")


def _load_bundle(args: argparse.Namespace) -> DatasetBundle:
    return load_dataset(
        args.dataset,
        args.objects,
        diameter=args.diameter,
        sigma=args.sigma if args.dataset == "skewed" else None,
        query_count=max(50, getattr(args, "queries", 0) or 0),
        seed=args.seed,
    )


def _config_from_args(args: argparse.Namespace, backend: Optional[str] = None) -> DiagramConfig:
    if args.method and not args.backend:
        print("warning: --method is deprecated, use --backend", file=sys.stderr)
    if args.store == "file" and not args.store_path:
        print("error: --store file requires --store-path", file=sys.stderr)
        raise SystemExit(2)
    return DiagramConfig(
        backend=backend or args.backend or args.method or "ic",
        page_capacity=args.page_capacity,
        seed_knn=args.seed_knn,
        rtree_fanout=16,
        grid_resolution=args.grid_resolution,
        store=args.store,
        store_path=args.store_path,
        buffer_pages=args.buffer_pages if args.buffer_pages is not None else 0,
        workers=args.workers,
        shard_strategy=args.shard_strategy,
        prob_kernel=args.prob_kernel or "vectorized",
    )


def _build_engine(args: argparse.Namespace) -> QueryEngine:
    bundle = _load_bundle(args)
    return QueryEngine.build(bundle.objects, bundle.domain, _config_from_args(args))


def _open_snapshot(args: argparse.Namespace):
    """Open ``--load`` with clean CLI errors for bad paths and formats.

    A live deployment directory resolves through its manifest to the current
    snapshot generation (read-path only: the WAL is already folded in or
    pending, and a query CLI must not replay someone else's log).  A sharded
    deployment (a directory holding a ``SHARDMAP``) opens as a scatter-gather
    router over every shard's current generation.
    """
    from repro.engine.snapshot import resolve_snapshot
    from repro.shard import ShardedQueryEngine, is_sharded_directory
    from repro.storage.pagestore import PageStoreError

    try:
        if is_sharded_directory(args.load):
            return ShardedQueryEngine.open(args.load, store=args.load_store,
                                           buffer_pages=args.buffer_pages)
        target, _generation = resolve_snapshot(args.load)
        return QueryEngine.open(target, store=args.load_store,
                                buffer_pages=args.buffer_pages)
    except (OSError, PageStoreError, ValueError) as exc:
        print(f"error: cannot open snapshot {args.load}: {exc}", file=sys.stderr)
        raise SystemExit(2) from exc


def _engine_backend_name(engine) -> str:
    """Backend label of a single engine or a sharded router."""
    name = getattr(engine, "backend_name", None)
    return name if name is not None else engine.backend.name


def _obtain_engine(args: argparse.Namespace):
    """A served engine: reopened from ``--load`` when given, else freshly built."""
    if getattr(args, "load", None):
        engine = _open_snapshot(args)
        if args.prob_kernel and args.prob_kernel != engine.config.prob_kernel:
            # The refinement kernel is a query-time setting, so an explicit
            # --prob-kernel overrides the snapshot's saved choice.
            engine.config = engine.config.replace(prob_kernel=args.prob_kernel)
        shards = getattr(engine, "engines", None)
        layout = f", {len(shards)} shards" if shards is not None else ""
        print(f"opened snapshot {args.load} ({_engine_backend_name(engine)!r} "
              f"backend, {len(engine)} objects, {args.load_store} store{layout})")
        return engine
    return _build_engine(args)


def _command_info(_: argparse.Namespace) -> int:
    print(f"repro {__version__} -- UV-diagram: a Voronoi diagram for uncertain data")
    print("components: geometry kernel, uncertain-object model, simulated disk,")
    print("            R-tree baseline, uniform grid, UV-index (IC/ICR/Basic),")
    print("            PNN / k-PNN / pattern / batch queries, live updates,")
    print("            dataset generators, SVG viz")
    print(f"backends: {', '.join(available_backends())}")
    print("entry points: repro.QueryEngine.build(objects, domain, DiagramConfig(...)),")
    print("              repro.load_dataset(...)")
    return 0


def _command_build(args: argparse.Namespace) -> int:
    engine = _build_engine(args)
    stats = engine.construction_stats
    print(f"built a {engine.backend.name!r} engine over {len(engine)} objects "
          f"({args.dataset}, diameter {args.diameter})")
    print(f"  method            : {stats.method}")
    print(f"  construction time : {stats.total_seconds:.2f} s")
    if stats.avg_cr_objects:
        print(f"  avg |C_i|         : {stats.avg_cr_objects:.1f}")
        print(f"  pruning ratio     : {stats.c_pruning_ratio:.1%}")
    for key, value in engine.statistics().items():
        print(f"  index {key:<22}: {value:.1f}")
    save_paths = []
    if args.store == "file":
        # A file-backed build would otherwise leave only empty allocation-time
        # slots behind (leaf lists are mutated in memory until a flush).
        save_paths.append(args.store_path)
    if args.save and args.save not in save_paths:
        save_paths.append(args.save)
    for save_path in save_paths:
        import os

        engine.save(save_path)
        print(f"  snapshot          : {save_path} "
              f"({os.path.getsize(save_path)} bytes)")
    if args.save_dir:
        manifest = engine.save_generation(args.save_dir)
        print(f"  deployment        : {args.save_dir} "
              f"(generation {manifest.generation}, {manifest.snapshot}, "
              f"empty WAL)")
    return 0


def _query_points(args: argparse.Namespace, engine: QueryEngine) -> List[Point]:
    """The workload of a query/explain run: ``--at`` or random points."""
    if args.at:
        coordinates = [float(part) for part in args.at.split(",")]
        if len(coordinates) != 2:
            print("error: --at expects 'x,y'", file=sys.stderr)
            raise SystemExit(2)
        return [Point(coordinates[0], coordinates[1])]
    from repro.datasets.synthetic import generate_query_points

    return generate_query_points(args.count, engine.domain, seed=args.seed + 1)


def _pnn_descriptor(args: argparse.Namespace, point: Point) -> PNNQuery:
    try:
        return PNNQuery(
            point,
            threshold=args.threshold,
            top_k=args.top_k,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        raise SystemExit(2) from exc


def _command_query(args: argparse.Namespace) -> int:
    engine = _obtain_engine(args)
    try:
        queries = _query_points(args, engine)
        descriptors = [_pnn_descriptor(args, query) for query in queries]
    except SystemExit as exc:
        return int(exc.code)
    sequential_reads = 0
    for descriptor in descriptors:
        try:
            result = engine.execute(descriptor)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        sequential_reads += result.io.page_reads
        answers = ", ".join(
            f"{a.oid} (p={a.probability:.3f})" for a in result.sorted_by_probability()
        )
        label = "PNN"
        if args.threshold > 0.0:
            label += f"[tau={args.threshold:g}]"
        if args.top_k is not None:
            label += f"[top-{args.top_k}]"
        print(f"{label}({result.query.x:.1f}, {result.query.y:.1f}) -> {answers} "
              f"[{result.io.page_reads} page reads]")
    if len(queries) > 1:
        stream = engine.execute(
            BatchQuery.of(queries, compute_probabilities=False)
        )
        before = engine.io_stats()
        batch_results = [result for _, result, _ in stream]
        batch_reads = engine.io_stats().delta(before).page_reads
        print(f"batch mode: {batch_reads} page reads vs {sequential_reads} "
              f"sequential ({stream.cache.hits} leaf reads served from the "
              f"cache, {len(batch_results)} results streamed)")
    return 0


def _command_explain(args: argparse.Namespace) -> int:
    engine = _obtain_engine(args)
    try:
        queries = _query_points(args, engine)
        descriptors = [_pnn_descriptor(args, query) for query in queries]
    except SystemExit as exc:
        return int(exc.code)
    for query, descriptor in zip(queries, descriptors):
        report = engine.explain(descriptor)
        print(f"EXPLAIN PNN({query.x:.1f}, {query.y:.1f})")
        print(report.describe())
        answers = ", ".join(
            f"{a.oid} (p={a.probability:.3f})"
            for a in report.result.sorted_by_probability()
        ) or "(no answers)"
        print(f"  answers              : {answers}")
        if report.result.refinement is not None:
            refinement = report.result.refinement
            print(f"  refinement           : {refinement.integrated} integrated, "
                  f"{refinement.pruned} pruned, {refinement.trivial} trivial "
                  f"of {refinement.candidates} candidates")
        print()
    return 0


def _command_compare(args: argparse.Namespace) -> int:
    from repro.analysis.experiments import run_backend_comparison
    from repro.analysis.report import format_table

    backends = [name.strip().lower() for name in args.backends.split(",") if name.strip()]
    if len(backends) < 2:
        print("error: --backends expects at least two comma-separated names",
              file=sys.stderr)
        return 2
    unknown = sorted(set(backends) - set(available_backends()))
    if unknown:
        print(f"error: unknown backend(s): {', '.join(unknown)} "
              f"(available: {', '.join(available_backends())})", file=sys.stderr)
        return 2

    prebuilt = None
    if args.load:
        from repro.datasets.synthetic import generate_query_points

        loaded = _open_snapshot(args)
        if args.prob_kernel and args.prob_kernel != loaded.config.prob_kernel:
            loaded.config = loaded.config.replace(prob_kernel=args.prob_kernel)
        bundle = DatasetBundle(
            name=f"snapshot:{args.load}",
            objects=loaded.objects,
            domain=loaded.domain,
            diameter=args.diameter,
            queries=generate_query_points(max(50, args.queries), loaded.domain,
                                          seed=args.seed + 1),
        )
        prebuilt = {loaded.backend.name: loaded}
        if loaded.backend.name not in backends:
            # The point of --load is to put the served engine in the table;
            # make it the reference row rather than silently dropping it.
            backends.insert(0, loaded.backend.name)
        # Fresh backends use the snapshot's own build knobs (not the CLI
        # defaults) so the table compares identically parameterised engines;
        # only the store goes back to memory -- they must not touch the file.
        config = loaded.config.replace(
            backend=backends[0], store="memory", store_path=None
        )
        # loaded.config already carries any explicit --prob-kernel override.
        print(f"opened snapshot {args.load} ({loaded.backend.name!r} backend); "
              f"other backends are built fresh over the snapshot's objects "
              f"with its config")
    else:
        bundle = _load_bundle(args)
        config = _config_from_args(args, backend=backends[0])
    queries = bundle.queries[: args.queries]
    rows = run_backend_comparison(
        bundle,
        backends,
        queries=queries,
        config=config,
        compute_probabilities=not args.no_probabilities,
        prebuilt=prebuilt,
    )
    table = format_table(
        ["backend", "build s", "avg ms", "avg reads", "index reads", "answers",
         "hit%", "agree"],
        [
            [
                row.backend,
                row.build_seconds,
                row.avg_query_ms,
                row.avg_page_reads,
                row.avg_index_reads,
                row.avg_answers,
                f"{row.cache_hit_ratio:.0%}",
                "yes" if row.answers_agree else "NO",
            ]
            for row in rows
        ],
        title=(f"{len(queries)} PNN queries over {bundle.size} "
               f"{bundle.name if args.load else args.dataset} objects, "
               f"per-backend engines"),
    )
    print(table)
    if not all(row.answers_agree for row in rows):
        print("error: backends disagreed on answer sets", file=sys.stderr)
        return 1
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    from repro.serve import ServeConfig, serve_forever

    try:
        config = ServeConfig(
            snapshot_path=args.load,
            workers=args.workers,
            host=args.host,
            port=args.port,
            store=args.load_store,
            queue_depth=args.queue_depth,
            request_timeout=args.request_timeout,
            rate_limit=args.rate_limit,
            rate_burst=args.rate_burst,
            drain_timeout=args.drain_timeout,
            read_latency=args.read_latency,
            buffer_pages=args.buffer_pages,
            reload_poll=args.reload_poll,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        return serve_forever(config)
    except Exception as exc:  # noqa: BLE001 - a CLI prints, not tracebacks
        print(f"error: {exc}", file=sys.stderr)
        return 1


def _command_checkpoint_status(directory: str) -> int:
    """``repro checkpoint --status``: the checkpointer's cross-process view.

    A sharded deployment reports every shard's status in shard-id order
    (each shard directory is an ordinary live deployment underneath).
    """
    import os

    from repro.shard import is_sharded_directory, read_shard_deployment

    if is_sharded_directory(directory):
        try:
            deployment = read_shard_deployment(directory)
        except (OSError, ValueError) as exc:
            print(f"error: cannot read sharded deployment {directory}: {exc}",
                  file=sys.stderr)
            return 2
        print(f"sharded deployment {directory}: epoch {deployment.epoch}, "
              f"{len(deployment.shard_map)} shards "
              f"({deployment.backend!r} backend)")
        worst = 0
        for name in deployment.shard_dirs:
            worst = max(worst,
                        _single_checkpoint_status(os.path.join(directory, name)))
        return worst
    return _single_checkpoint_status(directory)


def _single_checkpoint_status(directory: str) -> int:
    """Status report of one (non-sharded) live deployment directory."""
    from repro.engine.snapshot import list_quarantined, read_manifest
    from repro.wal import read_checkpoint_status

    try:
        manifest = read_manifest(directory)
    except (OSError, ValueError) as exc:
        print(f"error: cannot read deployment {directory}: {exc}",
              file=sys.stderr)
        return 2
    print(f"deployment {directory}: generation {manifest.generation} "
          f"({manifest.snapshot}), base_lsn {manifest.base_lsn}")
    if manifest.previous:
        print(f"  previous generation : {manifest.previous['generation']} "
              f"({manifest.previous['snapshot']})")
    quarantined = list_quarantined(directory)
    print(f"  quarantined         : {', '.join(quarantined) or 'none'}")
    status = read_checkpoint_status(directory)
    if status is None:
        print("  checkpointer        : no status recorded "
              "(never ran, or an older version)")
        return 0
    print(f"  checkpointer        : {'running' if status.get('running') else 'stopped'}, "
          f"{status.get('checkpoints_run', 0)} checkpoint(s) run")
    print(f"  consecutive failures: {status.get('consecutive_failures', 0)}")
    print(f"  last error          : {status.get('last_error') or 'none'}")
    last = status.get("last_checkpoint")
    if last:
        print(f"  last checkpoint     : generation {last.get('generation')}, "
              f"{last.get('folded_records')} record(s) folded, "
              f"{last.get('objects')} object(s), "
              f"{last.get('seconds', 0.0):.2f} s")
    return 0


def _command_checkpoint(args: argparse.Namespace) -> int:
    from repro.shard import is_sharded_directory
    from repro.storage.pagestore import PageStoreError
    from repro.wal import Checkpointer

    if args.status:
        return _command_checkpoint_status(args.dir)
    if is_sharded_directory(args.dir):
        return _command_checkpoint_sharded(args)
    try:
        engine = QueryEngine.open_live(args.dir, store=args.load_store)
    except (OSError, PageStoreError, ValueError) as exc:
        print(f"error: cannot open deployment {args.dir}: {exc}", file=sys.stderr)
        return 2
    try:
        checkpointer = Checkpointer(
            engine, min_records=max(1, args.min_records), workers=args.workers
        )
        result = checkpointer.run_once(force=args.force)
        if result is None:
            print(f"nothing to checkpoint: {engine.pending_wal_records} pending "
                  f"record(s) over generation {engine.generation} "
                  f"(--min-records {args.min_records}; --force overrides)")
            return 0
        pruned = ", ".join(name for _, name in sorted(result.pruned.items())) or "none"
        print(f"checkpointed {args.dir}")
        print(f"  generation        : {result.generation} ({result.snapshot_path})")
        print(f"  folded records    : {result.folded_records} (base_lsn "
              f"{result.base_lsn})")
        print(f"  objects           : {result.objects}")
        print(f"  rebuild time      : {result.seconds:.2f} s")
        print(f"  pruned snapshots  : {pruned}")
        return 0
    finally:
        engine.close_wal()


def _command_checkpoint_sharded(args: argparse.Namespace) -> int:
    """One checkpoint round across every shard of a sharded deployment."""
    from repro.shard import ShardedQueryEngine
    from repro.storage.pagestore import PageStoreError

    try:
        engine = ShardedQueryEngine.open_live(args.dir, store=args.load_store)
    except (OSError, PageStoreError, ValueError) as exc:
        print(f"error: cannot open sharded deployment {args.dir}: {exc}",
              file=sys.stderr)
        return 2
    try:
        results = engine.checkpoint(
            force=args.force,
            min_records=max(1, args.min_records),
            workers=args.workers,
        )
        print(f"checkpointed sharded deployment {args.dir} "
              f"(epoch {engine.epoch}, {len(engine.engines)} shards)")
        for shard_id, result in enumerate(results):
            if result is None:
                pending = engine.engines[shard_id].pending_wal_records
                print(f"  shard {shard_id}: skipped ({pending} pending "
                      f"record(s) < --min-records {args.min_records})")
                continue
            print(f"  shard {shard_id}: generation {result.generation}, "
                  f"{result.folded_records} record(s) folded, "
                  f"{result.objects} object(s), {result.seconds:.2f} s")
        return 0
    finally:
        engine.close()


def _command_shard_build(args: argparse.Namespace) -> int:
    """``repro shard-build``: lay out a spatially-sharded deployment."""
    from repro.shard import build_sharded_deployment

    bundle = _load_bundle(args)
    config = _config_from_args(args)
    try:
        deployment = build_sharded_deployment(
            bundle.objects,
            bundle.domain,
            args.save_dir,
            config=config,
            shards=args.shards,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"built sharded deployment {args.save_dir} "
          f"({deployment.backend!r} backend, epoch {deployment.epoch}, "
          f"{len(deployment.shard_map)} shards, {len(bundle.objects)} objects)")
    for shard in deployment.shard_map.shards:
        print(f"  shard {shard.shard_id}: {shard.objects} objects, "
              f"tile [{shard.tile.xmin:.0f}, {shard.tile.ymin:.0f}] - "
              f"[{shard.tile.xmax:.0f}, {shard.tile.ymax:.0f}], "
              f"max radius {shard.max_radius:.1f}")
    return 0


def _command_rebalance(args: argparse.Namespace) -> int:
    """``repro rebalance``: split / merge shards into a new epoch."""
    from repro.shard import is_sharded_directory, rebalance
    from repro.storage.pagestore import PageStoreError

    if not is_sharded_directory(args.dir):
        print(f"error: {args.dir} is not a sharded deployment (no SHARDMAP)",
              file=sys.stderr)
        return 2
    try:
        plan, deployment = rebalance(
            args.dir,
            target_shards=args.shards,
            max_skew=args.max_skew,
            prune=args.prune,
            dry_run=args.dry_run,
        )
    except (OSError, PageStoreError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(plan.describe())
    if args.dry_run or deployment is None:
        print("dry run: nothing built, SHARDMAP unchanged")
        return 0
    print(f"rebalanced {args.dir} to epoch {deployment.epoch} "
          f"({len(deployment.shard_map)} shards)")
    if args.prune:
        print("pruned the previous epoch's shard directories")
    return 0


def _command_wal_inspect(args: argparse.Namespace) -> int:
    from repro.engine.snapshot import is_live_directory, read_manifest, wal_path
    from repro.wal import WalError, scan_wal
    from repro.wal.log import (
        HEADER_SIZE,
        OP_DELETE,
        OP_INSERT,
        RECORD_HEADER_SIZE,
        decode_delete,
        decode_insert,
    )

    path = args.path
    base_lsn = None
    if is_live_directory(path):
        try:
            manifest = read_manifest(path)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(f"deployment {path}: generation {manifest.generation} "
              f"({manifest.snapshot}), base_lsn {manifest.base_lsn}")
        base_lsn = manifest.base_lsn
        path = wal_path(path)
    try:
        scan = scan_wal(path)
    except OSError as exc:
        print(f"error: cannot read {path}: {exc}", file=sys.stderr)
        return 2
    except WalError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"{path}: {len(scan.records)} record(s), "
          f"{scan.valid_bytes} valid byte(s)")
    offset = HEADER_SIZE
    for record in scan.records:
        try:
            if record.op == OP_INSERT:
                detail = f"insert oid={decode_insert(record.payload).oid}"
            elif record.op == OP_DELETE:
                detail = f"delete oid={decode_delete(record.payload)}"
            else:
                detail = f"op={record.op}"
        except WalError as exc:
            detail = f"undecodable payload ({exc})"
        stale = ""
        if base_lsn is not None and record.lsn <= base_lsn:
            stale = "  [folded into snapshot]"
        print(f"  offset {offset:>8}  lsn {record.lsn:>8}  {detail}{stale}")
        offset += RECORD_HEADER_SIZE + len(record.payload)
    if scan.is_corrupt:
        # Intact records exist past the break: this is mid-log damage of
        # acknowledged history, not a torn tail -- recovery refuses it.
        print(f"CORRUPT: record break at byte {scan.valid_bytes} "
              f"({scan.torn_reason}); last good lsn {scan.last_lsn}; "
              f"intact records resume at byte {scan.resync_offset} "
              f"(lsn {scan.resync_lsn})")
        return 1
    if scan.torn_bytes:
        # Expected after kill -9 mid-append: the torn record was never
        # acknowledged, and the next live open truncates it.  Still exit
        # non-zero so scripted health checks notice the log needs that
        # truncating open before it is clean.
        print(f"TORN: {scan.torn_bytes} trailing byte(s) at byte offset "
              f"{scan.valid_bytes} ({scan.torn_reason}); last good lsn "
              f"{scan.last_lsn}")
        return 1
    return 0


def _command_chaos(args: argparse.Namespace) -> int:
    from repro.faults import drill

    argv = ["--seed", str(args.seed), "--plans", args.plans]
    if args.report:
        argv += ["--report", args.report]
    if args.workdir:
        argv += ["--workdir", args.workdir]
    if args.list:
        argv.append("--list")
    return drill.main(argv)


def _command_render(args: argparse.Namespace) -> int:
    from repro.core.diagram import UVDiagram
    from repro.viz.svg import render_uv_diagram

    engine = _obtain_engine(args)
    if engine.index is None:
        print("error: render requires a UV-index backend (ic/icr/basic)",
              file=sys.stderr)
        return 2
    diagram = UVDiagram.from_engine(engine)
    highlight = [int(oid) for oid in args.highlight.split(",") if oid] if args.highlight else []
    canvas = render_uv_diagram(
        diagram,
        width=args.width,
        highlight_cells=highlight,
        title=f"UV-diagram ({args.dataset}, {len(diagram)} objects)",
    )
    canvas.save(args.output)
    print(f"wrote {args.output} ({canvas.width}x{canvas.height})")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="UV-diagram: a Voronoi diagram for uncertain data (ICDE 2010 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command")

    info = subparsers.add_parser("info", help="show library information")
    info.set_defaults(handler=_command_info)

    build = subparsers.add_parser("build", help="build a query engine and print statistics")
    _add_dataset_arguments(build)
    build.add_argument("--save", default=None, metavar="SNAPSHOT",
                       help="persist the built diagram as a snapshot file")
    build.add_argument("--save-dir", default=None, metavar="DIR", dest="save_dir",
                       help="lay DIR out as a live deployment: generation-1 "
                            "snapshot + empty write-ahead log + manifest "
                            "(serve it, update it, checkpoint it)")
    build.set_defaults(handler=_command_build)

    query = subparsers.add_parser("query", help="run PNN queries over a built or loaded engine")
    _add_dataset_arguments(query)
    _add_load_arguments(query)
    _add_query_point_arguments(query)
    query.set_defaults(handler=_command_query)

    explain = subparsers.add_parser(
        "explain",
        help="plan a PNN query, run it, and report estimates vs. actuals")
    _add_dataset_arguments(explain)
    _add_load_arguments(explain)
    _add_query_point_arguments(explain)
    explain.set_defaults(handler=_command_explain)

    compare = subparsers.add_parser(
        "compare", help="run the same PNN workload across several backends")
    _add_dataset_arguments(compare)
    _add_load_arguments(compare)
    compare.add_argument("--backends", default="ic,rtree",
                         help="comma-separated backend names (default: ic,rtree)")
    compare.add_argument("--queries", type=int, default=10,
                         help="number of workload queries")
    compare.add_argument("--no-probabilities", action="store_true",
                         help="skip probability computation (answer sets only)")
    compare.set_defaults(handler=_command_compare)

    serve = subparsers.add_parser(
        "serve",
        help="serve a snapshot over HTTP with a pool of worker processes")
    serve.add_argument("--load", required=True, metavar="SNAPSHOT",
                       help="snapshot file -- or live deployment directory, "
                            "resolved through its manifest -- every worker "
                            "opens read-only")
    serve.add_argument("--load-store", default="mmap",
                       choices=["mmap", "file", "memory"],
                       help="page store the workers serve from (default: "
                            "mmap -- N processes share one set of pages)")
    serve.add_argument("--workers", type=int, default=2,
                       help="worker processes (default: 2)")
    serve.add_argument("--host", default="127.0.0.1", help="HTTP bind address")
    serve.add_argument("--port", type=int, default=8765,
                       help="HTTP port (0 picks a free one; default: 8765)")
    serve.add_argument("--queue-depth", type=int, default=8,
                       help="per-worker in-flight budget before new requests "
                            "get HTTP 429 (default: 8)")
    serve.add_argument("--request-timeout", type=float, default=30.0,
                       help="seconds before a queued request gets HTTP 504")
    serve.add_argument("--rate-limit", type=float, default=0.0,
                       help="per-client requests/second (0 = unlimited)")
    serve.add_argument("--rate-burst", type=int, default=20,
                       help="token-bucket burst capacity (default: 20)")
    serve.add_argument("--drain-timeout", type=float, default=10.0,
                       help="seconds to wait for in-flight work on shutdown")
    serve.add_argument("--read-latency", type=float, default=0.0,
                       help="simulated seconds per counted page read "
                            "(models cold-storage serving)")
    serve.add_argument("--buffer-pages", type=int, default=None,
                       help="buffer-pool override for the workers' engines")
    serve.add_argument("--reload-poll", type=float, default=0.0,
                       dest="reload_poll",
                       help="seconds between manifest checks when serving a "
                            "deployment directory; on a checkpoint the new "
                            "generation is rolled across the fleet without a "
                            "restart (0 = no watcher)")
    serve.set_defaults(handler=_command_serve)

    checkpoint = subparsers.add_parser(
        "checkpoint",
        help="fold a deployment's write-ahead log into a new snapshot "
             "generation and flip the manifest")
    checkpoint.add_argument("--dir", required=True, metavar="DIR",
                            help="live deployment directory (see "
                                 "`repro build --save-dir`)")
    checkpoint.add_argument("--load-store", default="file",
                            choices=["file", "mmap", "memory"],
                            help="store kind used to open the current "
                                 "generation (default: file)")
    checkpoint.add_argument("--min-records", type=int, default=1,
                            dest="min_records",
                            help="skip unless at least this many WAL records "
                                 "are pending (default: 1)")
    checkpoint.add_argument("--force", action="store_true",
                            help="checkpoint even below --min-records")
    checkpoint.add_argument("--status", action="store_true",
                            help="report the checkpointer's recorded status "
                                 "(generation, failures, quarantine) and exit")
    checkpoint.add_argument("--workers", type=int, default=None,
                            help="construction workers for the rebuild "
                                 "(default: the deployment's saved config)")
    checkpoint.set_defaults(handler=_command_checkpoint)

    shard_build = subparsers.add_parser(
        "shard-build",
        help="build a spatially-sharded deployment: one snapshot generation "
             "per shard behind a SHARDMAP manifest")
    _add_dataset_arguments(shard_build)
    shard_build.add_argument("--save-dir", required=True, metavar="DIR",
                             help="deployment directory to lay out (one live "
                                  "sub-directory per shard + SHARDMAP)")
    shard_build.add_argument("--shards", type=int, default=4,
                             help="spatial shard count (clamped so no shard "
                                  "is empty; default: 4)")
    shard_build.set_defaults(handler=_command_shard_build)

    rebalance = subparsers.add_parser(
        "rebalance",
        help="split / merge a sharded deployment's shards from observed "
             "statistics into a new epoch")
    rebalance.add_argument("--dir", required=True, metavar="DIR",
                           help="sharded deployment directory (has a SHARDMAP)")
    rebalance.add_argument("--shards", type=int, default=None,
                           help="explicit shard count for the new epoch "
                                "(default: derived from observed skew)")
    rebalance.add_argument("--max-skew", type=float, default=2.0,
                           dest="max_skew",
                           help="skew threshold driving the split / merge "
                                "decision (default: 2.0)")
    rebalance.add_argument("--dry-run", action="store_true", dest="dry_run",
                           help="print the plan without building anything")
    rebalance.add_argument("--prune", action="store_true",
                           help="remove the previous epoch's shard "
                                "directories after the flip")
    rebalance.set_defaults(handler=_command_rebalance)

    chaos = subparsers.add_parser(
        "chaos",
        help="run the seeded chaos drill matrix (fault injection + "
             "corruption, asserting correct answers or structured errors)",
    )
    chaos.add_argument("--seed", type=int, default=0,
                       help="drill seed (default 0; failures reproduce from it)")
    chaos.add_argument("--plans", default="smoke",
                       help="'smoke', 'all', or comma-separated drill names")
    chaos.add_argument("--report", default="",
                       help="write a JSON report of every drill to this path")
    chaos.add_argument("--workdir", default="",
                       help="scratch directory (default: a fresh temp dir)")
    chaos.add_argument("--list", action="store_true",
                       help="list the known drills and exit")
    chaos.set_defaults(handler=_command_chaos)

    wal_inspect = subparsers.add_parser(
        "wal-inspect",
        help="print a write-ahead log's records and torn-tail diagnostics")
    wal_inspect.add_argument("path", metavar="PATH",
                             help="a wal.log file or a deployment directory")
    wal_inspect.set_defaults(handler=_command_wal_inspect)

    subparsers.add_parser(
        "lint",
        help="run the project-invariant static analyzer",
        add_help=False,
    )

    render = subparsers.add_parser("render", help="render the UV-diagram to an SVG file")
    _add_dataset_arguments(render)
    _add_load_arguments(render)
    render.add_argument("--output", default="uv_diagram.svg", help="output SVG path")
    render.add_argument("--width", type=int, default=800, help="image width in pixels")
    render.add_argument("--highlight", default="",
                        help="comma-separated object ids whose UV-cells are shaded")
    render.set_defaults(handler=_command_render)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    arguments = list(sys.argv[1:] if argv is None else argv)
    if arguments and arguments[0] == "lint":
        # Forwarded verbatim: the lint CLI owns its own flags (argparse's
        # REMAINDER cannot pass through leading `--options`).
        from repro.lint.cli import main as lint_main

        return lint_main(arguments[1:])
    parser = build_parser()
    args = parser.parse_args(arguments)
    if not getattr(args, "handler", None):
        parser.print_help()
        return 1
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
