"""The UV-diagram core: the paper's primary contribution.

This package implements, module by module, the machinery of Sections III-V
of the paper:

* :mod:`repro.core.uv_edge` -- UV-edges and outside regions (Section III-A/C),
* :mod:`repro.core.possible_region` -- possible regions refined by outside
  regions, with provenance tracking (Definitions 2-3),
* :mod:`repro.core.uv_cell` -- exact UV-cell construction, Algorithm 1,
* :mod:`repro.core.cr_objects` -- candidate reference objects, Algorithm 2
  (seed selection, I-pruning, C-pruning),
* :mod:`repro.core.uv_index` -- the adaptive quad-tree UV-index,
  Algorithms 3-5,
* :mod:`repro.core.construction` -- the Basic / ICR / IC construction
  pipelines compared in Section VI,
* :mod:`repro.core.pnn` -- PNN query evaluation over the UV-index,
* :mod:`repro.core.pattern` -- nearest-neighbour pattern analysis queries,
* :mod:`repro.core.diagram` -- the user-facing :class:`UVDiagram` facade.
"""

from repro.core.uv_edge import UVEdge
from repro.core.possible_region import PossibleRegion
from repro.core.uv_cell import UVCell, build_exact_uv_cell, build_all_uv_cells
from repro.core.cr_objects import CRObjectFinder, CRObjectResult
from repro.core.uv_index import UVIndex, UVIndexNode
from repro.core.construction import (
    ConstructionStats,
    build_uv_index_basic,
    build_uv_index_ic,
    build_uv_index_icr,
)
from repro.core.pnn import UVIndexPNN
from repro.core.pattern import PartitionInfo, PatternAnalyzer
from repro.core.diagram import UVDiagram

__all__ = [
    "UVEdge",
    "PossibleRegion",
    "UVCell",
    "build_exact_uv_cell",
    "build_all_uv_cells",
    "CRObjectFinder",
    "CRObjectResult",
    "UVIndex",
    "UVIndexNode",
    "ConstructionStats",
    "build_uv_index_basic",
    "build_uv_index_ic",
    "build_uv_index_icr",
    "UVIndexPNN",
    "PartitionInfo",
    "PatternAnalyzer",
    "UVDiagram",
]
