"""UV-index construction pipelines: Basic, ICR, and IC (Section VI-B).

The paper's experiments compare three ways of obtaining the object sets that
are inserted into the adaptive grid:

* **Basic** -- run Algorithm 1 to build every exact UV-cell, derive its
  r-objects, and index them.  Exponential in the worst case and extremely
  slow in practice (97 hours for 50k objects in the paper).
* **ICR** -- run Algorithm 2 (I- and C-pruning) to obtain cr-objects, refine
  them into exact r-objects by building the UV-cell from the cr-objects only,
  then index the r-objects.
* **IC** -- run Algorithm 2 and index the cr-objects directly, skipping
  refinement.  This is the method the paper recommends: the index is slightly
  more conservative but construction is an order of magnitude faster and
  query performance is essentially identical.

Each builder returns the index together with a :class:`ConstructionStats`
record holding the per-phase timings and pruning ratios that Figures 7(a)-(g)
report.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.cr_objects import CRObjectFinder, CRObjectResult
from repro.core.uv_cell import build_exact_uv_cell
from repro.core.uv_index import UVIndex
from repro.geometry.rectangle import Rect
from repro.rtree.tree import RTree
from repro.storage.disk import DiskManager
from repro.storage.stats import TimingBreakdown
from repro.uncertain.objects import UncertainObject


@dataclass
class ConstructionStats:
    """Timing and pruning statistics of one index construction run.

    Attributes:
        method: ``"basic"``, ``"icr"`` or ``"ic"``.
        objects: number of objects indexed.
        total_seconds: end-to-end construction time (``T_c``).
        timing: phase breakdown with buckets ``pruning`` (seed selection +
            I-pruning + C-pruning), ``r_objects`` (exact refinement, ICR and
            Basic only) and ``indexing`` (Algorithm 3 insertions).
        i_pruning_ratio / c_pruning_ratio: average pruning ratios
            (Figure 7(b)); zero for the Basic method which performs no
            pruning.
        avg_cr_objects: average ``|C_i|`` passed to the index.
        avg_r_objects: average ``|F_i|`` (ICR / Basic only).
    """

    method: str
    objects: int
    total_seconds: float
    timing: TimingBreakdown = field(default_factory=TimingBreakdown)
    i_pruning_ratio: float = 0.0
    c_pruning_ratio: float = 0.0
    avg_cr_objects: float = 0.0
    avg_r_objects: float = 0.0

    def phase_fractions(self) -> Dict[str, float]:
        """Phase shares of the total time (Figures 7(d) and 7(e))."""
        return self.timing.fractions()


def _average(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def build_uv_index_ic(
    objects: Sequence[UncertainObject],
    domain: Rect,
    rtree: Optional[RTree] = None,
    disk: Optional[DiskManager] = None,
    max_nonleaf: int = 4000,
    split_threshold: float = 1.0,
    page_capacity: Optional[int] = None,
    seed_knn: int = 300,
    seed_sectors: int = 8,
    finder: Optional[CRObjectFinder] = None,
) -> Tuple[UVIndex, ConstructionStats]:
    """The IC construction: prune, then index cr-objects directly."""
    objects = list(objects)
    by_id = {obj.oid: obj for obj in objects}
    if finder is None:
        finder = CRObjectFinder(
            objects, domain, rtree=rtree, seed_knn=seed_knn, seed_sectors=seed_sectors
        )
    index = UVIndex(
        domain,
        disk=disk,
        max_nonleaf=max_nonleaf,
        split_threshold=split_threshold,
        page_capacity=page_capacity,
    )
    timing = TimingBreakdown()
    cr_results: List[CRObjectResult] = []

    start_total = time.perf_counter()
    for obj in objects:
        start = time.perf_counter()
        result = finder.find(obj)
        timing.add("pruning", time.perf_counter() - start)
        cr_results.append(result)

        start = time.perf_counter()
        index.insert(obj, [by_id[oid] for oid in result.cr_objects])
        timing.add("indexing", time.perf_counter() - start)
    total = time.perf_counter() - start_total

    stats = ConstructionStats(
        method="ic",
        objects=len(objects),
        total_seconds=total,
        timing=timing,
        i_pruning_ratio=_average([r.i_pruning_ratio for r in cr_results]),
        c_pruning_ratio=_average([r.c_pruning_ratio for r in cr_results]),
        avg_cr_objects=_average([len(r.cr_objects) for r in cr_results]),
    )
    return index, stats


def build_uv_index_icr(
    objects: Sequence[UncertainObject],
    domain: Rect,
    rtree: Optional[RTree] = None,
    disk: Optional[DiskManager] = None,
    max_nonleaf: int = 4000,
    split_threshold: float = 1.0,
    page_capacity: Optional[int] = None,
    seed_knn: int = 300,
    seed_sectors: int = 8,
    arc_samples: int = 10,
    finder: Optional[CRObjectFinder] = None,
) -> Tuple[UVIndex, ConstructionStats]:
    """The ICR construction: prune, refine to exact r-objects, then index."""
    objects = list(objects)
    by_id = {obj.oid: obj for obj in objects}
    if finder is None:
        finder = CRObjectFinder(
            objects, domain, rtree=rtree, seed_knn=seed_knn, seed_sectors=seed_sectors
        )
    index = UVIndex(
        domain,
        disk=disk,
        max_nonleaf=max_nonleaf,
        split_threshold=split_threshold,
        page_capacity=page_capacity,
    )
    timing = TimingBreakdown()
    cr_results: List[CRObjectResult] = []
    r_counts: List[int] = []

    start_total = time.perf_counter()
    for obj in objects:
        start = time.perf_counter()
        result = finder.find(obj)
        timing.add("pruning", time.perf_counter() - start)
        cr_results.append(result)

        start = time.perf_counter()
        cr_objs = [by_id[oid] for oid in result.cr_objects]
        cell = build_exact_uv_cell(obj, cr_objs, domain, arc_samples=arc_samples)
        r_objects = cell.r_objects if cell.r_objects else result.cr_objects
        timing.add("r_objects", time.perf_counter() - start)
        r_counts.append(len(r_objects))

        start = time.perf_counter()
        index.insert(obj, [by_id[oid] for oid in r_objects])
        timing.add("indexing", time.perf_counter() - start)
    total = time.perf_counter() - start_total

    stats = ConstructionStats(
        method="icr",
        objects=len(objects),
        total_seconds=total,
        timing=timing,
        i_pruning_ratio=_average([r.i_pruning_ratio for r in cr_results]),
        c_pruning_ratio=_average([r.c_pruning_ratio for r in cr_results]),
        avg_cr_objects=_average([len(r.cr_objects) for r in cr_results]),
        avg_r_objects=_average(r_counts),
    )
    return index, stats


def build_uv_index_basic(
    objects: Sequence[UncertainObject],
    domain: Rect,
    disk: Optional[DiskManager] = None,
    max_nonleaf: int = 4000,
    split_threshold: float = 1.0,
    page_capacity: Optional[int] = None,
    arc_samples: int = 10,
) -> Tuple[UVIndex, ConstructionStats]:
    """The Basic construction: exact UV-cells via Algorithm 1, then index.

    Every other object is considered when building each UV-cell, so the cost
    grows very quickly with the dataset size; this pipeline exists as the
    baseline of Figure 7(a) and as a correctness oracle for small inputs.
    """
    objects = list(objects)
    by_id = {obj.oid: obj for obj in objects}
    index = UVIndex(
        domain,
        disk=disk,
        max_nonleaf=max_nonleaf,
        split_threshold=split_threshold,
        page_capacity=page_capacity,
    )
    timing = TimingBreakdown()
    r_counts: List[int] = []

    start_total = time.perf_counter()
    for obj in objects:
        start = time.perf_counter()
        others = [o for o in objects if o.oid != obj.oid]
        cell = build_exact_uv_cell(obj, others, domain, arc_samples=arc_samples)
        r_objects = cell.r_objects if cell.r_objects else [o.oid for o in others]
        timing.add("r_objects", time.perf_counter() - start)
        r_counts.append(len(r_objects))

        start = time.perf_counter()
        index.insert(obj, [by_id[oid] for oid in r_objects])
        timing.add("indexing", time.perf_counter() - start)
    total = time.perf_counter() - start_total

    stats = ConstructionStats(
        method="basic",
        objects=len(objects),
        total_seconds=total,
        timing=timing,
        avg_r_objects=_average(r_counts),
    )
    return index, stats
