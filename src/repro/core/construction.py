"""UV-index construction pipelines: Basic, ICR, and IC (Section VI-B).

The paper's experiments compare three ways of obtaining the object sets that
are inserted into the adaptive grid:

* **Basic** -- run Algorithm 1 to build every exact UV-cell, derive its
  r-objects, and index them.  Exponential in the worst case and extremely
  slow in practice (97 hours for 50k objects in the paper).
* **ICR** -- run Algorithm 2 (I- and C-pruning) to obtain cr-objects, refine
  them into exact r-objects by building the UV-cell from the cr-objects only,
  then index the r-objects.
* **IC** -- run Algorithm 2 and index the cr-objects directly, skipping
  refinement.  This is the method the paper recommends: the index is slightly
  more conservative but construction is an order of magnitude faster and
  query performance is essentially identical.

Construction is two phases with very different parallelism profiles:

1. **Cell computation** -- deriving each object's reference set (cr-objects,
   or exact r-objects) against the rest of the dataset.  This is pure and
   embarrassingly parallel per object: :class:`ConstructionContext.compute`
   takes an object id and returns an :class:`ObjectCellResult` without
   touching any shared mutable state, so shards of objects can be computed
   on worker processes (see :mod:`repro.parallel`) from a picklable
   :class:`CellWorkSpec`.
2. **Indexing** -- inserting the reference sets into the adaptive grid.
   This mutates one shared structure and always runs in canonical object
   order, which is what makes parallel builds bit-identical to serial ones
   regardless of how phase 1 was sharded.

Each builder returns the index together with a :class:`ConstructionStats`
record holding the per-phase timings and pruning ratios that Figures 7(a)-(g)
report.  Stats are addable (``merge`` / ``+``) so per-shard records aggregate
into one run-level record.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.cr_objects import CRObjectFinder
from repro.core.uv_cell import build_exact_uv_cell
from repro.core.uv_index import UVIndex
from repro.geometry.rectangle import Rect
from repro.rtree.tree import RTree
from repro.storage.disk import DiskManager
from repro.storage.stats import TimingBreakdown
from repro.uncertain.objects import UncertainObject

#: fanout of the helper R-tree built when the caller does not supply one
#: (mirrors :class:`RTree.bulk_load`'s default and ``DiagramConfig.rtree_fanout``).
DEFAULT_RTREE_FANOUT = 100


@dataclass
class ConstructionStats:
    """Timing and pruning statistics of one index construction run.

    Attributes:
        method: ``"basic"``, ``"icr"`` or ``"ic"``.
        objects: number of objects indexed.
        total_seconds: end-to-end construction time (``T_c``).
        timing: phase breakdown with buckets ``pruning`` (seed selection +
            I-pruning + C-pruning), ``r_objects`` (exact refinement, ICR and
            Basic only) and ``indexing`` (Algorithm 3 insertions).  In a
            parallel build the compute buckets sum *per-worker* seconds, so
            ``timing.total()`` can exceed the wall-clock ``total_seconds``
            and :meth:`phase_fractions` reports CPU-time shares; only serial
            builds reproduce the paper's wall-consistent breakdown of
            Figures 7(d)/7(e).
        i_pruning_ratio / c_pruning_ratio: average pruning ratios
            (Figure 7(b)); zero for the Basic method which performs no
            pruning.
        avg_cr_objects: average ``|C_i|`` passed to the index.
        avg_r_objects: average ``|F_i|`` (ICR / Basic only).
    """

    method: str
    objects: int
    total_seconds: float
    timing: TimingBreakdown = field(default_factory=TimingBreakdown)
    i_pruning_ratio: float = 0.0
    c_pruning_ratio: float = 0.0
    avg_cr_objects: float = 0.0
    avg_r_objects: float = 0.0

    def phase_fractions(self) -> Dict[str, float]:
        """Phase shares of the total time (Figures 7(d) and 7(e))."""
        return self.timing.fractions()

    # ------------------------------------------------------------------ #
    # aggregation (shard merging, multi-run reports)
    # ------------------------------------------------------------------ #
    def merge(self, other: "ConstructionStats") -> "ConstructionStats":
        """Aggregate two runs (or shards) into one record.

        Counts and times add; the per-object averages and pruning ratios are
        weighted by object count so the merged record reports the same values
        a single pass over the union would have produced.
        """
        if not isinstance(other, ConstructionStats):
            raise TypeError(f"cannot merge ConstructionStats with {type(other).__name__}")
        total_objects = self.objects + other.objects

        def weighted(a: float, b: float) -> float:
            if total_objects == 0:
                return 0.0
            return (a * self.objects + b * other.objects) / total_objects

        timing = TimingBreakdown()
        timing.merge(self.timing)
        timing.merge(other.timing)
        method = self.method if self.method == other.method else (
            f"{self.method}+{other.method}"
        )
        return ConstructionStats(
            method=method,
            objects=total_objects,
            total_seconds=self.total_seconds + other.total_seconds,
            timing=timing,
            i_pruning_ratio=weighted(self.i_pruning_ratio, other.i_pruning_ratio),
            c_pruning_ratio=weighted(self.c_pruning_ratio, other.c_pruning_ratio),
            avg_cr_objects=weighted(self.avg_cr_objects, other.avg_cr_objects),
            avg_r_objects=weighted(self.avg_r_objects, other.avg_r_objects),
        )

    def __add__(self, other: "ConstructionStats") -> "ConstructionStats":
        if not isinstance(other, ConstructionStats):
            return NotImplemented
        return self.merge(other)

    def __radd__(self, other) -> "ConstructionStats":
        # supports sum(list_of_stats) whose implicit start value is 0
        if other == 0:
            return self
        if not isinstance(other, ConstructionStats):
            return NotImplemented
        return other.merge(self)


# ---------------------------------------------------------------------- #
# pure per-object cell computation
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class CellWorkSpec:
    """Picklable description of one construction run's cell-computation phase.

    Everything a worker process needs to compute any object's reference set:
    the full dataset (pruning examines neighbours), the domain, and the
    Algorithm 2 knobs.  ``rtree_fanout`` pins the helper R-tree's shape so
    that k-NN / range-query orderings -- and therefore seeds and cr-objects
    -- are identical in every process.
    """

    method: str
    objects: Tuple[UncertainObject, ...]
    domain: Rect
    seed_knn: int = 300
    seed_sectors: int = 8
    arc_samples: int = 10
    rtree_fanout: int = DEFAULT_RTREE_FANOUT

    def __post_init__(self) -> None:
        if self.method not in ("ic", "icr", "basic"):
            raise ValueError(f"unknown construction method: {self.method!r}")


@dataclass
class ObjectCellResult:
    """Outcome of the cell-computation phase for one object.

    Attributes:
        oid: the object ``O_i``.
        ref_objects: ids inserted into the index for this object -- the
            cr-objects for IC, the exact r-objects for ICR / Basic.
        cr_objects: survivors of Algorithm 2 (empty for the Basic method).
        candidates_after_i_pruning: ``|I|`` -- survivors of I-pruning.
        examined: number of other objects in the dataset (``n - 1``).
        refined: ``|F_i|`` after exact refinement (``None`` for IC, which
            skips refinement).
        phase_seconds: wall-clock buckets (``pruning`` / ``r_objects``)
            accumulated while computing this object.
    """

    oid: int
    ref_objects: List[int]
    cr_objects: List[int] = field(default_factory=list)
    candidates_after_i_pruning: int = 0
    examined: int = 0
    refined: Optional[int] = None
    phase_seconds: Dict[str, float] = field(default_factory=dict)

    @property
    def i_pruning_ratio(self) -> float:
        """Fraction of the dataset discarded by I-pruning."""
        if self.examined == 0:
            return 0.0
        return 1.0 - self.candidates_after_i_pruning / self.examined

    @property
    def c_pruning_ratio(self) -> float:
        """Cumulative fraction discarded after C-pruning."""
        if self.examined == 0:
            return 0.0
        return 1.0 - len(self.cr_objects) / self.examined


class ConstructionContext:
    """Shared-nothing, read-only state for computing object cells.

    Built once per process (from a :class:`CellWorkSpec`) or once per serial
    run; :meth:`compute` is then a pure function of the object id.  The
    context never mutates after construction, which is what makes sharded /
    multi-process cell computation safe and deterministic.
    """

    def __init__(
        self,
        spec: CellWorkSpec,
        finder: Optional[CRObjectFinder] = None,
        rtree: Optional[RTree] = None,
    ):
        self.spec = spec
        self.objects: List[UncertainObject] = list(spec.objects)
        self.by_id: Dict[int, UncertainObject] = {o.oid: o for o in self.objects}
        if spec.method in ("ic", "icr") and finder is None:
            if rtree is None:
                rtree = RTree.bulk_load(self.objects, fanout=spec.rtree_fanout)
            finder = CRObjectFinder(
                self.objects,
                spec.domain,
                rtree=rtree,
                seed_knn=spec.seed_knn,
                seed_sectors=spec.seed_sectors,
            )
        self.finder = finder

    def compute(self, oid: int) -> ObjectCellResult:
        """Compute one object's reference set (pure: no shared mutable state)."""
        obj = self.by_id[oid]
        spec = self.spec
        phases: Dict[str, float] = {}

        if spec.method == "basic":
            start = time.perf_counter()
            others = [o for o in self.objects if o.oid != oid]
            cell = build_exact_uv_cell(
                obj, others, spec.domain, arc_samples=spec.arc_samples
            )
            r_objects = cell.r_objects if cell.r_objects else [o.oid for o in others]
            phases["r_objects"] = time.perf_counter() - start
            return ObjectCellResult(
                oid=oid,
                ref_objects=list(r_objects),
                examined=len(self.objects) - 1,
                refined=len(r_objects),
                phase_seconds=phases,
            )

        start = time.perf_counter()
        found = self.finder.find(obj)
        phases["pruning"] = time.perf_counter() - start

        if spec.method == "ic":
            ref_objects = list(found.cr_objects)
            refined = None
        else:  # icr
            start = time.perf_counter()
            cr_objs = [self.by_id[other] for other in found.cr_objects]
            cell = build_exact_uv_cell(
                obj, cr_objs, spec.domain, arc_samples=spec.arc_samples
            )
            ref_objects = list(
                cell.r_objects if cell.r_objects else found.cr_objects
            )
            phases["r_objects"] = time.perf_counter() - start
            refined = len(ref_objects)

        return ObjectCellResult(
            oid=oid,
            ref_objects=ref_objects,
            cr_objects=list(found.cr_objects),
            candidates_after_i_pruning=found.candidates_after_i_pruning,
            examined=found.examined,
            refined=refined,
            phase_seconds=phases,
        )

    def compute_many(self, oids: Sequence[int]) -> List[ObjectCellResult]:
        """Compute a shard of objects, in the given order."""
        return [self.compute(oid) for oid in oids]


# ---------------------------------------------------------------------- #
# shared build pipeline
# ---------------------------------------------------------------------- #
def _average(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def _build_uv_index(
    method: str,
    objects: Sequence[UncertainObject],
    domain: Rect,
    rtree: Optional[RTree],
    disk: Optional[DiskManager],
    max_nonleaf: int,
    split_threshold: float,
    page_capacity: Optional[int],
    seed_knn: int,
    seed_sectors: int,
    arc_samples: int,
    finder: Optional[CRObjectFinder],
    scheduler,
) -> Tuple[UVIndex, ConstructionStats]:
    """Compute all object cells (serial or via a scheduler), then index them.

    Indexing always runs in canonical object order, so the resulting index is
    bit-identical however the cell computation was sharded or distributed.
    """
    objects = list(objects)
    by_id = {obj.oid: obj for obj in objects}
    index = UVIndex(
        domain,
        disk=disk,
        max_nonleaf=max_nonleaf,
        split_threshold=split_threshold,
        page_capacity=page_capacity,
    )
    spec = CellWorkSpec(
        method=method,
        objects=tuple(objects),
        domain=domain,
        seed_knn=seed_knn,
        seed_sectors=seed_sectors,
        arc_samples=arc_samples,
        rtree_fanout=rtree.fanout if rtree is not None else DEFAULT_RTREE_FANOUT,
    )
    timing = TimingBreakdown()

    start_total = time.perf_counter()
    if scheduler is not None and finder is None:
        by_oid = scheduler.compute_cells(spec)
        results = [by_oid[obj.oid] for obj in objects]
    else:
        # A caller-supplied finder cannot be shipped to worker processes, so
        # it always computes in-process.
        context = ConstructionContext(spec, finder=finder, rtree=rtree)
        results = context.compute_many([obj.oid for obj in objects])

    for result in results:
        for name, seconds in result.phase_seconds.items():
            timing.add(name, seconds)

    for obj, result in zip(objects, results):
        start = time.perf_counter()
        index.insert(obj, [by_id[other] for other in result.ref_objects])
        timing.add("indexing", time.perf_counter() - start)
    total = time.perf_counter() - start_total

    pruned = method != "basic"
    stats = ConstructionStats(
        method=method,
        objects=len(objects),
        total_seconds=total,
        timing=timing,
        i_pruning_ratio=_average([r.i_pruning_ratio for r in results]) if pruned else 0.0,
        c_pruning_ratio=_average([r.c_pruning_ratio for r in results]) if pruned else 0.0,
        avg_cr_objects=_average([len(r.cr_objects) for r in results]) if pruned else 0.0,
        avg_r_objects=_average([r.refined for r in results if r.refined is not None]),
    )
    return index, stats


def build_uv_index_ic(
    objects: Sequence[UncertainObject],
    domain: Rect,
    rtree: Optional[RTree] = None,
    disk: Optional[DiskManager] = None,
    max_nonleaf: int = 4000,
    split_threshold: float = 1.0,
    page_capacity: Optional[int] = None,
    seed_knn: int = 300,
    seed_sectors: int = 8,
    finder: Optional[CRObjectFinder] = None,
    scheduler=None,
) -> Tuple[UVIndex, ConstructionStats]:
    """The IC construction: prune, then index cr-objects directly.

    ``scheduler`` (a :class:`repro.parallel.ConstructionScheduler`) shards
    the cell-computation phase across workers; omitted, the build runs
    serially.  Either way the result is bit-identical.
    """
    return _build_uv_index(
        "ic",
        objects,
        domain,
        rtree=rtree,
        disk=disk,
        max_nonleaf=max_nonleaf,
        split_threshold=split_threshold,
        page_capacity=page_capacity,
        seed_knn=seed_knn,
        seed_sectors=seed_sectors,
        arc_samples=10,
        finder=finder,
        scheduler=scheduler,
    )


def build_uv_index_icr(
    objects: Sequence[UncertainObject],
    domain: Rect,
    rtree: Optional[RTree] = None,
    disk: Optional[DiskManager] = None,
    max_nonleaf: int = 4000,
    split_threshold: float = 1.0,
    page_capacity: Optional[int] = None,
    seed_knn: int = 300,
    seed_sectors: int = 8,
    arc_samples: int = 10,
    finder: Optional[CRObjectFinder] = None,
    scheduler=None,
) -> Tuple[UVIndex, ConstructionStats]:
    """The ICR construction: prune, refine to exact r-objects, then index."""
    return _build_uv_index(
        "icr",
        objects,
        domain,
        rtree=rtree,
        disk=disk,
        max_nonleaf=max_nonleaf,
        split_threshold=split_threshold,
        page_capacity=page_capacity,
        seed_knn=seed_knn,
        seed_sectors=seed_sectors,
        arc_samples=arc_samples,
        finder=finder,
        scheduler=scheduler,
    )


def build_uv_index_basic(
    objects: Sequence[UncertainObject],
    domain: Rect,
    disk: Optional[DiskManager] = None,
    max_nonleaf: int = 4000,
    split_threshold: float = 1.0,
    page_capacity: Optional[int] = None,
    arc_samples: int = 10,
    scheduler=None,
) -> Tuple[UVIndex, ConstructionStats]:
    """The Basic construction: exact UV-cells via Algorithm 1, then index.

    Every other object is considered when building each UV-cell, so the cost
    grows very quickly with the dataset size; this pipeline exists as the
    baseline of Figure 7(a) and as a correctness oracle for small inputs.
    """
    return _build_uv_index(
        "basic",
        objects,
        domain,
        rtree=None,
        disk=disk,
        max_nonleaf=max_nonleaf,
        split_threshold=split_threshold,
        page_capacity=page_capacity,
        seed_knn=300,
        seed_sectors=8,
        arc_samples=arc_samples,
        finder=None,
        scheduler=scheduler,
    )
