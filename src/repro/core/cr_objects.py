"""Candidate reference objects (Algorithm 2 of the paper).

The key idea of the paper is to never build exact UV-cells during indexing.
Instead, each object ``O_i`` is represented by a small set ``C_i`` of
*candidate reference objects* (cr-objects) that is guaranteed to contain all
true r-objects ``F_i``.  ``C_i`` is derived in three steps:

1. **Seed selection + initial possible region** (Section IV-B): a k-NN query
   around ``c_i`` provides nearby objects; the domain is divided into
   ``k_s`` sectors around ``c_i`` and the closest candidate per sector is a
   seed.  Clipping the domain by the seeds' UV-edges yields a small initial
   possible region.
2. **I-pruning** (Lemma 2): only objects whose centres lie within a circle of
   radius ``2d - r_i`` around ``c_i`` (``d`` = farthest boundary point of the
   possible region) can shape the UV-cell; they are collected with a circular
   range query on the R-tree.
3. **C-pruning** (Lemma 3): a candidate survives only if its centre lies in
   at least one *d-bound* -- the circle around a convex-hull vertex ``v`` of
   the possible region with radius ``dist(v, c_i)``.

Everything that survives is a cr-object.  Objects that overlap ``O_i``'s
uncertainty region never produce a UV-edge; they are retained as cr-objects
only if they survive the distance-based pruning (their outside regions are
empty, so they are harmless for overlap checking).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.possible_region import PossibleRegion
from repro.geometry.rectangle import Rect
from repro.rtree.tree import RTree
from repro.storage.stats import TimingBreakdown
from repro.uncertain.objects import UncertainObject


@dataclass
class CRObjectResult:
    """Outcome of Algorithm 2 for one object.

    Attributes:
        oid: the object ``O_i``.
        cr_objects: ids of the candidate reference objects ``C_i``.
        seeds: ids of the seeds used to build the initial possible region.
        possible_region: the seed-based possible region ``P_i``.
        candidates_after_i_pruning: ``|I|`` -- survivors of I-pruning.
        examined: number of other objects in the dataset (``n - 1``).
        timing: per-phase wall-clock breakdown
            (``seed`` / ``i_prune`` / ``c_prune``).
    """

    oid: int
    cr_objects: List[int]
    seeds: List[int]
    possible_region: PossibleRegion
    candidates_after_i_pruning: int
    examined: int
    timing: TimingBreakdown = field(default_factory=TimingBreakdown)

    @property
    def i_pruning_ratio(self) -> float:
        """Fraction of the dataset discarded by I-pruning (``p_c`` of Fig. 7(b))."""
        if self.examined == 0:
            return 0.0
        return 1.0 - self.candidates_after_i_pruning / self.examined

    @property
    def c_pruning_ratio(self) -> float:
        """Cumulative fraction discarded after C-pruning."""
        if self.examined == 0:
            return 0.0
        return 1.0 - len(self.cr_objects) / self.examined


class CRObjectFinder:
    """Derives cr-objects for every object of a dataset (Algorithm 2).

    Args:
        objects: the full dataset.
        domain: the domain rectangle ``D``.
        rtree: an R-tree over the objects (used for the k-NN seed query and
            the I-pruning range query); built on demand when omitted.
        seed_knn: ``k`` of the seed-selection k-NN query (the paper uses 300).
        seed_sectors: ``k_s`` -- number of sectors around ``c_i`` (paper: 8).
        arc_samples / edge_samples: resolution of the possible-region polygon.
    """

    def __init__(
        self,
        objects: Sequence[UncertainObject],
        domain: Rect,
        rtree: Optional[RTree] = None,
        seed_knn: int = 300,
        seed_sectors: int = 8,
        arc_samples: int = 12,
        edge_samples: int = 6,
    ):
        if seed_sectors < 1:
            raise ValueError("seed_sectors must be positive")
        self.objects = list(objects)
        self.domain = domain
        self.by_id: Dict[int, UncertainObject] = {obj.oid: obj for obj in self.objects}
        self.rtree = rtree if rtree is not None else RTree.bulk_load(self.objects)
        self.seed_knn = seed_knn
        self.seed_sectors = seed_sectors
        self.arc_samples = arc_samples
        self.edge_samples = edge_samples

    # ------------------------------------------------------------------ #
    # Step 1: seeds and the initial possible region
    # ------------------------------------------------------------------ #
    def select_seeds(self, owner: UncertainObject) -> List[int]:
        """Pick up to ``seed_sectors`` seeds around ``owner`` (Section IV-B)."""
        k = min(self.seed_knn, len(self.objects))
        neighbours = self.rtree.knn(owner.center, k)
        chosen: Dict[int, int] = {}
        for oid, _dist in neighbours:
            if oid == owner.oid:
                continue
            other = self.by_id[oid]
            angle = owner.center.angle_to(other.center)
            sector = int(((angle + math.pi) / (2.0 * math.pi)) * self.seed_sectors)
            sector = min(sector, self.seed_sectors - 1)
            if sector not in chosen:
                chosen[sector] = oid
            if len(chosen) == self.seed_sectors:
                break
        return list(chosen.values())

    def initial_possible_region(
        self, owner: UncertainObject, seeds: Sequence[int]
    ) -> PossibleRegion:
        """Clip the domain by the seeds' UV-edges (``initPossibleRegion``)."""
        region = PossibleRegion(
            owner,
            self.domain,
            arc_samples=self.arc_samples,
            edge_samples=self.edge_samples,
        )
        region.refine_all([self.by_id[oid] for oid in seeds])
        return region

    # ------------------------------------------------------------------ #
    # Step 2: I-pruning (Lemma 2)
    # ------------------------------------------------------------------ #
    def index_prune(
        self, owner: UncertainObject, region: PossibleRegion
    ) -> List[int]:
        """Objects that survive the circular range query of Lemma 2."""
        d = region.max_distance_from_center()
        radius = max(0.0, 2.0 * d - owner.radius)

        def center_inside(oid: int, mbr) -> bool:
            center = mbr.center
            return owner.center.distance_to(center) <= radius

        survivors = self.rtree.circular_range_query(
            owner.center, radius, center_filter=center_inside
        )
        return [oid for oid in survivors if oid != owner.oid]

    # ------------------------------------------------------------------ #
    # Step 3: C-pruning (Lemma 3)
    # ------------------------------------------------------------------ #
    def computational_prune(
        self,
        owner: UncertainObject,
        region: PossibleRegion,
        candidates: Sequence[int],
    ) -> List[int]:
        """Filter candidates with the d-bound test of Lemma 3."""
        hull = region.convex_hull_vertices()
        if not hull:
            return list(candidates)
        d_bounds = [(vertex, vertex.distance_to(owner.center)) for vertex in hull]
        survivors = []
        for oid in candidates:
            center = self.by_id[oid].center
            if any(center.distance_to(vertex) <= radius for vertex, radius in d_bounds):
                survivors.append(oid)
        return survivors

    # ------------------------------------------------------------------ #
    # full Algorithm 2
    # ------------------------------------------------------------------ #
    def find(self, owner: UncertainObject) -> CRObjectResult:
        """Derive the cr-objects of one object."""
        timing = TimingBreakdown()

        start = time.perf_counter()
        seeds = self.select_seeds(owner)
        region = self.initial_possible_region(owner, seeds)
        timing.add("seed", time.perf_counter() - start)

        start = time.perf_counter()
        after_i = self.index_prune(owner, region)
        timing.add("i_prune", time.perf_counter() - start)

        start = time.perf_counter()
        # Seeds already shaped the possible region; they are natural
        # cr-object candidates even if the range query misses them.
        candidate_pool = sorted(set(after_i) | set(seeds))
        cr_objects = self.computational_prune(owner, region, candidate_pool)
        timing.add("c_prune", time.perf_counter() - start)

        return CRObjectResult(
            oid=owner.oid,
            cr_objects=sorted(cr_objects),
            seeds=list(seeds),
            possible_region=region,
            candidates_after_i_pruning=len(after_i),
            examined=len(self.objects) - 1,
            timing=timing,
        )

    def find_all(self) -> Dict[int, CRObjectResult]:
        """Run Algorithm 2 for every object of the dataset."""
        return {obj.oid: self.find(obj) for obj in self.objects}
