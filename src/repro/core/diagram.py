"""The :class:`UVDiagram` facade: a thin compatibility layer over the engine.

Historically ``UVDiagram`` owned every component itself; it is now a shim
over :class:`repro.engine.engine.QueryEngine`, which is the recommended entry
point (see the README's migration table).  The facade keeps the original
surface working -- including :meth:`build`'s keyword signature and the
component attributes (``index``, ``rtree``, ``object_store``, ``disk``) that
existing code and the updater reach into::

    from repro import UVDiagram, generate_uniform_objects

    objects, domain = generate_uniform_objects(500, seed=1)
    diagram = UVDiagram.build(objects, domain)          # IC construction
    result = diagram.pnn(Point(4200.0, 5100.0))         # answer objects + probabilities
    area = diagram.uv_cell_area(result.answers[0].oid)  # pattern analysis

New code should prefer::

    from repro import DiagramConfig, QueryEngine

    engine = QueryEngine.build(objects, domain, DiagramConfig(backend="ic"))
"""

from __future__ import annotations

import warnings
from typing import Dict, List, Optional, Sequence

from repro.core.construction import ConstructionStats
from repro.core.pattern import PartitionQueryResult, PatternAnalyzer
from repro.core.uv_index import UVIndex
from repro.engine.backend import create_backend
from repro.engine.backends import UVIndexBackend
from repro.engine.config import DiagramConfig
from repro.engine.engine import QueryEngine
from repro.geometry.point import Point
from repro.geometry.rectangle import Rect
from repro.queries.result import PNNResult
from repro.rtree.tree import RTree
from repro.storage.disk import DiskManager
from repro.storage.object_store import ObjectStore
from repro.uncertain.objects import UncertainObject


class UVDiagram:
    """A UV-diagram over a set of uncertain objects.

    Use :meth:`build` rather than the constructor; the constructor merely
    wires together already-built components (always as a UV-index backend).
    """

    def __init__(
        self,
        objects: Sequence[UncertainObject],
        domain: Rect,
        index: UVIndex,
        rtree: RTree,
        object_store: ObjectStore,
        disk: DiskManager,
        construction_stats: Optional[ConstructionStats] = None,
        config: Optional[DiagramConfig] = None,
    ):
        backend = UVIndexBackend(index, construction_stats)
        self.engine = QueryEngine(
            objects=objects,
            domain=domain,
            backend=backend,
            rtree=rtree,
            object_store=object_store,
            disk=disk,
            config=config,
            construction_stats=construction_stats,
        )

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def build(
        cls,
        objects: Sequence[UncertainObject],
        domain: Rect,
        method: str = "ic",
        disk: Optional[DiskManager] = None,
        max_nonleaf: int = 4000,
        split_threshold: float = 1.0,
        page_capacity: Optional[int] = None,
        seed_knn: int = 300,
        seed_sectors: int = 8,
        rtree_fanout: int = 100,
    ) -> "UVDiagram":
        """Build a UV-diagram with the chosen construction method.

        .. deprecated::
            Use ``QueryEngine.build(objects, domain, DiagramConfig(...))``.
            This shim forwards to the engine and accepts any registered
            backend name for ``method`` (including ``"grid"`` and
            ``"rtree"``).

        Args:
            objects: the uncertain objects.
            domain: the domain rectangle that bounds the diagram.
            method: a backend name -- ``"ic"`` (default, recommended),
                ``"icr"``, ``"basic"``, ``"rtree"`` or ``"grid"``.
            disk: shared disk manager; a fresh one is created when omitted.
            max_nonleaf: ``M``, the in-memory non-leaf budget of the UV-index.
            split_threshold: ``T_theta`` of the split rule.
            page_capacity: leaf-page capacity override (useful at small scale).
            seed_knn / seed_sectors: Algorithm 2 seed-selection parameters.
            rtree_fanout: fanout of the helper R-tree.
        """
        warnings.warn(
            "UVDiagram.build() is deprecated; use "
            "QueryEngine.build(objects, domain, DiagramConfig(...)) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        config = DiagramConfig(
            backend=method.lower(),
            max_nonleaf=max_nonleaf,
            split_threshold=split_threshold,
            page_capacity=page_capacity,
            seed_knn=seed_knn,
            seed_sectors=seed_sectors,
            rtree_fanout=rtree_fanout,
        )
        engine = QueryEngine.build(objects, domain, config, disk=disk)
        return cls.from_engine(engine)

    @classmethod
    def from_engine(cls, engine: QueryEngine) -> "UVDiagram":
        """Wrap an already-built engine in the facade (no rebuild, no warning)."""
        diagram = cls.__new__(cls)
        diagram.engine = engine
        return diagram

    # ------------------------------------------------------------------ #
    # component access (kept for compatibility; the engine owns the state)
    # ------------------------------------------------------------------ #
    @property
    def objects(self) -> List[UncertainObject]:
        return self.engine.objects

    @objects.setter
    def objects(self, value: List[UncertainObject]) -> None:
        self.engine.objects = value

    @property
    def by_id(self) -> Dict[int, UncertainObject]:
        return self.engine.by_id

    @property
    def domain(self) -> Rect:
        return self.engine.domain

    @property
    def index(self) -> Optional[UVIndex]:
        return self.engine.index

    @property
    def rtree(self) -> RTree:
        return self.engine.rtree

    @rtree.setter
    def rtree(self, value: RTree) -> None:
        self.engine.rtree = value

    @property
    def object_store(self) -> ObjectStore:
        return self.engine.object_store

    @property
    def disk(self) -> DiskManager:
        return self.engine.disk

    @property
    def construction_stats(self) -> Optional[ConstructionStats]:
        return self.engine.construction_stats

    @property
    def _rtree_pnn(self):
        return self.engine._rtree_pnn

    @property
    def _pattern(self) -> PatternAnalyzer:
        return self.engine._pattern_analyzer()

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def pnn(self, query: Point, compute_probabilities: bool = True) -> PNNResult:
        """Probabilistic nearest-neighbour query via the active backend."""
        return self.engine._legacy_pnn(
            query, compute_probabilities=compute_probabilities
        )

    def pnn_rtree(self, query: Point, compute_probabilities: bool = True) -> PNNResult:
        """The same query evaluated with the R-tree baseline (for comparison).

        .. deprecated::
            Use ``engine.pnn_rtree(...)`` -- or build a second engine with
            ``DiagramConfig(backend="rtree")`` for a fully separate baseline.
        """
        warnings.warn(
            "UVDiagram.pnn_rtree() is deprecated; use "
            "QueryEngine.execute(PNNQuery(point)) (the planner selects the "
            "candidate source cost-based) or a QueryEngine built with "
            "DiagramConfig(backend='rtree')",
            DeprecationWarning,
            stacklevel=2,
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            return self.engine.pnn_rtree(
                query, compute_probabilities=compute_probabilities
            )

    def answer_objects(self, query: Point) -> List[int]:
        """Just the answer-object ids (no probability computation)."""
        return self.engine._legacy_pnn(
            query, compute_probabilities=False
        ).answer_ids

    # ------------------------------------------------------------------ #
    # pattern analysis
    # ------------------------------------------------------------------ #
    def uv_cell_area(self, oid: int) -> float:
        """Approximate area of one object's UV-cell."""
        return self.engine.uv_cell_area(oid)

    def uv_cell_extent(self, oid: int) -> Optional[Rect]:
        """Bounding rectangle of one object's UV-cell approximation."""
        return self.engine.uv_cell_extent(oid)

    def partitions_in(self, region: Rect) -> PartitionQueryResult:
        """UV-partition retrieval with densities (Section V-C, query 2)."""
        from repro.queries.spec import RangeQuery

        return self.engine.execute(RangeQuery(region))

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def object(self, oid: int) -> UncertainObject:
        """Look up an object by id."""
        return self.engine.object(oid)

    def index_statistics(self) -> Dict[str, float]:
        """Structural statistics of the underlying backend."""
        return self.engine.statistics()

    def __len__(self) -> int:
        return len(self.engine)


# Re-exported for callers that used to import it from this module.
__all__ = ["UVDiagram", "DiagramConfig", "QueryEngine", "create_backend"]
