"""The :class:`UVDiagram` facade: one object tying the whole system together.

A ``UVDiagram`` owns the dataset, the simulated disk, the R-tree used during
construction, the object store, the UV-index, and the query processors.  It
is the entry point recommended by the README and used by the examples::

    from repro import UVDiagram, generate_uniform_objects

    objects, domain = generate_uniform_objects(500, seed=1)
    diagram = UVDiagram.build(objects, domain)          # IC construction
    result = diagram.pnn(Point(4200.0, 5100.0))         # answer objects + probabilities
    area = diagram.uv_cell_area(result.answers[0].oid)  # pattern analysis
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.construction import (
    ConstructionStats,
    build_uv_index_basic,
    build_uv_index_ic,
    build_uv_index_icr,
)
from repro.core.pattern import PartitionQueryResult, PatternAnalyzer
from repro.core.pnn import UVIndexPNN
from repro.core.uv_index import UVIndex
from repro.geometry.point import Point
from repro.geometry.rectangle import Rect
from repro.queries.result import PNNResult
from repro.rtree.pnn import RTreePNN
from repro.rtree.tree import RTree
from repro.storage.disk import DiskManager
from repro.storage.object_store import ObjectStore
from repro.uncertain.objects import UncertainObject


class UVDiagram:
    """A UV-diagram over a set of uncertain objects.

    Use :meth:`build` rather than the constructor; the constructor merely
    wires together already-built components.
    """

    def __init__(
        self,
        objects: Sequence[UncertainObject],
        domain: Rect,
        index: UVIndex,
        rtree: RTree,
        object_store: ObjectStore,
        disk: DiskManager,
        construction_stats: Optional[ConstructionStats] = None,
    ):
        self.objects = list(objects)
        self.domain = domain
        self.index = index
        self.rtree = rtree
        self.object_store = object_store
        self.disk = disk
        self.construction_stats = construction_stats
        self.by_id: Dict[int, UncertainObject] = {obj.oid: obj for obj in self.objects}
        self._pnn = UVIndexPNN(index, object_store=object_store)
        self._rtree_pnn = RTreePNN(rtree, object_store=object_store)
        self._pattern = PatternAnalyzer(index)

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def build(
        cls,
        objects: Sequence[UncertainObject],
        domain: Rect,
        method: str = "ic",
        disk: Optional[DiskManager] = None,
        max_nonleaf: int = 4000,
        split_threshold: float = 1.0,
        page_capacity: Optional[int] = None,
        seed_knn: int = 300,
        seed_sectors: int = 8,
        rtree_fanout: int = 100,
    ) -> "UVDiagram":
        """Build a UV-diagram with the chosen construction method.

        Args:
            objects: the uncertain objects.
            domain: the domain rectangle that bounds the diagram.
            method: ``"ic"`` (default, recommended), ``"icr"`` or ``"basic"``.
            disk: shared disk manager; a fresh one is created when omitted.
            max_nonleaf: ``M``, the in-memory non-leaf budget of the UV-index.
            split_threshold: ``T_theta`` of the split rule.
            page_capacity: leaf-page capacity override (useful at small scale).
            seed_knn / seed_sectors: Algorithm 2 seed-selection parameters.
            rtree_fanout: fanout of the helper R-tree.
        """
        objects = list(objects)
        if not objects:
            raise ValueError("cannot build a UV-diagram over an empty dataset")
        disk = disk if disk is not None else DiskManager()
        store = ObjectStore(disk)
        store.bulk_load(objects)
        rtree = RTree.bulk_load(objects, disk=disk, fanout=rtree_fanout)

        method = method.lower()
        if method == "ic":
            index, stats = build_uv_index_ic(
                objects,
                domain,
                rtree=rtree,
                disk=disk,
                max_nonleaf=max_nonleaf,
                split_threshold=split_threshold,
                page_capacity=page_capacity,
                seed_knn=seed_knn,
                seed_sectors=seed_sectors,
            )
        elif method == "icr":
            index, stats = build_uv_index_icr(
                objects,
                domain,
                rtree=rtree,
                disk=disk,
                max_nonleaf=max_nonleaf,
                split_threshold=split_threshold,
                page_capacity=page_capacity,
                seed_knn=seed_knn,
                seed_sectors=seed_sectors,
            )
        elif method == "basic":
            index, stats = build_uv_index_basic(
                objects,
                domain,
                disk=disk,
                max_nonleaf=max_nonleaf,
                split_threshold=split_threshold,
                page_capacity=page_capacity,
            )
        else:
            raise ValueError(f"unknown construction method: {method!r}")

        return cls(
            objects=objects,
            domain=domain,
            index=index,
            rtree=rtree,
            object_store=store,
            disk=disk,
            construction_stats=stats,
        )

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def pnn(self, query: Point, compute_probabilities: bool = True) -> PNNResult:
        """Probabilistic nearest-neighbour query via the UV-index."""
        return self._pnn.query(query, compute_probabilities=compute_probabilities)

    def pnn_rtree(self, query: Point, compute_probabilities: bool = True) -> PNNResult:
        """The same query evaluated with the R-tree baseline (for comparison)."""
        return self._rtree_pnn.query(query, compute_probabilities=compute_probabilities)

    def answer_objects(self, query: Point) -> List[int]:
        """Just the answer-object ids (no probability computation)."""
        return self.pnn(query, compute_probabilities=False).answer_ids

    # ------------------------------------------------------------------ #
    # pattern analysis
    # ------------------------------------------------------------------ #
    def uv_cell_area(self, oid: int) -> float:
        """Approximate area of one object's UV-cell."""
        return self._pattern.uv_cell_area(oid)

    def uv_cell_extent(self, oid: int) -> Optional[Rect]:
        """Bounding rectangle of one object's UV-cell approximation."""
        return self._pattern.uv_cell_extent(oid)

    def partitions_in(self, region: Rect) -> PartitionQueryResult:
        """UV-partition retrieval with densities (Section V-C, query 2)."""
        return self._pattern.partitions_in(region)

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def object(self, oid: int) -> UncertainObject:
        """Look up an object by id."""
        return self.by_id[oid]

    def index_statistics(self) -> Dict[str, float]:
        """Structural statistics of the underlying UV-index."""
        return self.index.statistics()

    def __len__(self) -> int:
        return len(self.objects)
