"""Nearest-neighbour pattern analysis queries (Section V-C).

Two analytic queries are supported on top of the UV-index:

* **UV-cell retrieval**: the approximate area/extent of one object's UV-cell,
  computed as the total area of the leaf regions whose lists contain the
  object,
* **UV-partition retrieval**: given a region ``R``, the leaf regions
  intersecting ``R`` together with the number of associated objects and the
  resulting nearest-neighbour *density* (objects per unit area).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.uv_index import UVIndex, UVIndexNode
from repro.geometry.rectangle import Rect
from repro.storage.stats import IOStats


@dataclass(frozen=True)
class PartitionInfo:
    """One UV-index leaf region viewed as an (approximate) UV-partition."""

    region: Rect
    object_count: int
    density: float

    @property
    def area(self) -> float:
        """Area of the partition region."""
        return self.region.area()

    def to_dict(self) -> dict:
        """JSON-compatible state (inverse of :meth:`from_dict`)."""
        region = self.region
        return {
            "region": [region.xmin, region.ymin, region.xmax, region.ymax],
            "object_count": self.object_count,
            "density": self.density,
        }

    @classmethod
    def from_dict(cls, state: dict) -> "PartitionInfo":
        """Rebuild a partition from :meth:`to_dict` output."""
        return cls(
            region=Rect(*(float(value) for value in state["region"])),
            object_count=int(state["object_count"]),
            density=float(state["density"]),
        )


@dataclass
class PartitionQueryResult:
    """Result of a UV-partition retrieval query."""

    partitions: List[PartitionInfo]
    io: IOStats
    seconds: float

    def total_objects(self) -> int:
        """Sum of object counts over the returned partitions."""
        return sum(p.object_count for p in self.partitions)

    def to_dict(self) -> dict:
        """JSON-compatible state (inverse of :meth:`from_dict`)."""
        return {
            "type": "range_result",
            "partitions": [partition.to_dict() for partition in self.partitions],
            "io": self.io.as_dict(),
            "seconds": self.seconds,
        }

    @classmethod
    def from_dict(cls, state: dict) -> "PartitionQueryResult":
        """Rebuild a result from :meth:`to_dict` output."""
        return cls(
            partitions=[
                PartitionInfo.from_dict(entry)
                for entry in state.get("partitions", [])
            ],
            io=IOStats.from_dict(state.get("io", {})),
            seconds=float(state.get("seconds", 0.0)),
        )


class PatternAnalyzer:
    """Pattern-analysis queries over a UV-index.

    Args:
        index: the UV-index.
        precompute: when ``True``, leaf object-counts and areas are cached
            offline (the paper suggests storing these with each leaf) so that
            repeated pattern queries avoid re-reading leaf pages.
    """

    def __init__(self, index: UVIndex, precompute: bool = False):
        self.index = index
        self._leaf_counts: Optional[Dict[int, int]] = None
        if precompute:
            self.precompute_leaf_counts()

    def precompute_leaf_counts(self) -> None:
        """Cache each leaf's object count (offline, uncounted I/O)."""
        self._leaf_counts = {
            id(leaf): leaf.entry_count() for leaf in self.index.leaves()
        }

    # ------------------------------------------------------------------ #
    # UV-cell retrieval
    # ------------------------------------------------------------------ #
    def uv_cell_area(self, oid: int) -> float:
        """Approximate area of the region where ``oid`` can be the NN."""
        return sum(leaf.region.area() for leaf in self.index.leaves_of_object(oid))

    def uv_cell_extent(self, oid: int) -> Optional[Rect]:
        """Bounding rectangle of the leaves associated with the object."""
        leaves = self.index.leaves_of_object(oid)
        if not leaves:
            return None
        extent = leaves[0].region
        for leaf in leaves[1:]:
            extent = extent.union(leaf.region)
        return extent

    def uv_cell_leaf_regions(self, oid: int) -> List[Rect]:
        """The leaf regions approximating the object's UV-cell (for display)."""
        return [leaf.region for leaf in self.index.leaves_of_object(oid)]

    # ------------------------------------------------------------------ #
    # UV-partition retrieval
    # ------------------------------------------------------------------ #
    def partitions_in(self, region: Rect) -> PartitionQueryResult:
        """All (approximate) UV-partitions intersecting ``region`` with densities."""
        start = time.perf_counter()
        before = self.index.disk.stats.snapshot()
        partitions: List[PartitionInfo] = []
        for leaf in self.index.leaves_in(region):
            count = self._leaf_object_count(leaf)
            area = leaf.region.area()
            density = count / area if area > 0 else 0.0
            partitions.append(
                PartitionInfo(region=leaf.region, object_count=count, density=density)
            )
        io = self.index.disk.stats.delta(before)
        return PartitionQueryResult(
            partitions=partitions, io=io, seconds=time.perf_counter() - start
        )

    def density_histogram(self, region: Rect, bins: int = 10) -> List[int]:
        """Histogram of partition densities inside ``region`` (analysis helper)."""
        result = self.partitions_in(region)
        if not result.partitions:
            return [0] * bins
        densities = [p.density for p in result.partitions]
        low, high = min(densities), max(densities)
        if high <= low:
            counts = [0] * bins
            counts[0] = len(densities)
            return counts
        width = (high - low) / bins
        counts = [0] * bins
        for value in densities:
            slot = min(int((value - low) / width), bins - 1)
            counts[slot] += 1
        return counts

    def _leaf_object_count(self, leaf: UVIndexNode) -> int:
        if self._leaf_counts is not None and id(leaf) in self._leaf_counts:
            return self._leaf_counts[id(leaf)]
        # Counting requires reading the leaf's pages (counted I/O), exactly
        # like the online variant described in the paper.
        return len(self.index.read_leaf_entries(leaf))
