"""PNN query evaluation over the UV-index (Section V-A).

Evaluating a PNN with the UV-index is a *point query*: descend the in-memory
quad-tree to the leaf containing ``q``, read that leaf's page list, verify
the candidates with the ``d_minmax`` rule, and compute qualification
probabilities for the survivors.  The evaluator records the same three time
buckets as the R-tree baseline so the two can be compared side by side
(Figure 6(c)).
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence

from repro.core.uv_index import UVIndex
from repro.geometry.point import Point
from repro.queries.probability import qualification_probabilities
from repro.queries.result import PNNAnswer, PNNResult
from repro.queries.verifier import min_max_prune
from repro.storage.object_store import ObjectStore
from repro.storage.stats import TimingBreakdown
from repro.uncertain.objects import UncertainObject


class UVIndexPNN:
    """Probabilistic nearest-neighbour queries over a UV-index.

    Args:
        index: the UV-index.
        object_store: disk-backed store for full object retrieval (pdfs); when
            omitted, ``objects`` must provide the objects in memory.
        objects: in-memory objects (mainly for tests).
    """

    def __init__(
        self,
        index: UVIndex,
        object_store: Optional[ObjectStore] = None,
        objects: Optional[Sequence[UncertainObject]] = None,
    ):
        if object_store is None and objects is None:
            raise ValueError("either an object store or in-memory objects are required")
        self.index = index
        self.object_store = object_store
        self._objects_by_id = {obj.oid: obj for obj in objects} if objects else {}

    def retrieve_candidates(self, query: Point) -> List[tuple]:
        """Leaf entries ``(oid, MBC)`` of the leaf containing the query point."""
        _, entries, _ = self.index.point_query(query)
        return [(entry.oid, entry.mbc) for entry in entries]

    def query(self, query: Point, compute_probabilities: bool = True) -> PNNResult:
        """Evaluate a PNN query."""
        timing = TimingBreakdown()
        io_before = self.index.disk.stats.snapshot()

        start = time.perf_counter()
        candidates = self.retrieve_candidates(query)
        answer_ids = min_max_prune(query, candidates)
        timing.add("index", time.perf_counter() - start)
        index_io = self.index.disk.stats.delta(io_before)

        start = time.perf_counter()
        answer_objects = self._fetch_objects(answer_ids)
        timing.add("object_retrieval", time.perf_counter() - start)

        start = time.perf_counter()
        if compute_probabilities and answer_objects:
            probabilities = qualification_probabilities(answer_objects, query)
        else:
            probabilities = {obj.oid: 0.0 for obj in answer_objects}
        timing.add("probability", time.perf_counter() - start)

        answers = [
            PNNAnswer(oid=oid, probability=probabilities.get(oid, 0.0))
            for oid in answer_ids
        ]
        answers.sort(key=lambda a: (-a.probability, a.oid))
        return PNNResult(
            query=query,
            answers=answers,
            candidates_examined=len(candidates),
            io=self.index.disk.stats.delta(io_before),
            index_io=index_io,
            timing=timing,
        )

    def _fetch_objects(self, oids: List[int]) -> List[UncertainObject]:
        if self.object_store is not None:
            return self.object_store.fetch_many(oids)
        return [self._objects_by_id[oid] for oid in oids]
