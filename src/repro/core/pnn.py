"""PNN query evaluation over the UV-index (Section V-A).

Evaluating a PNN with the UV-index is a *point query*: descend the in-memory
quad-tree to the leaf containing ``q``, read that leaf's page list, verify
the candidates with the ``d_minmax`` rule, and compute qualification
probabilities for the survivors.  The evaluator records the same three time
buckets as the R-tree baseline so the two can be compared side by side
(Figure 6(c)); the shared pipeline lives in :mod:`repro.queries.pipeline`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.uv_index import UVIndex
from repro.geometry.circle import Circle
from repro.geometry.point import Point
from repro.queries.pipeline import evaluate_pnn
from repro.queries.probability_kernel import DEFAULT_PROB_KERNEL, RingCache
from repro.queries.result import PNNResult
from repro.storage.object_store import ObjectStore
from repro.uncertain.objects import UncertainObject


def uv_index_candidates(
    index: UVIndex, query: Point, cache=None
) -> List[Tuple[int, Circle]]:
    """Leaf entries ``(oid, MBC)`` of the leaf containing the query point.

    When ``cache`` (a :class:`repro.engine.backend.BatchReadCache`) is given,
    a leaf's page list is read -- and counted -- at most once per batch;
    subsequent queries landing in the same leaf reuse the entries.  This is
    the hot-path saving of :meth:`repro.engine.engine.QueryEngine.batch`.
    """
    leaf = index.locate_leaf(query)
    if cache is None:
        entries = index.read_leaf_entries(leaf)
    else:
        entries = cache.get(("uv-leaf", id(leaf)), lambda: index.read_leaf_entries(leaf))
    return [(entry.oid, entry.mbc) for entry in entries]


class UVIndexPNN:
    """Probabilistic nearest-neighbour queries over a UV-index.

    Args:
        index: the UV-index.
        object_store: disk-backed store for full object retrieval (pdfs); when
            omitted, ``objects`` must provide the objects in memory.
        objects: in-memory objects (mainly for tests).
    """

    def __init__(
        self,
        index: UVIndex,
        object_store: Optional[ObjectStore] = None,
        objects: Optional[Sequence[UncertainObject]] = None,
        prob_kernel: str = DEFAULT_PROB_KERNEL,
        ring_cache: Optional[RingCache] = None,
    ):
        if object_store is None and objects is None:
            raise ValueError("either an object store or in-memory objects are required")
        self.index = index
        self.object_store = object_store
        self.prob_kernel = prob_kernel
        self.ring_cache = ring_cache
        self._objects_by_id = {obj.oid: obj for obj in objects} if objects else {}

    def retrieve_candidates(self, query: Point) -> List[tuple]:
        """Leaf entries ``(oid, MBC)`` of the leaf containing the query point."""
        return uv_index_candidates(self.index, query)

    def query(
        self,
        query: Point,
        compute_probabilities: bool = True,
        threshold: float = 0.0,
        top_k: "int | None" = None,
    ) -> PNNResult:
        """Evaluate a PNN query (optionally threshold- / top-k-filtered)."""
        return evaluate_pnn(
            query,
            self.retrieve_candidates,
            self._fetch_objects,
            self.index.disk.stats,
            compute_probabilities=compute_probabilities,
            prob_kernel=self.prob_kernel,
            ring_cache=self.ring_cache,
            threshold=threshold,
            top_k=top_k,
        )

    def _fetch_objects(self, oids: List[int]) -> List[UncertainObject]:
        if self.object_store is not None:
            return self.object_store.fetch_many(oids)
        return [self._objects_by_id[oid] for oid in oids]
