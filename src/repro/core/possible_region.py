"""Possible regions (Definition 2) and their refinement by outside regions.

A possible region ``P_i`` is any area known to completely cover the UV-cell
``U_i``.  Algorithm 1 (and, in reduced form, the seed-based initialisation of
Algorithm 2) shrinks a possible region by subtracting outside regions
``X_i(j)`` one at a time.  We represent the region as a polygon whose curved
boundary pieces are densely sampled points of the corresponding hyperbolic
UV-edges; every refinement can only remove area, so the polygon always
remains a valid possible region.
"""

from __future__ import annotations

from typing import List, Sequence, Set

from repro.core.uv_edge import UVEdge
from repro.geometry.clipping import clip_polygon_by_constraint
from repro.geometry.hull import convex_hull
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.geometry.rectangle import Rect
from repro.uncertain.objects import UncertainObject


class PossibleRegion:
    """A shrinking over-approximation of one object's UV-cell.

    Args:
        owner: the object ``O_i`` whose UV-cell is being approximated.
        domain: the domain rectangle ``D`` (the initial possible region).
        arc_samples: number of curve samples inserted per clipped boundary
            run; higher values track the hyperbolic edges more closely at the
            cost of larger polygons.
        edge_samples: sub-sampling used to detect boundary crossings during a
            clip.
    """

    def __init__(
        self,
        owner: UncertainObject,
        domain: Rect,
        arc_samples: int = 12,
        edge_samples: int = 6,
    ):
        self.owner = owner
        self.domain = domain
        self.arc_samples = arc_samples
        self.edge_samples = edge_samples
        self.polygon = Polygon.from_rect(domain)
        self.refined_by: Set[int] = set()
        self._contributors: Set[int] = set()

    # ------------------------------------------------------------------ #
    # refinement
    # ------------------------------------------------------------------ #
    def refine(self, other: UncertainObject) -> bool:
        """Subtract the outside region ``X_i(j)`` induced by ``other``.

        Returns:
            ``True`` when the possible region actually shrank (``other`` is a
            potential r-object), ``False`` otherwise.
        """
        if other.oid == self.owner.oid:
            return False
        edge = UVEdge.between(self.owner, other)
        return self.refine_with_edge(edge)

    def refine_with_edge(self, edge: UVEdge) -> bool:
        """Refine with an already-constructed UV-edge."""
        other = edge.other
        self.refined_by.add(other.oid)
        if not edge.exists() or self.polygon.is_empty():
            return False

        area_before = self.polygon.area()

        def arc_sampler(exit_point: Point, entry_point: Point) -> Sequence[Point]:
            return edge.arc_between(exit_point, entry_point, count=self.arc_samples)

        clipped = clip_polygon_by_constraint(
            self.polygon,
            edge.edge_value,
            arc_sampler=arc_sampler,
            edge_samples=self.edge_samples,
        )
        changed = abs(clipped.area() - area_before) > 1e-9 * max(area_before, 1.0)
        if changed:
            self.polygon = clipped
            self._contributors.add(other.oid)
        return changed

    def refine_all(self, others: Sequence[UncertainObject]) -> List[int]:
        """Refine with every object in ``others``; return ids that had an effect."""
        effective = []
        for other in others:
            if self.refine(other):
                effective.append(other.oid)
        return effective

    # ------------------------------------------------------------------ #
    # measurements used by the pruning lemmas
    # ------------------------------------------------------------------ #
    def max_distance_from_center(self) -> float:
        """The bound ``d`` of Lemma 2: the farthest boundary point from ``c_i``.

        The boundary consists of straight domain edges and concave hyperbolic
        arcs, so the maximum over the polygon's vertices (which include the
        sampled arc points) attains the bound up to sampling error.
        """
        if self.polygon.is_empty():
            return 0.0
        return self.polygon.max_distance_from(self.owner.center)

    def convex_hull_vertices(self) -> List[Point]:
        """Vertices of the convex hull ``CH(P_i)`` used by C-pruning (Lemma 3)."""
        if self.polygon.is_empty():
            return []
        return convex_hull(self.polygon.vertices)

    def contains(self, p: Point) -> bool:
        """Membership test against the current approximation."""
        return self.polygon.contains_point(p)

    def area(self) -> float:
        """Area of the current possible region."""
        return self.polygon.area()

    def is_empty(self) -> bool:
        """``True`` when the region has collapsed to nothing."""
        return self.polygon.is_empty()

    # ------------------------------------------------------------------ #
    # provenance
    # ------------------------------------------------------------------ #
    @property
    def contributors(self) -> Set[int]:
        """Ids of objects whose refinement changed the region at some point.

        This is a superset of the true r-objects: an early contributor's edge
        may later be cut away entirely by another object.  Use
        :meth:`boundary_objects` for the final r-object extraction.
        """
        return set(self._contributors)

    def boundary_objects(
        self,
        candidates: Sequence[UncertainObject],
        tolerance: float = 1e-6,
    ) -> List[int]:
        """Objects whose UV-edges actually appear on the final boundary.

        For every vertex of the (densely sampled) boundary we test which
        candidates' UV-edge passes through it; those candidates are the
        r-objects ``F_i`` (Section IV-A).  ``tolerance`` is relative to the
        domain diagonal.
        """
        if self.polygon.is_empty():
            return []
        scale = max(self.domain.width, self.domain.height)
        tol = tolerance * scale
        found: Set[int] = set()
        edges = {
            candidate.oid: UVEdge.between(self.owner, candidate)
            for candidate in candidates
            if candidate.oid != self.owner.oid
        }
        for vertex in self.polygon.vertices:
            for oid, edge in edges.items():
                if oid in found or not edge.exists():
                    continue
                if abs(edge.edge_value(vertex)) <= tol:
                    found.add(oid)
        return sorted(found)
