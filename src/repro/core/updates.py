"""Incremental updates of a UV-diagram (insertions and deletions).

The paper lists incremental maintenance as future work (Section VII); this
module provides a correct, if conservative, implementation built on the same
cr-object machinery:

* **Insertion** of a new object ``O_n``: compute its cr-objects against the
  current dataset and insert it with Algorithm 3.  Existing leaf lists remain
  valid because adding an object can only *shrink* other objects' UV-cells --
  their existing leaf entries become (at worst) false positives, which the
  ``d_minmax`` verification already filters at query time.

* **Deletion** of ``O_d``: other objects' UV-cells can only *grow*, and they
  grow exactly for the objects whose cr-object set contained ``O_d`` (an
  object that never referenced ``O_d`` cannot have had its cell shaped by
  it).  The updater therefore removes ``O_d``'s entries and then recomputes
  and re-inserts every object that referenced ``O_d``.

The updater keeps the diagram's R-tree and object store in sync so that both
query paths (UV-index and R-tree baseline) stay correct after updates.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.core.cr_objects import CRObjectFinder
from repro.core.uv_index import UVIndex
from repro.uncertain.objects import UncertainObject


def register_object(diagram, obj: UncertainObject) -> None:
    """Add an object to a diagram's shared state (list, by-id map, store, R-tree)."""
    diagram.objects.append(obj)
    diagram.by_id[obj.oid] = obj
    diagram.object_store.bulk_load([obj])
    diagram.rtree.insert(obj)


def unregister_object(diagram, oid: int) -> None:
    """Drop an object from a diagram's shared state.

    The R-tree substrate has no delete in this reproduction; rebuild it
    (cheap relative to index maintenance, and it keeps the baseline
    comparable) and resync any attached R-tree query processor.
    """
    from repro.rtree.tree import RTree

    diagram.objects = [obj for obj in diagram.objects if obj.oid != oid]
    del diagram.by_id[oid]
    diagram.object_store.remove(oid)
    # Free the outgoing tree's leaf pages before bulk-loading its replacement;
    # leaking them would grow the page-id space (and hence every future
    # snapshot file) on each delete.
    stack = [diagram.rtree.root]
    while stack:
        node = stack.pop()
        if node.is_leaf:
            if node.page_id is not None:
                diagram.disk.free_page(node.page_id)
        else:
            stack.extend(entry.child for entry in node.entries)
    diagram.rtree = RTree.bulk_load(
        diagram.objects, disk=diagram.disk, fanout=diagram.rtree.fanout
    )
    rtree_pnn = getattr(diagram, "_rtree_pnn", None)
    if rtree_pnn is not None:
        rtree_pnn.tree = diagram.rtree


class UVDiagramUpdater:
    """Applies incremental insertions and deletions to a built UV-diagram.

    Args:
        diagram: the diagram to maintain -- a :class:`repro.core.diagram.UVDiagram`
            or any object exposing the same components (``objects``, ``by_id``,
            ``domain``, ``rtree``, ``object_store``, ``index``, ``disk``), such
            as a :class:`repro.engine.engine.QueryEngine` with a UV-index
            backend.
        seed_knn / seed_sectors: Algorithm 2 parameters used when cr-objects
            have to be recomputed; default to the values that make sense for
            the current dataset size.
    """

    def __init__(self, diagram, seed_knn: int = 300, seed_sectors: int = 8):
        self.diagram = diagram
        self.seed_knn = seed_knn
        self.seed_sectors = seed_sectors
        # Reverse mapping: which objects referenced each object as a cr-object.
        self._referencing: Dict[int, Set[int]] = {}
        self._cr_sets: Dict[int, List[int]] = {}
        self._bootstrap_reference_map()

    # ------------------------------------------------------------------ #
    # bootstrap
    # ------------------------------------------------------------------ #
    def _finder(self) -> CRObjectFinder:
        return CRObjectFinder(
            self.diagram.objects,
            self.diagram.domain,
            rtree=self.diagram.rtree,
            seed_knn=min(self.seed_knn, max(1, len(self.diagram.objects))),
            seed_sectors=self.seed_sectors,
        )

    def _bootstrap_reference_map(self) -> None:
        """Recompute the cr-object reverse index for the current dataset."""
        finder = self._finder()
        self._referencing = {obj.oid: set() for obj in self.diagram.objects}
        self._cr_sets = {}
        for obj in self.diagram.objects:
            result = finder.find(obj)
            self._cr_sets[obj.oid] = list(result.cr_objects)
            for other in result.cr_objects:
                self._referencing.setdefault(other, set()).add(obj.oid)

    # ------------------------------------------------------------------ #
    # insertion
    # ------------------------------------------------------------------ #
    def insert(self, obj: UncertainObject) -> List[int]:
        """Insert a new object and return its cr-object ids."""
        if obj.oid in self.diagram.by_id:
            raise ValueError(f"object id {obj.oid} already exists in the diagram")

        # Keep every component of the diagram in sync.
        register_object(self.diagram, obj)

        finder = self._finder()
        result = finder.find(obj)
        cr_objects = [self.diagram.by_id[oid] for oid in result.cr_objects]
        self.diagram.index.insert(obj, cr_objects)

        self._cr_sets[obj.oid] = list(result.cr_objects)
        self._referencing.setdefault(obj.oid, set())
        for other in result.cr_objects:
            self._referencing.setdefault(other, set()).add(obj.oid)
        return list(result.cr_objects)

    # ------------------------------------------------------------------ #
    # deletion
    # ------------------------------------------------------------------ #
    def remove(self, oid: int) -> List[int]:
        """Remove an object; returns the ids of the objects that were refreshed."""
        if oid not in self.diagram.by_id:
            raise KeyError(f"object {oid} is not in the diagram")

        affected = sorted(self._referencing.get(oid, set()) - {oid})

        # Drop the object from the shared diagram state and the UV-index.
        unregister_object(self.diagram, oid)
        _remove_from_index(self.diagram.index, oid)
        self._cr_sets.pop(oid, None)
        self._referencing.pop(oid, None)
        for refs in self._referencing.values():
            refs.discard(oid)

        # Refresh every object whose UV-cell may have grown.
        finder = self._finder()
        for refreshed_oid in affected:
            if refreshed_oid not in self.diagram.by_id:
                continue
            obj = self.diagram.by_id[refreshed_oid]
            _remove_from_index(self.diagram.index, refreshed_oid)
            result = finder.find(obj)
            self.diagram.index.insert(
                obj, [self.diagram.by_id[other] for other in result.cr_objects]
            )
            self._cr_sets[refreshed_oid] = list(result.cr_objects)
            for other in result.cr_objects:
                self._referencing.setdefault(other, set()).add(refreshed_oid)
        return affected

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def cr_objects_of(self, oid: int) -> List[int]:
        """The currently recorded cr-objects of an object."""
        return list(self._cr_sets.get(oid, []))

    def referencing(self, oid: int) -> List[int]:
        """Objects that list ``oid`` among their cr-objects."""
        return sorted(self._referencing.get(oid, set()))


def _remove_from_index(index: UVIndex, oid: int) -> None:
    """Remove every leaf entry of one object from a UV-index."""
    index.remove_object(oid)
