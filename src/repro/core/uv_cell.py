"""Exact UV-cell construction (Algorithm 1) and the UV-cell value object.

Algorithm 1 of the paper builds the UV-cell of every object by starting from
the whole domain and subtracting the outside region of every other object.
It is intentionally the *slow* path: the paper measures it at roughly
exponential cost (the "Basic" method of Figure 7(a)), and this reproduction
keeps it as both the correctness oracle for the fast path and the baseline of
that experiment.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.core.possible_region import PossibleRegion
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.geometry.rectangle import Rect
from repro.uncertain.objects import UncertainObject


@dataclass
class UVCell:
    """The UV-cell ``U_i`` of one uncertain object.

    Attributes:
        oid: id of the owning object.
        polygon: polygonal approximation of the cell (curved edges sampled).
        r_objects: ids of the objects whose UV-edges bound the cell
            (``F_i`` in the paper); empty when the cell is bounded only by
            the domain.
        construction_seconds: wall-clock time spent building the cell.
    """

    oid: int
    polygon: Polygon
    r_objects: List[int] = field(default_factory=list)
    construction_seconds: float = 0.0

    def area(self) -> float:
        """Area of the cell approximation."""
        return self.polygon.area()

    def contains(self, p: Point) -> bool:
        """``True`` when the query point lies inside the cell."""
        return self.polygon.contains_point(p)

    def intersects_rect(self, rect: Rect) -> bool:
        """``True`` when the cell overlaps the rectangle."""
        return self.polygon.intersects_rect(rect)


def build_exact_uv_cell(
    owner: UncertainObject,
    others: Sequence[UncertainObject],
    domain: Rect,
    arc_samples: int = 10,
    edge_samples: int = 6,
) -> UVCell:
    """Algorithm 1 for a single object.

    Args:
        owner: the object whose UV-cell is built.
        others: every other object that may shape the cell (the full dataset
            for the Basic method, or the cr-objects for the refinement step
            of the ICR method).
        domain: the domain rectangle ``D``.
        arc_samples: samples inserted per curved boundary run.
        edge_samples: crossing-detection sub-sampling per polygon edge.

    Returns:
        The UV-cell with its r-objects.
    """
    start = time.perf_counter()
    region = PossibleRegion(
        owner, domain, arc_samples=arc_samples, edge_samples=edge_samples
    )
    relevant = [other for other in others if other.oid != owner.oid]
    region.refine_all(relevant)
    r_objects = region.boundary_objects(relevant)
    elapsed = time.perf_counter() - start
    return UVCell(
        oid=owner.oid,
        polygon=region.polygon,
        r_objects=r_objects,
        construction_seconds=elapsed,
    )


def build_all_uv_cells(
    objects: Sequence[UncertainObject],
    domain: Rect,
    arc_samples: int = 10,
    edge_samples: int = 6,
) -> Dict[int, UVCell]:
    """Algorithm 1 for every object (the Basic construction).

    This is quadratic in the number of objects with an expensive inner clip,
    exactly the cost profile the paper sets out to avoid; use it only for
    small datasets, validation, and the Basic line of Figure 7(a).
    """
    cells: Dict[int, UVCell] = {}
    for owner in objects:
        cells[owner.oid] = build_exact_uv_cell(
            owner,
            [obj for obj in objects if obj.oid != owner.oid],
            domain,
            arc_samples=arc_samples,
            edge_samples=edge_samples,
        )
    return cells


def answer_objects_brute_force(
    objects: Sequence[UncertainObject], query: Point
) -> List[int]:
    """Ground-truth PNN answer set by direct distance comparison.

    ``O_i`` is an answer object iff its minimum distance from ``q`` does not
    exceed the smallest maximum distance over all objects (``d_minmax``).
    This is the semantics the UV-cell definition encodes geometrically, and
    the test-suite uses it as the oracle for both indexes.
    """
    if not objects:
        return []
    d_minmax = min(obj.max_distance(query) for obj in objects)
    return sorted(
        obj.oid for obj in objects if obj.min_distance(query) <= d_minmax + 1e-12
    )
