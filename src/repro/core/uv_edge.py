"""UV-edges and outside regions (Section III of the paper).

The UV-edge ``E_i(j)`` of object ``O_i`` with respect to ``O_j`` is the locus
of points whose minimum distance from ``O_i`` equals their maximum distance
from ``O_j``.  Its *outside region* ``X_i(j)`` is the convex region on the
``O_j`` side of the edge: a query point there is certainly closer to ``O_j``
than to ``O_i``, so ``O_i`` cannot be its nearest neighbour.

The edge itself is a branch of a hyperbola (Equation 5); membership in the
outside region, however, never requires conic arithmetic -- a direct distance
comparison suffices, which is what makes the 4-point test of the UV-index
cheap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.geometry.hyperbola import Hyperbola
from repro.geometry.point import Point
from repro.geometry.rectangle import Rect
from repro.uncertain.objects import UncertainObject


@dataclass(frozen=True)
class UVEdge:
    """The UV-edge ``E_i(j)`` together with its outside region ``X_i(j)``.

    Attributes:
        owner: the object ``O_i`` whose UV-cell the edge bounds.
        other: the competing object ``O_j``.
        hyperbola: parametric form of the edge, or ``None`` when the two
            uncertainty regions overlap (then the outside region is empty and
            the edge imposes no constraint).
    """

    owner: UncertainObject
    other: UncertainObject
    hyperbola: Optional[Hyperbola]

    @staticmethod
    def between(owner: UncertainObject, other: UncertainObject) -> "UVEdge":
        """Construct the UV-edge of ``owner`` with respect to ``other``."""
        if owner.oid == other.oid:
            raise ValueError("a UV-edge requires two distinct objects")
        hyperbola = Hyperbola.uv_edge(
            owner.center, owner.radius, other.center, other.radius
        )
        return UVEdge(owner=owner, other=other, hyperbola=hyperbola)

    # ------------------------------------------------------------------ #
    # membership
    # ------------------------------------------------------------------ #
    def exists(self) -> bool:
        """``True`` when the edge exists (non-overlapping uncertainty regions)."""
        return self.hyperbola is not None

    def edge_value(self, p: Point) -> float:
        """Signed constraint ``distmin(O_i, p) - distmax(O_j, p)``.

        Negative or zero means ``O_i`` can still be the nearest neighbour of
        ``p``; positive means ``p`` is in the outside region ``X_i(j)``.
        When the edge does not exist the value is always negative (the
        outside region is empty).
        """
        if self.hyperbola is None:
            return -1.0
        return self.hyperbola.edge_value(p)

    def in_outside_region(self, p: Point, tol: float = 0.0) -> bool:
        """``True`` when ``p`` lies in the outside region ``X_i(j)``."""
        return self.edge_value(p) > tol

    def rect_in_outside_region(self, rect: Rect) -> bool:
        """The 4-point test (Section V-B, overlap checking).

        Because the UV-edge is concave towards ``O_i`` and the outside region
        is convex, a square lies entirely inside ``X_i(j)`` whenever all four
        of its corners do.
        """
        if self.hyperbola is None:
            return False
        return all(self.in_outside_region(corner) for corner in rect.corners())

    # ------------------------------------------------------------------ #
    # boundary sampling (used by exact cell construction)
    # ------------------------------------------------------------------ #
    def arc_between(self, start: Point, end: Point, count: int = 12) -> List[Point]:
        """Sample the edge between two (approximate) boundary points."""
        if self.hyperbola is None:
            return []
        return self.hyperbola.arc_between(start, end, count=count)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        status = "exists" if self.exists() else "void"
        return f"UVEdge(O{self.owner.oid} | O{self.other.oid}, {status})"
