"""The UV-index: an adaptive quad-tree grid over the UV-diagram (Section V).

The index never materialises UV-partitions.  Each object is represented by
its cr-objects; a leaf of the quad-tree keeps, on simulated disk pages, the
``<ID, MBC, pointer>`` entries of every object whose UV-cell *may* overlap
the leaf's square region.  Overlap is decided by the conservative 4-point
test (Algorithm 5): the leaf is excluded only when one cr-object's outside
region provably contains the whole square, so true overlaps are never missed
while occasional false positives merely add filterable candidates.

Splitting is governed by the *split fraction* ``theta`` (Equation 10): a full
leaf is split into four quadrants only when at least one quadrant would
receive a noticeably smaller object list (``theta < T_theta``); otherwise the
leaf simply chains another page (OVERFLOW), avoiding four near-identical
copies of the same list.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.geometry.circle import Circle
from repro.geometry.point import Point
from repro.geometry.rectangle import Rect
from repro.storage.disk import DiskManager
from repro.storage.stats import IOStats
from repro.uncertain.objects import UncertainObject


class SplitDecision(enum.Enum):
    """Outcome of ``CheckSplit`` (Algorithm 4)."""

    NORMAL = "normal"
    OVERFLOW = "overflow"
    SPLIT = "split"


@dataclass
class UVIndexEntry:
    """Leaf entry ``<ID, MBC, pointer>`` (the pointer is the object id itself
    in this simulation; the object store resolves it to a disk page)."""

    oid: int
    mbc: Circle


@dataclass
class UVIndexNode:
    """A node of the adaptive grid."""

    region: Rect
    is_leaf: bool = True
    level: int = 0
    children: Optional[List["UVIndexNode"]] = None
    page_ids: List[int] = field(default_factory=list)
    entry_oids: List[int] = field(default_factory=list)

    def entry_count(self) -> int:
        """Number of objects associated with this (leaf) node."""
        return len(self.entry_oids)


class UVIndex:
    """Adaptive quad-tree index over UV-cells represented by cr-objects.

    Args:
        domain: the domain rectangle ``D`` covered by the root.
        disk: disk manager backing the leaf page lists.
        max_nonleaf: ``M`` -- maximum number of non-leaf nodes kept in memory
            (the paper uses 4000).
        split_threshold: ``T_theta`` in ``[0, 1]``; larger values split more
            eagerly (the paper uses 1).
        page_capacity: entries per leaf page; defaults to what fits in a 4 KB
            page.
    """

    def __init__(
        self,
        domain: Rect,
        disk: Optional[DiskManager] = None,
        max_nonleaf: int = 4000,
        split_threshold: float = 1.0,
        page_capacity: Optional[int] = None,
    ):
        if not 0.0 <= split_threshold <= 1.0:
            raise ValueError("split threshold must be within [0, 1]")
        if max_nonleaf < 1:
            raise ValueError("max_nonleaf must be positive")
        self.domain = domain
        self.disk = disk if disk is not None else DiskManager()
        self.max_nonleaf = max_nonleaf
        self.split_threshold = split_threshold
        self.page_capacity = page_capacity or self.disk.page_capacity
        self.root = UVIndexNode(region=domain, is_leaf=True, level=0)
        self.nonleaf_count = 1
        self.size = 0
        # Per-object data needed by the 4-point test: the object's own
        # circle and the circles of its cr-objects.
        self._owner_circle: Dict[int, Circle] = {}
        self._cr_circles: Dict[int, List[Circle]] = {}
        # Inverted map oid -> leaves whose lists contain the object, keyed by
        # node identity (UVIndexNode is an unhashable dataclass).  Pattern
        # queries and updates resolve an object's leaves through this map
        # instead of scanning the whole tree.
        self._oid_leaves: Dict[int, Dict[int, UVIndexNode]] = {}

    # ------------------------------------------------------------------ #
    # insertion (Algorithm 3)
    # ------------------------------------------------------------------ #
    def insert(self, owner: UncertainObject, cr_objects: Sequence[UncertainObject]) -> None:
        """Insert one object described by its cr-objects."""
        self._owner_circle[owner.oid] = owner.mbc()
        self._cr_circles[owner.oid] = [other.mbc() for other in cr_objects if other.oid != owner.oid]
        self._insert_obj(owner.oid, self.root)
        self.size += 1

    def _insert_obj(self, oid: int, node: UVIndexNode) -> None:
        if not self.check_overlap(oid, node.region):
            return
        if not node.is_leaf:
            for child in node.children or []:
                self._insert_obj(oid, child)
            return

        decision, prepared_children = self._check_split(oid, node)
        if decision is SplitDecision.NORMAL:
            self._append_entry(node, oid)
            self._register_leaf(oid, node)
        elif decision is SplitDecision.OVERFLOW:
            self._allocate_page(node)
            self._append_entry(node, oid)
            self._register_leaf(oid, node)
        else:  # SPLIT
            for member in node.entry_oids:
                self._unregister_leaf(member, node)
            for page_id in node.page_ids:
                self.disk.free_page(page_id)
            node.page_ids = []
            node.entry_oids = []
            node.is_leaf = False
            node.children = prepared_children
            self.nonleaf_count += 1
            for child in prepared_children or []:
                for member in child.entry_oids:
                    self._register_leaf(member, child)

    # ------------------------------------------------------------------ #
    # CheckSplit (Algorithm 4)
    # ------------------------------------------------------------------ #
    def _check_split(
        self, oid: int, node: UVIndexNode
    ) -> Tuple[SplitDecision, Optional[List[UVIndexNode]]]:
        if not node.page_ids or self._has_space(node):
            return SplitDecision.NORMAL, None
        if self.nonleaf_count + 1 > self.max_nonleaf:
            return SplitDecision.OVERFLOW, None

        children = [
            UVIndexNode(region=quarter, is_leaf=True, level=node.level + 1)
            for quarter in node.region.quarters()
        ]
        members = list(node.entry_oids) + [oid]
        for member in members:
            for child in children:
                if self.check_overlap(member, child.region):
                    self._append_entry(child, member)

        parent_count = max(1, node.entry_count())
        theta = min(child.entry_count() for child in children) / parent_count
        if theta < self.split_threshold:
            return SplitDecision.SPLIT, children

        for child in children:
            for page_id in child.page_ids:
                self.disk.free_page(page_id)
        return SplitDecision.OVERFLOW, None

    # ------------------------------------------------------------------ #
    # CheckOverlap (Algorithm 5): the 4-point test
    # ------------------------------------------------------------------ #
    def check_overlap(self, oid: int, region: Rect) -> bool:
        """Conservatively decide whether ``oid``'s UV-cell overlaps ``region``.

        Returns ``False`` only when some cr-object's outside region contains
        all four corners of the square; by Lemma 4 the UV-cell then cannot
        intersect the region.
        """
        owner = self._owner_circle[oid]
        corners = region.corners()
        for other in self._cr_circles[oid]:
            if all(self._in_outside_region(owner, other, corner) for corner in corners):
                return False
        return True

    @staticmethod
    def _in_outside_region(owner: Circle, other: Circle, p: Point) -> bool:
        """Membership of ``p`` in ``X_i(j)``: ``distmin(O_i,p) > distmax(O_j,p)``."""
        return owner.min_distance(p) > other.max_distance(p)

    # ------------------------------------------------------------------ #
    # page plumbing
    # ------------------------------------------------------------------ #
    def _has_space(self, node: UVIndexNode) -> bool:
        if not node.page_ids:
            return True
        last_page = self.disk.peek_page(node.page_ids[-1])
        return not last_page.is_full()

    def _allocate_page(self, node: UVIndexNode) -> None:
        page = self.disk.allocate_page(capacity=self.page_capacity)
        node.page_ids.append(page.page_id)

    def _append_entry(self, node: UVIndexNode, oid: int) -> None:
        if not node.page_ids or self.disk.peek_page(node.page_ids[-1]).is_full():
            self._allocate_page(node)
        page = self.disk.peek_page(node.page_ids[-1])
        page.add(UVIndexEntry(oid=oid, mbc=self._owner_circle[oid]))
        node.entry_oids.append(oid)

    def _register_leaf(self, oid: int, node: UVIndexNode) -> None:
        self._oid_leaves.setdefault(oid, {})[id(node)] = node

    def _unregister_leaf(self, oid: int, node: UVIndexNode) -> None:
        bucket = self._oid_leaves.get(oid)
        if bucket is not None:
            bucket.pop(id(node), None)
            if not bucket:
                del self._oid_leaves[oid]

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def locate_leaf(self, q: Point) -> UVIndexNode:
        """The leaf whose region contains the query point (in-memory descent)."""
        if not self.domain.contains_point(q):
            raise ValueError(f"query point {q} lies outside the indexed domain")
        node = self.root
        while not node.is_leaf:
            for child in node.children or []:
                if child.region.contains_point(q):
                    node = child
                    break
            else:  # pragma: no cover - defensive, quarters tile the region
                raise RuntimeError("quad-tree descent failed to find a child")
        return node

    def read_leaf_entries(self, node: UVIndexNode) -> List[UVIndexEntry]:
        """Read a leaf's page list through the disk manager (counted I/O)."""
        entries: List[UVIndexEntry] = []
        for page_id in node.page_ids:
            entries.extend(self.disk.read_page(page_id).entries)
        return entries

    def point_query(self, q: Point) -> Tuple[UVIndexNode, List[UVIndexEntry], IOStats]:
        """Find the leaf containing ``q`` and fetch its entries.

        Returns the leaf, its entries, and the I/O incurred by the fetch.
        """
        before = self.disk.stats.snapshot()
        leaf = self.locate_leaf(q)
        entries = self.read_leaf_entries(leaf)
        return leaf, entries, self.disk.stats.delta(before)

    # ------------------------------------------------------------------ #
    # traversal helpers (pattern queries, statistics, tests)
    # ------------------------------------------------------------------ #
    def leaves(self) -> Iterator[UVIndexNode]:
        """Iterate over all leaf nodes."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                yield node
            else:
                stack.extend(node.children or [])

    def leaves_in(self, rect: Rect) -> List[UVIndexNode]:
        """All leaves whose regions intersect ``rect``."""
        found = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            if not node.region.intersects(rect):
                continue
            if node.is_leaf:
                found.append(node)
            else:
                stack.extend(node.children or [])
        return found

    def leaves_of_object(self, oid: int) -> List[UVIndexNode]:
        """All leaves whose lists include the object (UV-cell retrieval).

        Served from the inverted oid -> leaves map maintained on insertion and
        splitting, so the cost is proportional to the object's own leaf count
        rather than to the size of the whole tree.
        """
        return list(self._oid_leaves.get(oid, {}).values())

    # ------------------------------------------------------------------ #
    # deletion (incremental maintenance, Section VII)
    # ------------------------------------------------------------------ #
    def remove_object(self, oid: int) -> bool:
        """Remove every leaf entry of one object; returns ``True`` if found.

        Leaf pages are edited in place (uncounted maintenance I/O, matching
        how insertion accounts its writes) and pages that become empty are
        freed, so delete churn does not grow a leaf's page list -- or the
        disk's page-id space -- without bound.  The adaptive grid itself
        never un-splits, as in the paper.
        """
        self._owner_circle.pop(oid, None)
        self._cr_circles.pop(oid, None)
        leaves = self._oid_leaves.pop(oid, {})
        removed_any = False
        for leaf in leaves.values():
            if oid not in leaf.entry_oids:
                continue
            removed_any = True
            leaf.entry_oids = [existing for existing in leaf.entry_oids if existing != oid]
            kept_pages: List[int] = []
            for page_id in leaf.page_ids:
                page = self.disk.peek_page(page_id)
                page.entries = [entry for entry in page.entries if entry.oid != oid]
                if page.entries:
                    kept_pages.append(page_id)
                else:
                    self.disk.free_page(page_id)
            leaf.page_ids = kept_pages
        if removed_any:
            self.size = max(0, self.size - 1)
        return removed_any

    # ------------------------------------------------------------------ #
    # persistence (diagram snapshots)
    # ------------------------------------------------------------------ #
    def snapshot_state(self) -> Dict:
        """JSON-ready state of the in-memory structure.

        Leaf page *contents* stay on the disk manager's pages (the snapshot
        file stores them in place); this captures everything else: the
        non-leaf tree, per-leaf page-id lists, and the circles the 4-point
        test needs for future insertions.
        """
        return {
            "max_nonleaf": self.max_nonleaf,
            "split_threshold": self.split_threshold,
            "page_capacity": self.page_capacity,
            "size": self.size,
            "nonleaf_count": self.nonleaf_count,
            "owner_circles": {
                str(oid): _circle_state(c) for oid, c in self._owner_circle.items()
            },
            "cr_circles": {
                str(oid): [_circle_state(c) for c in circles]
                for oid, circles in self._cr_circles.items()
            },
            "root": _node_state(self.root),
        }

    @classmethod
    def from_snapshot(cls, state: Dict, domain: Rect, disk: DiskManager) -> "UVIndex":
        """Rebuild an index over already-persisted leaf pages.

        No pages are read or allocated: the restored nodes reference the page
        ids recorded in ``state``, so query I/O counts match the original
        index exactly.
        """
        index = cls(
            domain,
            disk=disk,
            max_nonleaf=state["max_nonleaf"],
            split_threshold=state["split_threshold"],
            page_capacity=state["page_capacity"],
        )
        index.size = state["size"]
        index.nonleaf_count = state["nonleaf_count"]
        index._owner_circle = {
            int(oid): _circle_from_state(c) for oid, c in state["owner_circles"].items()
        }
        index._cr_circles = {
            int(oid): [_circle_from_state(c) for c in circles]
            for oid, circles in state["cr_circles"].items()
        }
        index.root = _node_from_state(state["root"])
        for leaf in index.leaves():
            for oid in leaf.entry_oids:
                index._register_leaf(oid, leaf)
        return index

    def statistics(self) -> Dict[str, float]:
        """Summary statistics used by reports and the sensitivity benchmark."""
        leaves = list(self.leaves())
        entry_counts = [leaf.entry_count() for leaf in leaves]
        page_counts = [len(leaf.page_ids) for leaf in leaves]
        depth = max((leaf.level for leaf in leaves), default=0)
        return {
            "objects": float(self.size),
            "nonleaf_nodes": float(self.nonleaf_count),
            "leaf_nodes": float(len(leaves)),
            "max_depth": float(depth),
            "total_entries": float(sum(entry_counts)),
            "avg_entries_per_leaf": (
                sum(entry_counts) / len(leaves) if leaves else 0.0
            ),
            "max_pages_per_leaf": float(max(page_counts, default=0)),
            "avg_pages_per_leaf": (
                sum(page_counts) / len(leaves) if leaves else 0.0
            ),
        }


# ---------------------------------------------------------------------- #
# snapshot plumbing
# ---------------------------------------------------------------------- #
def _circle_state(circle: Circle) -> List[float]:
    return [circle.center.x, circle.center.y, circle.radius]


def _circle_from_state(state: Sequence[float]) -> Circle:
    return Circle(Point(state[0], state[1]), state[2])


def _node_state(node: UVIndexNode) -> Dict:
    from repro.storage.codec import rect_state

    state: Dict = {
        "region": rect_state(node.region),
        "leaf": node.is_leaf,
        "level": node.level,
    }
    if node.is_leaf:
        state["pages"] = list(node.page_ids)
        state["oids"] = list(node.entry_oids)
    else:
        state["children"] = [_node_state(child) for child in node.children or []]
    return state


def _node_from_state(state: Dict) -> UVIndexNode:
    from repro.storage.codec import rect_from_state

    node = UVIndexNode(
        region=rect_from_state(state["region"]),
        is_leaf=state["leaf"],
        level=state["level"],
    )
    if node.is_leaf:
        node.page_ids = list(state["pages"])
        node.entry_oids = list(state["oids"])
    else:
        node.children = [_node_from_state(child) for child in state["children"]]
    return node
