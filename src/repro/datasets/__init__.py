"""Dataset generators used by the examples, tests, and benchmarks.

Three families mirror the paper's experimental data:

* :func:`generate_uniform_objects` -- uniformly distributed centres in a
  square domain (the Theodoridis-generator synthetic data of Section VI-A),
* :func:`generate_skewed_objects` -- centres drawn from a Gaussian around the
  domain centre with a controllable variance (the skewness experiment of
  Figure 7(g)),
* :mod:`repro.datasets.real_like` -- synthetic substitutes for the German
  geographic datasets (*utility*, *roads*, *rrlines*): clustered points,
  points along road-like polylines, and points along long rail-like lines.
"""

from repro.datasets.synthetic import (
    DEFAULT_DOMAIN,
    generate_uniform_objects,
    generate_skewed_objects,
    generate_query_points,
)
from repro.datasets.real_like import (
    generate_utility_like,
    generate_roads_like,
    generate_rrlines_like,
    real_like_dataset,
)
from repro.datasets.loader import DatasetBundle, load_dataset

__all__ = [
    "DEFAULT_DOMAIN",
    "generate_uniform_objects",
    "generate_skewed_objects",
    "generate_query_points",
    "generate_utility_like",
    "generate_roads_like",
    "generate_rrlines_like",
    "real_like_dataset",
    "DatasetBundle",
    "load_dataset",
]
