"""Dataset bundles and a single entry point for every generator.

Benchmarks and examples request datasets by a short specification string, so
that the same harness can sweep synthetic sizes, uncertainty diameters,
skewness levels, and real-like dataset families.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.datasets.real_like import real_like_dataset
from repro.datasets.synthetic import (
    DEFAULT_DIAMETER,
    DEFAULT_DOMAIN,
    generate_query_points,
    generate_skewed_objects,
    generate_uniform_objects,
)
from repro.geometry.point import Point
from repro.geometry.rectangle import Rect
from repro.uncertain.objects import UncertainObject


@dataclass
class DatasetBundle:
    """A dataset plus the metadata the experiment harness needs."""

    name: str
    objects: List[UncertainObject]
    domain: Rect
    diameter: float
    queries: List[Point]

    @property
    def size(self) -> int:
        """Number of objects."""
        return len(self.objects)


def load_dataset(
    name: str,
    count: int,
    diameter: float = DEFAULT_DIAMETER,
    sigma: Optional[float] = None,
    domain: Rect = DEFAULT_DOMAIN,
    query_count: int = 50,
    seed: int = 0,
) -> DatasetBundle:
    """Create a dataset bundle by name.

    Supported names: ``"uniform"``, ``"skewed"`` (requires ``sigma``),
    ``"utility"``, ``"roads"``, ``"rrlines"``.
    """
    name = name.lower()
    if name == "uniform":
        objects, dom = generate_uniform_objects(
            count, domain=domain, diameter=diameter, seed=seed
        )
    elif name == "skewed":
        if sigma is None:
            raise ValueError("the skewed dataset requires a sigma value")
        objects, dom = generate_skewed_objects(
            count, sigma, domain=domain, diameter=diameter, seed=seed
        )
    elif name in ("utility", "roads", "rrlines"):
        objects, dom = real_like_dataset(
            name, count, domain=domain, diameter=diameter, seed=seed
        )
    else:
        raise ValueError(f"unknown dataset name: {name!r}")
    queries = generate_query_points(query_count, domain=dom, seed=seed + 1000)
    return DatasetBundle(
        name=name, objects=objects, domain=dom, diameter=diameter, queries=queries
    )
