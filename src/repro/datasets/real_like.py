"""Synthetic substitutes for the paper's real geographic datasets.

The paper evaluates on three datasets of geographic objects in Germany
(*utility* 17K, *roads* 30K, *rrlines* 36K from the R-tree portal).  Those
files are not redistributable here, so this module generates datasets with
the same spatial character at configurable scale:

* **utility-like** -- strongly clustered point locations (utility
  installations concentrate around settlements),
* **roads-like** -- object centres scattered along a network of meandering
  road-like polylines,
* **rrlines-like** -- object centres along a small number of long, straight
  rail-like corridors crossing the domain.

What the experiments need from the real data is *non-uniform, real-world-like
spatial skew*; clustering and linear features are exactly what produces the
measured effects (denser UV-cells, more r-objects, higher construction time),
so the substitution preserves the behaviour being studied (see DESIGN.md).
"""

from __future__ import annotations

import math
from typing import List, Tuple

import numpy as np

from repro.datasets.synthetic import DEFAULT_DIAMETER, DEFAULT_DOMAIN, _make_object
from repro.geometry.point import Point
from repro.geometry.rectangle import Rect
from repro.geometry.segment import sample_polyline
from repro.uncertain.objects import UncertainObject


def _clamp_points(xs: np.ndarray, ys: np.ndarray, domain: Rect, radius: float):
    xs = np.clip(xs, domain.xmin + radius, domain.xmax - radius)
    ys = np.clip(ys, domain.ymin + radius, domain.ymax - radius)
    return xs, ys


def generate_utility_like(
    count: int,
    domain: Rect = DEFAULT_DOMAIN,
    diameter: float = DEFAULT_DIAMETER,
    clusters: int = 12,
    cluster_sigma_fraction: float = 0.04,
    pdf: str = "histogram",
    seed: int = 0,
) -> Tuple[List[UncertainObject], Rect]:
    """Clustered point data resembling utility installations around towns."""
    if count < 1:
        raise ValueError("count must be positive")
    rng = np.random.default_rng(seed)
    radius = diameter / 2.0
    centers_x = rng.uniform(domain.xmin, domain.xmax, clusters)
    centers_y = rng.uniform(domain.ymin, domain.ymax, clusters)
    sigma = cluster_sigma_fraction * min(domain.width, domain.height)
    assignment = rng.integers(0, clusters, count)
    xs = centers_x[assignment] + rng.normal(0.0, sigma, count)
    ys = centers_y[assignment] + rng.normal(0.0, sigma, count)
    xs, ys = _clamp_points(xs, ys, domain, radius)
    objects = [
        _make_object(i, float(xs[i]), float(ys[i]), diameter, pdf, 20)
        for i in range(count)
    ]
    return objects, domain


def _random_polyline(
    rng: np.random.Generator, domain: Rect, vertices: int, wobble: float
) -> List[Point]:
    """A meandering polyline crossing the domain."""
    start = Point(
        float(rng.uniform(domain.xmin, domain.xmax)),
        float(rng.uniform(domain.ymin, domain.ymax)),
    )
    heading = float(rng.uniform(0.0, 2.0 * math.pi))
    step = max(domain.width, domain.height) / vertices
    points = [start]
    current = start
    for _ in range(vertices - 1):
        heading += float(rng.normal(0.0, wobble))
        current = Point(
            min(max(current.x + step * math.cos(heading), domain.xmin), domain.xmax),
            min(max(current.y + step * math.sin(heading), domain.ymin), domain.ymax),
        )
        points.append(current)
    return points


def generate_roads_like(
    count: int,
    domain: Rect = DEFAULT_DOMAIN,
    diameter: float = DEFAULT_DIAMETER,
    roads: int = 20,
    jitter_fraction: float = 0.01,
    pdf: str = "histogram",
    seed: int = 1,
) -> Tuple[List[UncertainObject], Rect]:
    """Object centres scattered along meandering road-like polylines."""
    if count < 1:
        raise ValueError("count must be positive")
    rng = np.random.default_rng(seed)
    radius = diameter / 2.0
    jitter = jitter_fraction * min(domain.width, domain.height)
    per_road = [count // roads] * roads
    for i in range(count - sum(per_road)):
        per_road[i % roads] += 1

    centers: List[Point] = []
    for road_count in per_road:
        if road_count == 0:
            continue
        polyline = _random_polyline(rng, domain, vertices=24, wobble=0.45)
        centers.extend(sample_polyline(polyline, road_count))
    xs = np.array([p.x for p in centers]) + rng.normal(0.0, jitter, len(centers))
    ys = np.array([p.y for p in centers]) + rng.normal(0.0, jitter, len(centers))
    xs, ys = _clamp_points(xs, ys, domain, radius)
    objects = [
        _make_object(i, float(xs[i]), float(ys[i]), diameter, pdf, 20)
        for i in range(count)
    ]
    return objects, domain


def generate_rrlines_like(
    count: int,
    domain: Rect = DEFAULT_DOMAIN,
    diameter: float = DEFAULT_DIAMETER,
    lines: int = 8,
    jitter_fraction: float = 0.005,
    pdf: str = "histogram",
    seed: int = 2,
) -> Tuple[List[UncertainObject], Rect]:
    """Object centres along long straight rail-like corridors."""
    if count < 1:
        raise ValueError("count must be positive")
    rng = np.random.default_rng(seed)
    radius = diameter / 2.0
    jitter = jitter_fraction * min(domain.width, domain.height)
    per_line = [count // lines] * lines
    for i in range(count - sum(per_line)):
        per_line[i % lines] += 1

    centers: List[Point] = []
    for line_count in per_line:
        if line_count == 0:
            continue
        # Straight corridor between two random boundary-ish points.
        start = Point(
            float(rng.uniform(domain.xmin, domain.xmax)),
            float(rng.uniform(domain.ymin, domain.ymax)),
        )
        end = Point(
            float(rng.uniform(domain.xmin, domain.xmax)),
            float(rng.uniform(domain.ymin, domain.ymax)),
        )
        centers.extend(sample_polyline([start, end], line_count))
    xs = np.array([p.x for p in centers]) + rng.normal(0.0, jitter, len(centers))
    ys = np.array([p.y for p in centers]) + rng.normal(0.0, jitter, len(centers))
    xs, ys = _clamp_points(xs, ys, domain, radius)
    objects = [
        _make_object(i, float(xs[i]), float(ys[i]), diameter, pdf, 20)
        for i in range(count)
    ]
    return objects, domain


def real_like_dataset(
    name: str,
    count: int,
    domain: Rect = DEFAULT_DOMAIN,
    diameter: float = DEFAULT_DIAMETER,
    seed: int = 0,
) -> Tuple[List[UncertainObject], Rect]:
    """Dispatch by dataset name: ``"utility"``, ``"roads"``, or ``"rrlines"``."""
    name = name.lower()
    if name == "utility":
        return generate_utility_like(count, domain=domain, diameter=diameter, seed=seed)
    if name == "roads":
        return generate_roads_like(count, domain=domain, diameter=diameter, seed=seed)
    if name == "rrlines":
        return generate_rrlines_like(count, domain=domain, diameter=diameter, seed=seed)
    raise ValueError(f"unknown real-like dataset: {name!r}")
