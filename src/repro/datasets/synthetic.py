"""Synthetic datasets: uniform and skewed object distributions.

The paper's synthetic workload (Section VI-A): objects uniformly distributed
in a ``10,000 x 10,000`` space, each with a circular uncertainty region of
diameter 40 and a Gaussian pdf whose standard deviation is one sixth of the
diameter, stored as 20 histogram bars.  The skewness experiment (Figure 7(g))
instead draws the centres from a Gaussian around the domain centre with
standard deviation ``sigma`` between 1500 and 3500.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.geometry.circle import Circle
from repro.geometry.point import Point
from repro.geometry.rectangle import Rect
from repro.uncertain.objects import UncertainObject
from repro.uncertain.pdf import TruncatedGaussianPdf, UniformPdf

DEFAULT_DOMAIN = Rect(0.0, 0.0, 10_000.0, 10_000.0)
"""The paper's 10k x 10k domain."""

DEFAULT_DIAMETER = 40.0
"""The paper's default uncertainty-region diameter."""


def _make_object(oid: int, x: float, y: float, diameter: float, pdf_kind: str,
                 histogram_bars: int) -> UncertainObject:
    radius = diameter / 2.0
    if pdf_kind == "uniform":
        pdf = UniformPdf(radius)
    elif pdf_kind == "gaussian":
        pdf = TruncatedGaussianPdf(radius, sigma=diameter / 6.0 if diameter > 0 else None)
    elif pdf_kind == "histogram":
        base = TruncatedGaussianPdf(radius, sigma=diameter / 6.0 if diameter > 0 else None)
        pdf = base.to_histogram(bars=histogram_bars)
    else:
        raise ValueError(f"unknown pdf kind: {pdf_kind!r}")
    return UncertainObject(oid, Circle(Point(x, y), radius), pdf)


def generate_uniform_objects(
    count: int,
    domain: Rect = DEFAULT_DOMAIN,
    diameter: float = DEFAULT_DIAMETER,
    pdf: str = "histogram",
    histogram_bars: int = 20,
    seed: int = 0,
) -> Tuple[List[UncertainObject], Rect]:
    """Uniformly distributed uncertain objects.

    Args:
        count: number of objects.
        domain: the bounding domain; centres are kept at least one radius
            away from the boundary so regions stay inside the domain.
        diameter: uncertainty-region diameter (paper default: 40 units).
        pdf: ``"histogram"`` (paper setup: Gaussian discretised to bars),
            ``"gaussian"``, or ``"uniform"``.
        histogram_bars: number of bars when ``pdf == "histogram"``.
        seed: RNG seed.

    Returns:
        ``(objects, domain)``.
    """
    if count < 1:
        raise ValueError("count must be positive")
    rng = np.random.default_rng(seed)
    radius = diameter / 2.0
    xs = rng.uniform(domain.xmin + radius, domain.xmax - radius, count)
    ys = rng.uniform(domain.ymin + radius, domain.ymax - radius, count)
    objects = [
        _make_object(i, float(xs[i]), float(ys[i]), diameter, pdf, histogram_bars)
        for i in range(count)
    ]
    return objects, domain


def generate_skewed_objects(
    count: int,
    sigma: float,
    domain: Rect = DEFAULT_DOMAIN,
    diameter: float = DEFAULT_DIAMETER,
    pdf: str = "histogram",
    histogram_bars: int = 20,
    seed: int = 0,
) -> Tuple[List[UncertainObject], Rect]:
    """Objects whose centres follow a Gaussian around the domain centre.

    Smaller ``sigma`` means a more skewed (denser) dataset; the paper sweeps
    ``sigma`` from 1500 to 3500 in the 10k x 10k domain (Figure 7(g)).
    """
    if count < 1:
        raise ValueError("count must be positive")
    if sigma <= 0:
        raise ValueError("sigma must be positive")
    rng = np.random.default_rng(seed)
    radius = diameter / 2.0
    center = domain.center
    xs = rng.normal(center.x, sigma, count)
    ys = rng.normal(center.y, sigma, count)
    xs = np.clip(xs, domain.xmin + radius, domain.xmax - radius)
    ys = np.clip(ys, domain.ymin + radius, domain.ymax - radius)
    objects = [
        _make_object(i, float(xs[i]), float(ys[i]), diameter, pdf, histogram_bars)
        for i in range(count)
    ]
    return objects, domain


def generate_query_points(
    count: int, domain: Rect = DEFAULT_DOMAIN, seed: int = 42
) -> List[Point]:
    """Uniformly distributed PNN query points (the paper evaluates 50 per run)."""
    if count < 1:
        raise ValueError("count must be positive")
    rng = np.random.default_rng(seed)
    xs = rng.uniform(domain.xmin, domain.xmax, count)
    ys = rng.uniform(domain.ymin, domain.ymax, count)
    return [Point(float(x), float(y)) for x, y in zip(xs, ys)]
