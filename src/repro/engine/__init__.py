"""The unified query-engine API: pluggable backends behind one query plane.

Public surface:

* :class:`DiagramConfig` -- typed, validated build configuration,
* :class:`IndexBackend` / the backend registry -- swappable candidate sources,
* :class:`QueryEngine` -- PNN / k-PNN / pattern / batch queries plus live
  insert/delete over whichever backend the config selects.
"""

from repro.engine.backend import (
    BatchReadCache,
    IndexBackend,
    UnsupportedQueryError,
    available_backends,
    create_backend,
    register_backend,
    restore_backend,
    unregister_backend,
)
from repro.engine.config import DiagramConfig
from repro.engine.engine import BatchResult, QueryEngine

# Importing the built-in adapters registers them.
from repro.engine import backends as _builtin_backends  # noqa: F401

__all__ = [
    "BatchReadCache",
    "BatchResult",
    "DiagramConfig",
    "IndexBackend",
    "QueryEngine",
    "UnsupportedQueryError",
    "available_backends",
    "create_backend",
    "register_backend",
    "restore_backend",
    "unregister_backend",
]
