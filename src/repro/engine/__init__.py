"""The unified query-engine API: pluggable backends behind one query plane.

Public surface:

* :class:`DiagramConfig` -- typed, validated build configuration,
* :class:`IndexBackend` / the backend registry -- swappable candidate sources,
* :class:`QueryEngine` -- typed query descriptors through
  :meth:`~QueryEngine.execute` / :meth:`~QueryEngine.explain`, plus live
  insert/delete over whichever backend the config selects,
* :class:`QueryPlanner` / :class:`QueryPlan` / :class:`ExplainReport` -- the
  cost-based planning layer behind both entry points.
"""

from repro.engine.backend import (
    BatchReadCache,
    IndexBackend,
    UnsupportedQueryError,
    available_backends,
    create_backend,
    register_backend,
    restore_backend,
    unregister_backend,
)
from repro.engine.config import DiagramConfig
from repro.engine.engine import (
    BatchResult,
    BatchStream,
    QueryEngine,
    ReadOnlyEngineError,
)
from repro.engine.planner import ExplainReport, QueryPlan, QueryPlanner

# Importing the built-in adapters registers them.
from repro.engine import backends as _builtin_backends  # noqa: F401

__all__ = [
    "BatchReadCache",
    "BatchResult",
    "BatchStream",
    "DiagramConfig",
    "ExplainReport",
    "IndexBackend",
    "QueryEngine",
    "QueryPlan",
    "QueryPlanner",
    "ReadOnlyEngineError",
    "UnsupportedQueryError",
    "available_backends",
    "create_backend",
    "register_backend",
    "restore_backend",
    "unregister_backend",
]
