"""The :class:`IndexBackend` protocol and the string-keyed backend registry.

A backend is a swappable candidate source: it answers "which objects could be
the nearest neighbour of this point" (``candidates``) and "which objects could
own space inside this rectangle" (``range_candidates``), supports live
``insert`` / ``delete``, and reports its structure and I/O.  The
:class:`~repro.engine.engine.QueryEngine` layers the shared verification /
probability pipeline on top, so a new index structure only has to implement
this class and register a factory to participate in every query type.
"""

from __future__ import annotations

import abc
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.core.pattern import PartitionInfo, PartitionQueryResult
from repro.geometry.circle import Circle
from repro.geometry.point import Point
from repro.geometry.rectangle import Rect
from repro.storage.stats import IOStats
from repro.uncertain.objects import UncertainObject

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.engine.config import DiagramConfig
    from repro.engine.engine import QueryEngine


class UnsupportedQueryError(RuntimeError):
    """Raised when a backend cannot answer a query type at all."""


class BatchReadCache:
    """Memo for page-list reads shared across the queries of one batch.

    Keys identify an index granule (a UV-index leaf, an R-tree leaf node, a
    grid cell); the first query to touch a granule pays its counted page
    reads, subsequent queries reuse the entries.  ``pages_saved`` is estimated
    from the hit count by the caller that knows the granule size.
    """

    def __init__(self) -> None:
        self._entries: Dict[Any, Any] = {}
        self.hits = 0
        self.misses = 0

    def get(self, key: Any, loader: Callable[[], Any]) -> Any:
        """The cached value for ``key``, loading (and counting I/O) on miss."""
        if key in self._entries:
            self.hits += 1
            return self._entries[key]
        self.misses += 1
        value = loader()
        self._entries[key] = value
        return value

    def __len__(self) -> int:
        return len(self._entries)


class IndexBackend(abc.ABC):
    """A candidate-source index behind the unified query plane.

    Concrete backends are created through :func:`create_backend` and bound to
    their owning engine with :meth:`bind`; the engine reference gives adapters
    access to the shared object list, R-tree, and object store without each
    backend re-owning that state.
    """

    #: registry key this instance was created under (e.g. ``"ic"``, ``"grid"``)
    name: str = ""

    #: when ``True`` the backend's insert/delete maintain the engine-level
    #: state (object list, store, R-tree) themselves; otherwise the engine
    #: performs that bookkeeping before delegating to the backend.
    handles_engine_state: bool = False

    def __init__(self) -> None:
        self._engine: Optional["QueryEngine"] = None

    def bind(self, engine: "QueryEngine") -> None:
        """Attach the backend to its owning engine (called once by the engine)."""
        self._engine = engine

    @property
    def engine(self) -> "QueryEngine":
        """The owning engine; raises if the backend was never bound."""
        if self._engine is None:
            raise RuntimeError(f"backend {self.name!r} is not bound to an engine")
        return self._engine

    # ------------------------------------------------------------------ #
    # candidate retrieval
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def candidates(
        self, query: Point, cache: Optional[BatchReadCache] = None
    ) -> List[Tuple[int, Circle]]:
        """Candidate ``(oid, MBC)`` pairs for a PNN query at ``query``."""

    @abc.abstractmethod
    def range_candidates(self, rect: Rect) -> List[Tuple[int, Circle]]:
        """``(oid, MBC)`` pairs of objects that may own space inside ``rect``."""

    # ------------------------------------------------------------------ #
    # live updates
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def insert(self, obj: UncertainObject) -> Any:
        """Add one object (called by :meth:`QueryEngine.insert`).  Unless
        ``handles_engine_state`` is set, the engine has already registered the
        object in the shared object store / R-tree."""

    @abc.abstractmethod
    def delete(self, oid: int) -> Any:
        """Remove one object (called by :meth:`QueryEngine.delete`)."""

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def statistics(self) -> Dict[str, float]:
        """Structural statistics of the underlying index."""

    def io_stats(self) -> IOStats:
        """Snapshot of the I/O counters of the disk under the backend."""
        return self.engine.disk.stats.snapshot()

    # ------------------------------------------------------------------ #
    # persistence (diagram snapshots)
    # ------------------------------------------------------------------ #
    def snapshot_state(self) -> Dict[str, Any]:
        """JSON-ready state needed to rebuild the backend over saved pages.

        Backends that support snapshots override this (all built-ins do) and
        register a restorer with :func:`register_backend`; the default makes
        snapshotting an opt-in capability for third-party backends.
        """
        raise UnsupportedQueryError(
            f"backend {self.name!r} does not support snapshots; implement "
            "snapshot_state() and register a restorer to enable save()/open()"
        )

    # ------------------------------------------------------------------ #
    # pattern queries (generic fallback)
    # ------------------------------------------------------------------ #
    def partitions_in(self, region: Rect) -> PartitionQueryResult:
        """UV-partition retrieval; backends without native partitions report
        the query region as a single partition with its candidate density."""
        start = time.perf_counter()
        before = self.engine.disk.stats.snapshot()
        oids = {oid for oid, _ in self.range_candidates(region)}
        area = region.area()
        info = PartitionInfo(
            region=region,
            object_count=len(oids),
            density=len(oids) / area if area > 0 else 0.0,
        )
        return PartitionQueryResult(
            partitions=[info],
            io=self.engine.disk.stats.delta(before),
            seconds=time.perf_counter() - start,
        )


# ---------------------------------------------------------------------- #
# registry
# ---------------------------------------------------------------------- #
#: called as ``factory(objects, domain, config, disk, rtree, scheduler)``;
#: ``scheduler`` is a :class:`repro.parallel.ConstructionScheduler` (or
#: ``None``) that backends with a parallelisable construction phase should
#: forward to their builders -- backends whose construction is trivially
#: cheap may ignore it.  The parameter list stays ``...`` because legacy
#: five-arg factories remain callable (see :func:`_scheduler_call_style`).
BackendFactory = Callable[..., IndexBackend]

#: called as ``restorer(state, objects, domain, config, disk, rtree, stats)``
#: with the :meth:`IndexBackend.snapshot_state` payload; must return an
#: unbound backend wired to the already-persisted pages.
BackendRestorer = Callable[..., IndexBackend]

_REGISTRY: Dict[str, BackendFactory] = {}
_RESTORERS: Dict[str, BackendRestorer] = {}


def register_backend(
    name: str,
    factory: BackendFactory,
    restorer: Optional[BackendRestorer] = None,
) -> None:
    """Register (or replace) a backend factory under a string key.

    The factory is called as ``factory(objects, domain, config, disk, rtree,
    scheduler)`` and must return an unbound :class:`IndexBackend`.  ``restorer``, when
    given, enables ``QueryEngine.open()`` for this backend: it receives the
    backend's :meth:`~IndexBackend.snapshot_state` payload and rebuilds the
    backend over the snapshot's pages without reconstruction.
    """
    if not name:
        raise ValueError("backend name must be non-empty")
    _REGISTRY[name.lower()] = factory
    if restorer is not None:
        _RESTORERS[name.lower()] = restorer
    else:
        _RESTORERS.pop(name.lower(), None)


def unregister_backend(name: str) -> None:
    """Remove a backend from the registry (mainly for tests)."""
    _REGISTRY.pop(name.lower(), None)
    _RESTORERS.pop(name.lower(), None)


def available_backends() -> List[str]:
    """Sorted names of all registered backends."""
    return sorted(_REGISTRY)


def create_backend(
    name: str,
    objects: Sequence[UncertainObject],
    domain: Rect,
    config: "DiagramConfig",
    disk: Any,
    rtree: Any,
    scheduler: Any = None,
) -> IndexBackend:
    """Instantiate the backend registered under ``name``.

    ``scheduler`` shards the construction's cell-computation phase (see
    :class:`repro.parallel.ConstructionScheduler`); ``None`` builds serially.
    """
    try:
        factory = _REGISTRY[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown backend: {name!r} (available: {', '.join(available_backends())})"
        ) from None
    style = _scheduler_call_style(factory)
    if style == "keyword":
        backend = factory(objects, domain, config, disk, rtree, scheduler=scheduler)
    elif style == "positional":
        backend = factory(objects, domain, config, disk, rtree, scheduler)
    else:
        # Pre-scheduler factories registered against the original five-arg
        # contract keep working; they simply build serially.
        backend = factory(objects, domain, config, disk, rtree)
    backend.name = name.lower()
    return backend


def _scheduler_call_style(factory: BackendFactory) -> str:
    """How to hand the factory the scheduler: ``keyword`` when it declares a
    parameter named ``scheduler`` (or takes ``**kwargs``), ``positional``
    when it accepts ``*args`` or its signature is opaque (C callables --
    assume the current six-arg contract), else ``none`` (legacy five-arg
    factory; never smuggle the scheduler into an unrelated parameter)."""
    import inspect

    try:
        signature = inspect.signature(factory)
    except (TypeError, ValueError):
        return "positional"
    for parameter in signature.parameters.values():
        if parameter.name == "scheduler" or parameter.kind == (
            inspect.Parameter.VAR_KEYWORD
        ):
            return "keyword"
        if parameter.kind == inspect.Parameter.VAR_POSITIONAL:
            return "positional"
    return "none"


def restore_backend(
    name: str,
    state: Dict[str, Any],
    objects: Sequence[UncertainObject],
    domain: Rect,
    config: "DiagramConfig",
    disk: Any,
    rtree: Any,
    stats: Any,
) -> IndexBackend:
    """Rebuild the backend registered under ``name`` from snapshot state."""
    restorer = _RESTORERS.get(name.lower())
    if restorer is None:
        raise ValueError(
            f"backend {name!r} has no snapshot restorer; register one via "
            "register_backend(name, factory, restorer)"
        )
    backend = restorer(state, objects, domain, config, disk, rtree, stats)
    backend.name = name.lower()
    return backend
