"""Built-in index backends: UV-index (IC / ICR / Basic), R-tree, uniform grid.

Each adapter wraps one of the library's index structures behind the
:class:`~repro.engine.backend.IndexBackend` protocol so that
``QueryEngine.build(..., backend="grid")`` works everywhere ``"ic"`` /
``"icr"`` / ``"basic"`` do.  The adapters do not re-implement candidate
retrieval: they call the same functions the standalone processors
(:class:`UVIndexPNN`, :class:`RTreePNN`, :class:`GridPNN`) use, so answers
are identical whichever entry point a caller picks.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.construction import (
    ConstructionStats,
    build_uv_index_basic,
    build_uv_index_ic,
    build_uv_index_icr,
)
from repro.core.pattern import PartitionInfo, PartitionQueryResult, PatternAnalyzer
from repro.core.pnn import uv_index_candidates
from repro.core.updates import UVDiagramUpdater
from repro.core.uv_index import UVIndex
from repro.engine.backend import (
    BackendFactory,
    BatchReadCache,
    IndexBackend,
    register_backend,
)
from repro.engine.config import DiagramConfig
from repro.geometry.circle import Circle
from repro.geometry.point import Point
from repro.geometry.rectangle import Rect
from repro.grid.uniform_grid import UniformGridIndex, grid_candidates
from repro.rtree.pnn import branch_and_prune_candidates
from repro.rtree.tree import RTree
from repro.storage.disk import DiskManager
from repro.storage.stats import TimingBreakdown
from repro.uncertain.objects import UncertainObject


class UVIndexBackend(IndexBackend):
    """The adaptive UV-index behind the backend protocol.

    Live updates are routed through :class:`UVDiagramUpdater`, which keeps
    the whole engine (object list, store, R-tree, index) consistent -- hence
    ``handles_engine_state`` below.
    """

    handles_engine_state = True

    def __init__(self, index: UVIndex, construction_stats: ConstructionStats) -> None:
        super().__init__()
        self.index = index
        self.construction_stats = construction_stats
        self.pattern = PatternAnalyzer(index)
        self._updater_instance: Optional[UVDiagramUpdater] = None

    # candidate retrieval ------------------------------------------------ #
    def candidates(
        self, query: Point, cache: Optional[BatchReadCache] = None
    ) -> List[Tuple[int, Circle]]:
        return uv_index_candidates(self.index, query, cache=cache)

    def range_candidates(self, rect: Rect) -> List[Tuple[int, Circle]]:
        seen: Dict[int, Circle] = {}
        for leaf in self.index.leaves_in(rect):
            for entry in self.index.read_leaf_entries(leaf):
                seen.setdefault(entry.oid, entry.mbc)
        return list(seen.items())

    # live updates ------------------------------------------------------- #
    def _updater(self) -> UVDiagramUpdater:
        if self._updater_instance is None:
            config = self.engine.config
            self._updater_instance = UVDiagramUpdater(
                self.engine,
                seed_knn=config.seed_knn,
                seed_sectors=config.seed_sectors,
            )
        return self._updater_instance

    def insert(self, obj: UncertainObject) -> List[int]:
        return self._updater().insert(obj)

    def delete(self, oid: int) -> List[int]:
        return self._updater().remove(oid)

    # introspection ------------------------------------------------------ #
    def statistics(self) -> Dict[str, float]:
        return self.index.statistics()

    def partitions_in(self, region: Rect) -> PartitionQueryResult:
        return self.pattern.partitions_in(region)

    # persistence -------------------------------------------------------- #
    def snapshot_state(self) -> Dict:
        return {"index": self.index.snapshot_state()}


class RTreeBackend(IndexBackend):
    """The branch-and-prune R-tree baseline as a backend.

    The candidate source is the engine's shared R-tree (which the engine
    already keeps up to date on insert/delete), so the adapter itself is
    stateless.
    """

    handles_engine_state = False

    def __init__(self, construction_stats: ConstructionStats) -> None:
        super().__init__()
        self.construction_stats = construction_stats

    def candidates(
        self, query: Point, cache: Optional[BatchReadCache] = None
    ) -> List[Tuple[int, Circle]]:
        return branch_and_prune_candidates(self.engine.rtree, query, cache=cache)

    def range_candidates(self, rect: Rect) -> List[Tuple[int, Circle]]:
        by_id = self.engine.by_id
        return [
            (oid, by_id[oid].mbc())
            for oid in sorted(set(self.engine.rtree.range_query(rect)))
            if oid in by_id
        ]

    def insert(self, obj: UncertainObject) -> None:
        pass  # the engine already inserted the object into the shared R-tree

    def delete(self, oid: int) -> None:
        pass  # the engine rebuilds the shared R-tree on delete

    def statistics(self) -> Dict[str, float]:
        tree = self.engine.rtree
        leaf_count = 0
        node_count = 0
        depth = 0
        stack = [(tree.root, 0)]
        while stack:
            node, level = stack.pop()
            node_count += 1
            depth = max(depth, level)
            if node.is_leaf:
                leaf_count += 1
            else:
                stack.extend((entry.child, level + 1) for entry in node.entries)
        return {
            "objects": float(len(self.engine.objects)),
            "fanout": float(tree.fanout),
            "nodes": float(node_count),
            "leaf_nodes": float(leaf_count),
            "max_depth": float(depth),
        }

    # persistence -------------------------------------------------------- #
    def snapshot_state(self) -> Dict:
        # The candidate source is the engine's shared R-tree, which the
        # snapshot already persists; the adapter itself is stateless.
        return {}


class UniformGridBackend(IndexBackend):
    """The fixed-resolution uniform grid as a backend."""

    handles_engine_state = False

    def __init__(self, grid: UniformGridIndex, construction_stats: ConstructionStats) -> None:
        super().__init__()
        self.grid = grid
        self.construction_stats = construction_stats

    def candidates(
        self, query: Point, cache: Optional[BatchReadCache] = None
    ) -> List[Tuple[int, Circle]]:
        return grid_candidates(self.grid, query, cache=cache)

    def range_candidates(self, rect: Rect) -> List[Tuple[int, Circle]]:
        seen: Dict[int, Circle] = {}
        for cell in self._cells_in(rect):
            for oid, mbc in self.grid.read_cell(cell):
                seen.setdefault(oid, mbc)
        return list(seen.items())

    def _cells_in(self, rect: Rect) -> List[Tuple[int, int]]:
        lo = self.grid.cell_of(Point(rect.xmin, rect.ymin))
        hi = self.grid.cell_of(Point(rect.xmax, rect.ymax))
        return [
            (cx, cy)
            for cx in range(lo[0], hi[0] + 1)
            for cy in range(lo[1], hi[1] + 1)
            if self.grid.cell_rect((cx, cy)).intersects(rect)
        ]

    def insert(self, obj: UncertainObject) -> None:
        self.grid.insert(obj)

    def delete(self, oid: int) -> None:
        self.grid.remove(oid)

    def statistics(self) -> Dict[str, float]:
        cells = self.grid._cell_pages
        page_counts = [len(page_ids) for page_ids in cells.values()]
        return {
            "objects": float(self.grid.size),
            "resolution": float(self.grid.resolution),
            "populated_cells": float(len(cells)),
            "total_pages": float(sum(page_counts)),
            "max_pages_per_cell": float(max(page_counts, default=0)),
        }

    def partitions_in(self, region: Rect) -> PartitionQueryResult:
        """Grid cells are natural partitions: one entry per intersecting cell."""
        start = time.perf_counter()
        before = self.engine.disk.stats.snapshot()
        partitions: List[PartitionInfo] = []
        for cell in self._cells_in(region):
            count = len({oid for oid, _ in self.grid.read_cell(cell)})
            cell_rect = self.grid.cell_rect(cell)
            area = cell_rect.area()
            partitions.append(
                PartitionInfo(
                    region=cell_rect,
                    object_count=count,
                    density=count / area if area > 0 else 0.0,
                )
            )
        return PartitionQueryResult(
            partitions=partitions,
            io=self.engine.disk.stats.delta(before),
            seconds=time.perf_counter() - start,
        )

    # persistence -------------------------------------------------------- #
    def snapshot_state(self) -> Dict:
        return {"grid": self.grid.snapshot_state()}


# ---------------------------------------------------------------------- #
# factories
# ---------------------------------------------------------------------- #
def _uv_factory(method: str) -> BackendFactory:
    def factory(
        objects: Sequence[UncertainObject],
        domain: Rect,
        config: DiagramConfig,
        disk: DiskManager,
        rtree: RTree,
        scheduler: Any = None,
    ) -> UVIndexBackend:
        if method == "basic":
            index, stats = build_uv_index_basic(
                objects,
                domain,
                disk=disk,
                max_nonleaf=config.max_nonleaf,
                split_threshold=config.split_threshold,
                page_capacity=config.page_capacity,
                scheduler=scheduler,
            )
        else:
            builder = build_uv_index_ic if method == "ic" else build_uv_index_icr
            index, stats = builder(
                objects,
                domain,
                rtree=rtree,
                disk=disk,
                max_nonleaf=config.max_nonleaf,
                split_threshold=config.split_threshold,
                page_capacity=config.page_capacity,
                seed_knn=config.seed_knn,
                seed_sectors=config.seed_sectors,
                scheduler=scheduler,
            )
        return UVIndexBackend(index, stats)

    return factory


def _rtree_factory(
    objects: Sequence[UncertainObject],
    domain: Rect,
    config: DiagramConfig,
    disk: DiskManager,
    rtree: RTree,
    scheduler: Any = None,
) -> RTreeBackend:
    # The R-tree is bulk-loaded by the engine before backends exist; there is
    # no per-object cell computation for a scheduler to shard.
    stats = ConstructionStats(
        method="rtree",
        objects=len(objects),
        total_seconds=0.0,
        timing=TimingBreakdown(),
    )
    return RTreeBackend(stats)


def _grid_factory(
    objects: Sequence[UncertainObject],
    domain: Rect,
    config: DiagramConfig,
    disk: DiskManager,
    rtree: RTree,
    scheduler: Any = None,
) -> UniformGridBackend:
    start = time.perf_counter()
    grid = UniformGridIndex(domain, resolution=config.grid_resolution, disk=disk)
    grid.build(objects)
    elapsed = time.perf_counter() - start
    timing = TimingBreakdown()
    timing.add("indexing", elapsed)
    stats = ConstructionStats(
        method="grid",
        objects=len(objects),
        total_seconds=elapsed,
        timing=timing,
    )
    return UniformGridBackend(grid, stats)


# ---------------------------------------------------------------------- #
# snapshot restorers
# ---------------------------------------------------------------------- #
def _uv_restorer(
    state: Dict,
    objects: Sequence[UncertainObject],
    domain: Rect,
    config: DiagramConfig,
    disk: DiskManager,
    rtree: RTree,
    stats: ConstructionStats,
) -> UVIndexBackend:
    index = UVIndex.from_snapshot(state["index"], domain, disk)
    return UVIndexBackend(index, stats)


def _rtree_restorer(
    state: Dict,
    objects: Sequence[UncertainObject],
    domain: Rect,
    config: DiagramConfig,
    disk: DiskManager,
    rtree: RTree,
    stats: ConstructionStats,
) -> RTreeBackend:
    return RTreeBackend(stats)


def _grid_restorer(
    state: Dict,
    objects: Sequence[UncertainObject],
    domain: Rect,
    config: DiagramConfig,
    disk: DiskManager,
    rtree: RTree,
    stats: ConstructionStats,
) -> UniformGridBackend:
    grid = UniformGridIndex.from_snapshot(state["grid"], domain, disk)
    return UniformGridBackend(grid, stats)


for _method in ("ic", "icr", "basic"):
    register_backend(_method, _uv_factory(_method), restorer=_uv_restorer)
register_backend("rtree", _rtree_factory, restorer=_rtree_restorer)
register_backend("grid", _grid_factory, restorer=_grid_restorer)
