"""Typed configuration for building a UV-diagram / query engine.

:class:`DiagramConfig` replaces the kwarg explosion that used to spread over
``UVDiagram.build``, the ``build_uv_index_*`` functions, and the CLI: one
frozen, validated record that can round-trip through plain dicts for CLI and
benchmark plumbing.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, Optional


@dataclass(frozen=True)
class DiagramConfig:
    """Every knob of diagram construction and query evaluation in one place.

    Attributes:
        backend: registry key of the index backend -- ``"ic"`` / ``"icr"`` /
            ``"basic"`` (UV-index construction variants), ``"rtree"``
            (branch-and-prune baseline) or ``"grid"`` (uniform grid).
        max_nonleaf: ``M``, the in-memory non-leaf budget of the UV-index.
        split_threshold: ``T_theta`` of the split rule, in ``[0, 1]``.
        page_capacity: leaf-page capacity override (``None`` = what fits in a
            4 KB page).
        seed_knn / seed_sectors: Algorithm 2 seed-selection parameters.
        rtree_fanout: fanout of the R-tree (construction helper and baseline).
        grid_resolution: cells per axis of the uniform-grid backend.
        store: page-store kind backing the disk manager -- ``"memory"`` (the
            historical simulator), ``"file"`` (durable fixed-slot page file)
            or ``"mmap"`` (read-mostly serving of an existing snapshot; only
            valid for :meth:`QueryEngine.open`, not for builds).
        store_path: path of the page file (required for ``"file"``/``"mmap"``).
        buffer_pages: capacity of the integrated LRU buffer pool on the
            counted read path; zero disables caching (the paper's setup).
        workers: worker count for the cell-computation phase of construction.
            ``1`` (the default) builds serially in-process; ``>1`` shards the
            per-object work across a multiprocessing pool.  The resulting
            diagram (structure, answers, probabilities, query-time I/O) is
            bit-identical either way; only *construction-time* accounting
            differs -- workers prune through private uncounted R-trees, so
            build-phase page reads land in ``io_stats()`` only for serial
            builds, and stats timing buckets become per-worker CPU seconds.
        shard_strategy: how the object set is split across workers --
            ``"round_robin"`` (balanced deal-out) or ``"spatial_tile"``
            (domain tiles, spatially compact shards).
        prob_kernel: refinement kernel computing qualification probabilities
            -- ``"vectorized"`` (array-native numerical integration, the
            default) or ``"scalar"`` (the pure-Python reference
            implementation).  Both produce the same probabilities to well
            within ``1e-9`` relative error; the vectorized kernel is
            several times faster per query.
    """

    backend: str = "ic"
    max_nonleaf: int = 4000
    split_threshold: float = 1.0
    page_capacity: Optional[int] = None
    seed_knn: int = 300
    seed_sectors: int = 8
    rtree_fanout: int = 100
    grid_resolution: int = 16
    store: str = "memory"
    store_path: Optional[str] = None
    buffer_pages: int = 0
    workers: int = 1
    shard_strategy: str = "round_robin"
    prob_kernel: str = "vectorized"

    def __post_init__(self) -> None:
        if not isinstance(self.backend, str) or not self.backend:
            raise ValueError("backend must be a non-empty string")
        if self.max_nonleaf < 1:
            raise ValueError("max_nonleaf must be positive")
        if not 0.0 <= self.split_threshold <= 1.0:
            raise ValueError("split_threshold must be within [0, 1]")
        if self.page_capacity is not None and self.page_capacity < 1:
            raise ValueError("page_capacity must be positive when given")
        if self.seed_knn < 1:
            raise ValueError("seed_knn must be positive")
        if self.seed_sectors < 1:
            raise ValueError("seed_sectors must be positive")
        if self.rtree_fanout < 4:
            raise ValueError("rtree_fanout must be at least 4")
        if self.grid_resolution < 1:
            raise ValueError("grid_resolution must be positive")
        if self.store not in ("memory", "file", "mmap"):
            raise ValueError(
                f"unknown store kind: {self.store!r} (known: memory, file, mmap)"
            )
        if self.store in ("file", "mmap") and not self.store_path:
            raise ValueError(f"store={self.store!r} requires a store_path")
        if self.buffer_pages < 0:
            raise ValueError("buffer_pages must be non-negative")
        if self.workers < 1:
            raise ValueError("workers must be positive")
        if self.shard_strategy not in ("round_robin", "spatial_tile"):
            raise ValueError(
                f"unknown shard_strategy: {self.shard_strategy!r} "
                "(known: round_robin, spatial_tile)"
            )
        if self.prob_kernel not in ("vectorized", "scalar"):
            raise ValueError(
                f"unknown prob_kernel: {self.prob_kernel!r} "
                "(known: vectorized, scalar)"
            )

    # ------------------------------------------------------------------ #
    # dict plumbing (CLI, benchmarks, experiment grids)
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict view of the configuration (JSON-friendly)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "DiagramConfig":
        """Build a configuration from a plain dict, rejecting unknown keys."""
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown DiagramConfig keys: {', '.join(unknown)} "
                f"(known: {', '.join(sorted(known))})"
            )
        return cls(**data)

    def replace(self, **changes: Any) -> "DiagramConfig":
        """A copy with the given fields changed.

        Unknown field names are rejected with a :class:`ValueError` naming
        the known fields (instead of ``dataclasses.replace``'s opaque
        ``TypeError``), and the copy goes through ``__init__``, so the full
        ``__post_init__`` validation re-runs on the new instance.
        """
        known = {f.name for f in dataclasses.fields(self)}
        unknown = sorted(set(changes) - known)
        if unknown:
            raise ValueError(
                f"unknown DiagramConfig field(s): {', '.join(unknown)} "
                f"(known: {', '.join(sorted(known))})"
            )
        return dataclasses.replace(self, **changes)
