"""Typed configuration for building a UV-diagram / query engine.

:class:`DiagramConfig` replaces the kwarg explosion that used to spread over
``UVDiagram.build``, the ``build_uv_index_*`` functions, and the CLI: one
frozen, validated record that can round-trip through plain dicts for CLI and
benchmark plumbing.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, Optional


@dataclass(frozen=True)
class DiagramConfig:
    """Every knob of diagram construction and query evaluation in one place.

    Attributes:
        backend: registry key of the index backend -- ``"ic"`` / ``"icr"`` /
            ``"basic"`` (UV-index construction variants), ``"rtree"``
            (branch-and-prune baseline) or ``"grid"`` (uniform grid).
        max_nonleaf: ``M``, the in-memory non-leaf budget of the UV-index.
        split_threshold: ``T_theta`` of the split rule, in ``[0, 1]``.
        page_capacity: leaf-page capacity override (``None`` = what fits in a
            4 KB page).
        seed_knn / seed_sectors: Algorithm 2 seed-selection parameters.
        rtree_fanout: fanout of the R-tree (construction helper and baseline).
        grid_resolution: cells per axis of the uniform-grid backend.
    """

    backend: str = "ic"
    max_nonleaf: int = 4000
    split_threshold: float = 1.0
    page_capacity: Optional[int] = None
    seed_knn: int = 300
    seed_sectors: int = 8
    rtree_fanout: int = 100
    grid_resolution: int = 16

    def __post_init__(self) -> None:
        if not isinstance(self.backend, str) or not self.backend:
            raise ValueError("backend must be a non-empty string")
        if self.max_nonleaf < 1:
            raise ValueError("max_nonleaf must be positive")
        if not 0.0 <= self.split_threshold <= 1.0:
            raise ValueError("split_threshold must be within [0, 1]")
        if self.page_capacity is not None and self.page_capacity < 1:
            raise ValueError("page_capacity must be positive when given")
        if self.seed_knn < 1:
            raise ValueError("seed_knn must be positive")
        if self.seed_sectors < 1:
            raise ValueError("seed_sectors must be positive")
        if self.rtree_fanout < 4:
            raise ValueError("rtree_fanout must be at least 4")
        if self.grid_resolution < 1:
            raise ValueError("grid_resolution must be positive")

    # ------------------------------------------------------------------ #
    # dict plumbing (CLI, benchmarks, experiment grids)
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict view of the configuration (JSON-friendly)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "DiagramConfig":
        """Build a configuration from a plain dict, rejecting unknown keys."""
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown DiagramConfig keys: {', '.join(unknown)} "
                f"(known: {', '.join(sorted(known))})"
            )
        return cls(**data)

    def replace(self, **changes: Any) -> "DiagramConfig":
        """A copy with the given fields changed (validation re-runs)."""
        return dataclasses.replace(self, **changes)
