"""The :class:`QueryEngine`: one query plane over pluggable index backends.

The engine owns the dataset (object list + disk-backed object store), the
shared R-tree, and one :class:`~repro.engine.backend.IndexBackend`; every
query type the paper discusses is a method:

* :meth:`pnn` -- probabilistic nearest neighbour,
* :meth:`knn` -- probabilistic k-NN (Monte-Carlo over possible worlds),
* :meth:`partitions_in` -- UV-partition retrieval with densities,
* :meth:`batch` -- many PNN queries with shared leaf-read caching,
* :meth:`insert` / :meth:`delete` -- live updates after construction.

Typical usage::

    from repro import DiagramConfig, QueryEngine, generate_uniform_objects

    objects, domain = generate_uniform_objects(500, seed=1)
    engine = QueryEngine.build(objects, domain, DiagramConfig(backend="ic"))
    result = engine.pnn(Point(4200.0, 5100.0))
    batch = engine.batch(queries)              # shared leaf reads
    engine.insert(new_object)                  # diagram stays queryable
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core import updates
from repro.core.pattern import PartitionQueryResult, PatternAnalyzer
from repro.engine.backend import (
    BatchReadCache,
    IndexBackend,
    UnsupportedQueryError,
    create_backend,
)
from repro.engine.config import DiagramConfig
from repro.geometry.point import Point
from repro.geometry.rectangle import Rect
from repro.queries.knn import KNNResult, ProbabilisticKNN
from repro.queries.pipeline import evaluate_pnn
from repro.queries.probability_kernel import RingCache
from repro.queries.result import PNNResult
from repro.rtree.pnn import RTreePNN
from repro.rtree.tree import RTree
from repro.storage.disk import DiskManager
from repro.storage.object_store import ObjectStore
from repro.storage.pagestore import create_page_store
from repro.storage.stats import IOStats
from repro.uncertain.objects import UncertainObject


@dataclass
class BatchResult:
    """Result of a :meth:`QueryEngine.batch` call.

    Attributes:
        results: one :class:`PNNResult` per query, in input order -- each
            identical to what a sequential :meth:`QueryEngine.pnn` call would
            have returned.
        io: total I/O of the whole batch (the saving relative to sequential
            evaluation comes from leaf/cell page lists read once).
        seconds: wall-clock time of the batch.
        cache_hits / cache_misses: granule-level hit statistics of the shared
            read cache.
    """

    results: List[PNNResult] = field(default_factory=list)
    io: Optional[IOStats] = None
    seconds: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    @property
    def page_reads(self) -> int:
        """Total page reads of the batch."""
        return self.io.page_reads if self.io is not None else 0


class QueryEngine:
    """A queryable, updatable UV-diagram service over a pluggable backend.

    Use :meth:`build`; the constructor merely wires pre-built components.
    """

    def __init__(
        self,
        objects: Sequence[UncertainObject],
        domain: Rect,
        backend: IndexBackend,
        rtree: RTree,
        object_store: ObjectStore,
        disk: DiskManager,
        config: Optional[DiagramConfig] = None,
        construction_stats=None,
    ):
        self.objects = list(objects)
        self.domain = domain
        self.backend = backend
        self.rtree = rtree
        self.object_store = object_store
        self.disk = disk
        self.config = config if config is not None else DiagramConfig()
        self.construction_stats = construction_stats
        self.by_id: Dict[int, UncertainObject] = {obj.oid: obj for obj in self.objects}
        # Ring profiles are query-independent, so one cache serves every
        # query (single, batch, and the R-tree comparison path) until a live
        # update touches the object.
        self._ring_cache = RingCache()
        self._rtree_pnn = RTreePNN(
            rtree,
            object_store=object_store,
            prob_kernel=self.config.prob_kernel,
            ring_cache=self._ring_cache,
        )
        # True when the in-memory state has diverged from the last saved or
        # opened snapshot (a freshly built engine was never saved at all).
        self._dirty = True
        backend.bind(self)

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def build(
        cls,
        objects: Sequence[UncertainObject],
        domain: Rect,
        config: Optional[DiagramConfig] = None,
        disk: Optional[DiskManager] = None,
        scheduler=None,
        **overrides,
    ) -> "QueryEngine":
        """Build an engine over ``objects`` with the configured backend.

        Args:
            objects: the uncertain objects.
            domain: the domain rectangle that bounds the diagram.
            config: typed configuration; defaults to ``DiagramConfig()``.
            disk: shared disk manager; a fresh one is created when omitted.
            scheduler: a :class:`repro.parallel.ConstructionScheduler` for
                the construction's cell-computation phase.  Omitted, one is
                derived from ``config.workers`` / ``config.shard_strategy``
                (``workers=1`` builds serially with no scheduler overhead).
                Parallel-built diagrams are bit-identical to serial ones.
            **overrides: per-field config overrides, e.g.
                ``QueryEngine.build(objs, dom, backend="grid", workers=4)``.
        """
        config = config if config is not None else DiagramConfig()
        if overrides:
            config = config.replace(**overrides)
        objects = list(objects)
        if not objects:
            raise ValueError("cannot build a query engine over an empty dataset")
        if scheduler is None and config.workers > 1:
            from repro.parallel import ConstructionScheduler

            scheduler = ConstructionScheduler.from_config(config)
        if disk is None:
            store = create_page_store(config.store, config.store_path)
            disk = DiskManager(store=store, buffer_pages=config.buffer_pages)
        store = ObjectStore(disk)
        store.bulk_load(objects)
        rtree = RTree.bulk_load(objects, disk=disk, fanout=config.rtree_fanout)
        backend = create_backend(
            config.backend, objects, domain, config, disk, rtree, scheduler
        )
        return cls(
            objects=objects,
            domain=domain,
            backend=backend,
            rtree=rtree,
            object_store=store,
            disk=disk,
            config=config,
            construction_stats=getattr(backend, "construction_stats", None),
        )

    # ------------------------------------------------------------------ #
    # persistence (diagram snapshots)
    # ------------------------------------------------------------------ #
    def save(self, path: str) -> str:
        """Serialize the engine (config, objects, index, pages) to ``path``.

        The snapshot is a single page file with a JSON metadata tail; a later
        process reopens it with :meth:`open` and answers queries identically
        to this engine -- same answer sets, probabilities, and page-read
        counts -- without rebuilding the diagram.
        """
        from repro.engine.snapshot import save_engine

        result = save_engine(self, path)
        self._dirty = False
        return result

    @classmethod
    def open(
        cls,
        path: str,
        store: str = "file",
        buffer_pages: Optional[int] = None,
        read_latency: float = 0.0,
    ) -> "QueryEngine":
        """Reopen a saved engine without reconstruction (cold-start serving).

        Args:
            path: snapshot written by :meth:`save`.
            store: page-store kind serving the reads -- ``"file"`` (lazy
                reads through the page file), ``"mmap"`` (memory-mapped
                read-mostly view) or ``"memory"`` (eager load).
            buffer_pages: buffer-pool override; defaults to the saved config.
            read_latency: simulated seconds per counted page read.
        """
        from repro.engine.snapshot import open_engine

        return open_engine(
            path, store=store, buffer_pages=buffer_pages, read_latency=read_latency
        )

    @property
    def dirty(self) -> bool:
        """``True`` when in-memory state diverges from the last snapshot.

        A freshly built engine is dirty until its first :meth:`save`; an
        opened engine is clean until the first :meth:`insert` / :meth:`delete`.
        """
        return self._dirty

    # ------------------------------------------------------------------ #
    # point queries
    # ------------------------------------------------------------------ #
    def pnn(self, query: Point, compute_probabilities: bool = True) -> PNNResult:
        """Probabilistic nearest-neighbour query through the active backend."""
        return self._evaluate(query, compute_probabilities, cache=None)

    def pnn_rtree(self, query: Point, compute_probabilities: bool = True) -> PNNResult:
        """The same query through the R-tree baseline (for comparison)."""
        # Kernel selection is a query-time setting: follow the live config so
        # a config.replace(prob_kernel=...) switch affects both query paths.
        self._rtree_pnn.prob_kernel = self.config.prob_kernel
        return self._rtree_pnn.query(query, compute_probabilities=compute_probabilities)

    def answer_objects(self, query: Point) -> List[int]:
        """Just the answer-object ids (no probability computation)."""
        return self.pnn(query, compute_probabilities=False).answer_ids

    def knn(
        self,
        query: Point,
        k: int,
        worlds: int = 2000,
        rng: Optional[np.random.Generator] = None,
    ) -> KNNResult:
        """Probabilistic k-NN query (answers with P(in top-k) estimates)."""
        return ProbabilisticKNN(self.rtree, self.objects).query(
            query, k, worlds=worlds, rng=rng
        )

    def _evaluate(
        self,
        query: Point,
        compute_probabilities: bool,
        cache: Optional[BatchReadCache],
    ) -> PNNResult:
        return evaluate_pnn(
            query,
            lambda q: self.backend.candidates(q, cache=cache),
            self._fetch_objects,
            self.disk.stats,
            compute_probabilities=compute_probabilities,
            prob_kernel=self.config.prob_kernel,
            ring_cache=self._ring_cache,
        )

    def _fetch_objects(self, oids: List[int]) -> List[UncertainObject]:
        return self.object_store.fetch_many(oids)

    # ------------------------------------------------------------------ #
    # batch queries
    # ------------------------------------------------------------------ #
    def batch(
        self, queries: Sequence[Point], compute_probabilities: bool = True
    ) -> BatchResult:
        """Evaluate many PNN queries with a shared read cache.

        Answers are identical to sequential :meth:`pnn` calls; the saving is
        in I/O: a leaf (or cell) page list is read -- and counted -- once for
        the whole batch, so clustered workloads collapse their repeated page
        reads into one pass.
        """
        cache = BatchReadCache()
        start = time.perf_counter()
        before = self.disk.stats.snapshot()
        results = [
            self._evaluate(query, compute_probabilities, cache) for query in queries
        ]
        return BatchResult(
            results=results,
            io=self.disk.stats.delta(before),
            seconds=time.perf_counter() - start,
            cache_hits=cache.hits,
            cache_misses=cache.misses,
        )

    # ------------------------------------------------------------------ #
    # pattern analysis
    # ------------------------------------------------------------------ #
    def partitions_in(self, region: Rect) -> PartitionQueryResult:
        """UV-partition retrieval with densities (Section V-C, query 2)."""
        return self.backend.partitions_in(region)

    def uv_cell_area(self, oid: int) -> float:
        """Approximate area of one object's UV-cell (UV-index backends only)."""
        return self._pattern_analyzer().uv_cell_area(oid)

    def uv_cell_extent(self, oid: int) -> Optional[Rect]:
        """Bounding rectangle of one object's UV-cell approximation."""
        return self._pattern_analyzer().uv_cell_extent(oid)

    def _pattern_analyzer(self) -> PatternAnalyzer:
        pattern = getattr(self.backend, "pattern", None)
        if pattern is None:
            raise UnsupportedQueryError(
                f"backend {self.backend.name!r} does not materialise UV-cells; "
                "use a UV-index backend (ic/icr/basic) for UV-cell queries"
            )
        return pattern

    # ------------------------------------------------------------------ #
    # live updates
    # ------------------------------------------------------------------ #
    def insert(self, obj: UncertainObject):
        """Insert a new object; the diagram stays queryable afterwards.

        Returns whatever the backend reports (the new object's cr-object ids
        for UV-index backends, ``None`` otherwise).
        """
        if obj.oid in self.by_id:
            raise ValueError(f"object id {obj.oid} already exists in the engine")
        self._dirty = True
        self._ring_cache.invalidate(obj.oid)
        if self.backend.handles_engine_state:
            return self.backend.insert(obj)
        self._register_object(obj)
        return self.backend.insert(obj)

    def delete(self, oid: int):
        """Remove an object by id; the diagram stays queryable afterwards.

        Returns whatever the backend reports (the refreshed object ids for
        UV-index backends, ``None`` otherwise).
        """
        if oid not in self.by_id:
            raise KeyError(f"object {oid} is not in the engine")
        self._dirty = True
        self._ring_cache.invalidate(oid)
        if self.backend.handles_engine_state:
            return self.backend.delete(oid)
        result = self.backend.delete(oid)
        self._unregister_object(oid)
        return result

    def _register_object(self, obj: UncertainObject) -> None:
        updates.register_object(self, obj)

    def _unregister_object(self, oid: int) -> None:
        updates.unregister_object(self, oid)

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def index(self):
        """The underlying UV-index, or ``None`` for non-UV backends."""
        return getattr(self.backend, "index", None)

    def object(self, oid: int) -> UncertainObject:
        """Look up an object by id."""
        return self.by_id[oid]

    def statistics(self) -> Dict[str, float]:
        """Structural statistics of the active backend."""
        return self.backend.statistics()

    def io_stats(self) -> IOStats:
        """Snapshot of the shared disk's I/O counters."""
        return self.disk.stats.snapshot()

    def __len__(self) -> int:
        return len(self.objects)
