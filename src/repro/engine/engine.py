"""The :class:`QueryEngine`: one query plane over pluggable index backends.

The engine owns the dataset (object list + disk-backed object store), the
shared R-tree, one :class:`~repro.engine.backend.IndexBackend`, and a
:class:`~repro.engine.planner.QueryPlanner`.  Queries are immutable
descriptors (:mod:`repro.queries.spec`) handed to two entry points:

* :meth:`execute` -- plan and run any descriptor (``PNNQuery`` /
  ``KNNQuery`` / ``RangeQuery`` / ``BatchQuery``),
* :meth:`explain` -- plan, run, and report estimated vs. actual page reads
  plus per-stage timings (EXPLAIN ANALYZE).

plus :meth:`insert` / :meth:`delete` for live updates after construction.
The per-shape methods of earlier releases (:meth:`pnn`, :meth:`pnn_rtree`,
:meth:`knn`, :meth:`batch`, :meth:`partitions_in`) remain as thin
deprecating wrappers that build descriptors and call :meth:`execute`.

Typical usage::

    from repro import DiagramConfig, PNNQuery, QueryEngine, generate_uniform_objects

    objects, domain = generate_uniform_objects(500, seed=1)
    engine = QueryEngine.build(objects, domain, DiagramConfig(backend="ic"))
    result = engine.execute(PNNQuery(Point(4200.0, 5100.0), threshold=0.1))
    print(engine.explain(PNNQuery(Point(4200.0, 5100.0))))
    for query, result, plan in engine.execute(BatchQuery.of(queries)):
        ...                                    # streamed, shared leaf reads
    engine.insert(new_object)                  # diagram stays queryable
"""

from __future__ import annotations

import threading
import time
import warnings
from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    TYPE_CHECKING,
    Union,
)

import numpy as np

from repro.core import updates
from repro.core.pattern import PartitionQueryResult, PatternAnalyzer
from repro.engine.backend import (
    BatchReadCache,
    IndexBackend,
    UnsupportedQueryError,
    create_backend,
)
from repro.engine.config import DiagramConfig
from repro.engine.planner import (
    STRATEGY_RTREE,
    ExplainReport,
    QueryPlan,
    QueryPlanner,
)
from repro.geometry.circle import Circle
from repro.geometry.point import Point
from repro.geometry.rectangle import Rect
from repro.queries.knn import KNNResult, ProbabilisticKNN
from repro.queries.pipeline import evaluate_pnn
from repro.queries.probability_kernel import RingCache
from repro.queries.result import PNNResult
from repro.queries.spec import BatchQuery, KNNQuery, PNNQuery, Query, RangeQuery
from repro.rtree.pnn import RTreePNN, branch_and_prune_candidates
from repro.rtree.tree import RTree
from repro.storage.disk import DiskManager
from repro.storage.object_store import ObjectStore
from repro.storage.pagestore import create_page_store
from repro.storage.stats import IOStats, TimingBreakdown
from repro.uncertain.objects import UncertainObject

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.snapshot import Manifest
    from repro.wal.log import WalRecord, WriteAheadLog


class ReadOnlyEngineError(RuntimeError):
    """A structural mutation was attempted on a read-only opened engine.

    Snapshots opened with ``QueryEngine.open(path, readonly=True)`` -- which
    is how :mod:`repro.serve` workers share one mmap snapshot -- must never
    diverge from the file they serve: an insert/delete would land in the
    store's volatile in-memory overlay and silently fork that worker's
    answers away from its siblings'.  Durable updates instead go through a
    live deployment directory (:meth:`QueryEngine.open_live`), where every
    mutation is logged to the write-ahead log before it is applied.
    """


@dataclass
class BatchResult:
    """Result of a :meth:`QueryEngine.batch` call.

    Attributes:
        results: one :class:`PNNResult` per query, in input order -- each
            identical to what a sequential :meth:`QueryEngine.pnn` call would
            have returned.
        io: total I/O of the whole batch (the saving relative to sequential
            evaluation comes from leaf/cell page lists read once).
        seconds: wall-clock time of the batch.
        cache_hits / cache_misses: granule-level hit statistics of the shared
            read cache.
    """

    results: List[PNNResult] = field(default_factory=list)
    io: Optional[IOStats] = None
    seconds: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self) -> Iterator[PNNResult]:
        return iter(self.results)

    @property
    def page_reads(self) -> int:
        """Total page reads of the batch."""
        return self.io.page_reads if self.io is not None else 0


class BatchStream:
    """Streaming execution of a :class:`~repro.queries.spec.BatchQuery`.

    An iterator of ``(query, result, plan)`` triples in input order.  All
    queries of the batch share one :class:`BatchReadCache` (leaf / cell page
    lists are read and counted once) and the engine's cross-query
    :class:`RingCache`, so consuming the stream incrementally costs the same
    total I/O as the old materialising ``batch()`` call while results become
    available one by one.

    Attributes:
        query: the batch descriptor being streamed.
        cache: the shared read cache (``hits`` / ``misses`` are live while
            the stream is consumed).
        plan: the batch-level plan the stream runs under.
    """

    def __init__(
        self,
        engine: "QueryEngine",
        query: BatchQuery,
        plan: QueryPlan,
        force_strategy: Optional[str] = None,
    ) -> None:
        self.query = query
        self.plan = plan
        self.cache = BatchReadCache()
        self._version = engine.structure_version
        self._iterator = self._generate(engine, force_strategy)

    def _generate(
        self, engine: "QueryEngine", force_strategy: Optional[str]
    ) -> Iterator[Tuple[PNNQuery, PNNResult, QueryPlan]]:
        plans: Dict[Tuple[float, Optional[int], bool], QueryPlan] = {}
        for query in self.query.queries:
            if engine.structure_version != self._version:
                # The shared read cache memoises index granules; a live
                # insert/delete mid-stream would silently serve stale leaf
                # lists (missing or ghost answer objects).  Fail loudly.
                raise RuntimeError(
                    "the engine was structurally modified (insert/delete) "
                    "while a BatchStream was being consumed; re-issue the "
                    "batch against the updated diagram"
                )
            shape = (query.threshold, query.top_k, query.compute_probabilities)
            plan = plans.get(shape)
            if plan is None:
                plan = engine.planner.plan(query, force_strategy=force_strategy)
                plans[shape] = plan
            result = engine._execute_pnn(query, plan, cache=self.cache)
            yield query, result, plan

    def __iter__(self) -> "BatchStream":
        return self

    def __next__(self) -> Tuple[PNNQuery, PNNResult, QueryPlan]:
        return next(self._iterator)

    def __len__(self) -> int:
        return len(self.query)


class QueryEngine:
    """A queryable, updatable UV-diagram service over a pluggable backend.

    Use :meth:`build`; the constructor merely wires pre-built components.
    """

    _GUARDED_BY = {"_wal": "_wal_lock"}

    def __init__(
        self,
        objects: Sequence[UncertainObject],
        domain: Rect,
        backend: IndexBackend,
        rtree: RTree,
        object_store: ObjectStore,
        disk: DiskManager,
        config: Optional[DiagramConfig] = None,
        construction_stats: Any = None,
    ) -> None:
        self.objects = list(objects)
        self.domain = domain
        self.backend = backend
        self.rtree = rtree
        self.object_store = object_store
        self.disk = disk
        self.config = config if config is not None else DiagramConfig()
        self.construction_stats = construction_stats
        self.by_id: Dict[int, UncertainObject] = {obj.oid: obj for obj in self.objects}
        # Ring profiles are query-independent, so one cache serves every
        # query (single, batch, and the R-tree comparison path) until a live
        # update touches the object.
        self._ring_cache = RingCache()
        self._rtree_pnn = RTreePNN(
            rtree,
            object_store=object_store,
            prob_kernel=self.config.prob_kernel,
            ring_cache=self._ring_cache,
        )
        # True when the in-memory state has diverged from the last saved or
        # opened snapshot (a freshly built engine was never saved at all).
        self._dirty = True
        # Set by open(readonly=True): structural mutations raise instead of
        # diverging into the store's volatile overlay.
        self._readonly = False
        # Bumped by every structural change (insert/delete); the planner
        # caches backend statistics against it.
        self._structure_version = 0
        # Durability state (attached by open_live / save_generation): the
        # write-ahead log, the live deployment directory, and the LSN
        # watermarks.  base_lsn is the last LSN folded into the current
        # snapshot generation; last_lsn is the last LSN appended (or
        # replayed).  Mutators hold _wal_lock across the precondition
        # check, the WAL append, AND the overlay apply, so (a) the WAL's
        # LSN order matches the order updates hit the overlay, and
        # (b) checkpoint_capture -- which reads (objects, last_lsn) under
        # the same lock -- can never observe an LSN watermark whose record
        # is not yet folded into the object list.
        self._wal: Optional["WriteAheadLog"] = None
        self._wal_lock = threading.Lock()
        self._generation = 0
        self._live_directory: Optional[str] = None
        self._base_lsn = 0
        self._last_lsn = 0
        # Sharded deployments stamp the shard map into every shard's
        # snapshot header; ``None`` for ordinary single-snapshot engines.
        self.shard_info: Optional[Dict[str, Any]] = None
        self.planner = QueryPlanner(self)
        backend.bind(self)

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def build(
        cls,
        objects: Sequence[UncertainObject],
        domain: Rect,
        config: Optional[DiagramConfig] = None,
        disk: Optional[DiskManager] = None,
        scheduler: Any = None,
        **overrides: Any,
    ) -> "QueryEngine":
        """Build an engine over ``objects`` with the configured backend.

        Args:
            objects: the uncertain objects.
            domain: the domain rectangle that bounds the diagram.
            config: typed configuration; defaults to ``DiagramConfig()``.
            disk: shared disk manager; a fresh one is created when omitted.
            scheduler: a :class:`repro.parallel.ConstructionScheduler` for
                the construction's cell-computation phase.  Omitted, one is
                derived from ``config.workers`` / ``config.shard_strategy``
                (``workers=1`` builds serially with no scheduler overhead).
                Parallel-built diagrams are bit-identical to serial ones.
            **overrides: per-field config overrides, e.g.
                ``QueryEngine.build(objs, dom, backend="grid", workers=4)``.
        """
        config = config if config is not None else DiagramConfig()
        if overrides:
            config = config.replace(**overrides)
        objects = list(objects)
        if not objects:
            raise ValueError("cannot build a query engine over an empty dataset")
        if scheduler is None and config.workers > 1:
            from repro.parallel import ConstructionScheduler

            scheduler = ConstructionScheduler.from_config(config)
        if disk is None:
            store = create_page_store(config.store, config.store_path)
            disk = DiskManager(store=store, buffer_pages=config.buffer_pages)
        store = ObjectStore(disk)
        store.bulk_load(objects)
        rtree = RTree.bulk_load(objects, disk=disk, fanout=config.rtree_fanout)
        backend = create_backend(
            config.backend, objects, domain, config, disk, rtree, scheduler
        )
        return cls(
            objects=objects,
            domain=domain,
            backend=backend,
            rtree=rtree,
            object_store=store,
            disk=disk,
            config=config,
            construction_stats=getattr(backend, "construction_stats", None),
        )

    # ------------------------------------------------------------------ #
    # persistence (diagram snapshots)
    # ------------------------------------------------------------------ #
    def save(self, path: str) -> str:
        """Serialize the engine (config, objects, index, pages) to ``path``.

        The snapshot is a single page file with a JSON metadata tail; a later
        process reopens it with :meth:`open` and answers queries identically
        to this engine -- same answer sets, probabilities, and page-read
        counts -- without rebuilding the diagram.
        """
        from repro.engine.snapshot import save_engine

        result = save_engine(self, path)
        self._dirty = False
        return result

    @classmethod
    def open(
        cls,
        path: str,
        store: str = "file",
        buffer_pages: Optional[int] = None,
        read_latency: float = 0.0,
        readonly: bool = False,
        verify: bool = False,
    ) -> "QueryEngine":
        """Reopen a saved engine without reconstruction (cold-start serving).

        Args:
            path: snapshot written by :meth:`save`.
            store: page-store kind serving the reads -- ``"file"`` (lazy
                reads through the page file), ``"mmap"`` (memory-mapped
                read-mostly view) or ``"memory"`` (eager load).
            buffer_pages: buffer-pool override; defaults to the saved config.
            read_latency: simulated seconds per counted page read.
            readonly: when ``True``, :meth:`insert` / :meth:`delete` raise
                :class:`ReadOnlyEngineError` instead of applying the change
                to the store's volatile in-memory overlay.  This is the
                correctness guard for serving: every process sharing the
                snapshot keeps answering bit-identically.
            verify: checksum the whole snapshot before opening, raising
                :class:`~repro.storage.pagestore.CorruptSnapshotError` on any
                flipped bit instead of risking it surfacing mid-query.
        """
        from repro.engine.snapshot import open_engine

        return open_engine(
            path,
            store=store,
            buffer_pages=buffer_pages,
            read_latency=read_latency,
            readonly=readonly,
            verify=verify,
        )

    @property
    def dirty(self) -> bool:
        """``True`` when in-memory state diverges from the last snapshot.

        A freshly built engine is dirty until its first :meth:`save`; an
        opened engine is clean until the first :meth:`insert` / :meth:`delete`.
        """
        return self._dirty

    @property
    def readonly(self) -> bool:
        """``True`` when the engine rejects structural mutations.

        Only :meth:`open` with ``readonly=True`` produces such an engine;
        queries are unaffected.
        """
        return self._readonly

    def _check_writable(self, operation: str) -> None:
        if self._readonly:
            raise ReadOnlyEngineError(
                f"cannot {operation} on a read-only engine: this snapshot was "
                f"opened with readonly=True (updates would only reach a "
                f"volatile in-memory overlay and silently diverge from the "
                f"snapshot file); reopen with readonly=False, or rebuild and "
                f"save a new snapshot"
            )

    # ------------------------------------------------------------------ #
    # the typed query surface: execute / explain
    # ------------------------------------------------------------------ #
    def execute(
        self,
        query: Query,
        *,
        rng: Optional[np.random.Generator] = None,
    ) -> Union[PNNResult, KNNResult, PartitionQueryResult, BatchStream]:
        """Plan and run a query descriptor.

        The return type follows the descriptor: a :class:`PNNResult` for a
        :class:`~repro.queries.spec.PNNQuery`, a :class:`KNNResult` for a
        :class:`~repro.queries.spec.KNNQuery`, a
        :class:`PartitionQueryResult` for a
        :class:`~repro.queries.spec.RangeQuery`, and a lazily-evaluated
        :class:`BatchStream` of ``(query, result, plan)`` triples for a
        :class:`~repro.queries.spec.BatchQuery`.

        Args:
            query: the descriptor.
            rng: Monte-Carlo generator override, meaningful only for
                ``KNNQuery`` (takes precedence over the descriptor's seed).
        """
        return self._run(query, self.planner.plan(query), rng=rng)

    def explain(
        self,
        query: Query,
        *,
        rng: Optional[np.random.Generator] = None,
    ) -> ExplainReport:
        """Plan, run, and report estimates against what actually happened.

        Like ``EXPLAIN ANALYZE``: the query *is* executed, and the report
        carries the plan, its estimated page reads, the actual counted page
        reads, and the per-stage wall-clock breakdown.  A ``BatchQuery``'s
        stream is materialised into a list of triples so the whole batch is
        measured.
        """
        plan = self.planner.plan(query)
        before = self.disk.stats.snapshot()
        start = time.perf_counter()
        result = self._run(query, plan, rng=rng)
        timings = TimingBreakdown()
        if isinstance(result, BatchStream):
            triples = list(result)
            for _, item, _ in triples:
                if item.timing is not None:
                    timings.merge(item.timing)
            result = triples
        elif isinstance(result, PNNResult):
            if result.timing is not None:
                timings.merge(result.timing)
        elif isinstance(result, PartitionQueryResult):
            timings.add("partitions", result.seconds)
        seconds = time.perf_counter() - start
        if not timings.buckets:
            timings.add("total", seconds)
        return ExplainReport(
            query=query,
            plan=plan,
            result=result,
            io=self.disk.stats.delta(before),
            seconds=seconds,
            timings=timings,
        )

    @property
    def structure_version(self) -> int:
        """Monotonic counter of structural changes (planner cache key)."""
        return self._structure_version

    def _run(
        self,
        query: Query,
        plan: QueryPlan,
        rng: Optional[np.random.Generator] = None,
        force_strategy: Optional[str] = None,
    ) -> Any:
        if isinstance(query, PNNQuery):
            return self._execute_pnn(query, plan, cache=None)
        if isinstance(query, BatchQuery):
            return BatchStream(self, query, plan, force_strategy=force_strategy)
        if isinstance(query, KNNQuery):
            if rng is None and query.seed is not None:
                rng = np.random.default_rng(query.seed)
            return ProbabilisticKNN(self.rtree, self.objects).query(
                query.point, query.k, worlds=query.worlds, rng=rng
            )
        if isinstance(query, RangeQuery):
            return self.backend.partitions_in(query.region)
        raise TypeError(f"unknown query descriptor: {query!r}")

    def _execute_pnn(
        self,
        query: PNNQuery,
        plan: QueryPlan,
        cache: Optional[BatchReadCache],
    ) -> PNNResult:
        if plan.strategy == STRATEGY_RTREE and self.backend.name != "rtree":
            # The planner routed the query to the shared R-tree baseline
            # (cost-based takeover, or the deprecated pnn_rtree wrapper).
            def retrieve(point: Point) -> List[Tuple[int, Circle]]:
                return branch_and_prune_candidates(self.rtree, point, cache=cache)
        else:
            def retrieve(point: Point) -> List[Tuple[int, Circle]]:
                return self.backend.candidates(point, cache=cache)

        return evaluate_pnn(
            query.point,
            retrieve,
            self._fetch_objects,
            self.disk.stats,
            compute_probabilities=query.compute_probabilities,
            prob_kernel=self.config.prob_kernel,
            ring_cache=self._ring_cache,
            threshold=query.threshold,
            top_k=query.top_k,
        )

    def _fetch_objects(self, oids: List[int]) -> List[UncertainObject]:
        return self.object_store.fetch_many(oids)

    def _legacy_pnn(self, query: Point, compute_probabilities: bool) -> PNNResult:
        """The historical pnn() behaviour: primary structure, no filters.

        Shared by the deprecated wrappers and the :class:`UVDiagram` facade
        so they stay behaviour-identical without re-warning through each
        other.
        """
        descriptor = PNNQuery(query, compute_probabilities=compute_probabilities)
        plan = self.planner.plan(descriptor, force_strategy="primary")
        return self._run(descriptor, plan)

    # ------------------------------------------------------------------ #
    # legacy per-shape methods (deprecating wrappers over execute)
    # ------------------------------------------------------------------ #
    def pnn(self, query: Point, compute_probabilities: bool = True) -> PNNResult:
        """Probabilistic nearest-neighbour query through the active backend.

        .. deprecated::
            Use ``execute(PNNQuery(point))``, which also supports threshold
            / top-k filtering and cost-based planning.
        """
        warnings.warn(
            "QueryEngine.pnn() is deprecated; use "
            "engine.execute(PNNQuery(point, ...)) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._legacy_pnn(query, compute_probabilities)

    def pnn_rtree(self, query: Point, compute_probabilities: bool = True) -> PNNResult:
        """The same query through the R-tree baseline (for comparison).

        .. deprecated::
            The planner now owns backend selection; use
            ``execute(PNNQuery(point))`` (cost-based choice) or build a
            second engine with ``DiagramConfig(backend="rtree")`` for a
            fully separate baseline.
        """
        warnings.warn(
            "QueryEngine.pnn_rtree() is deprecated; the planner selects the "
            "candidate source cost-based -- use engine.execute(PNNQuery(point)) "
            "or DiagramConfig(backend='rtree')",
            DeprecationWarning,
            stacklevel=2,
        )
        descriptor = PNNQuery(query, compute_probabilities=compute_probabilities)
        plan = self.planner.plan(descriptor, force_strategy=STRATEGY_RTREE)
        return self._run(descriptor, plan)

    def answer_objects(self, query: Point) -> List[int]:
        """Just the answer-object ids (no probability computation)."""
        return self._legacy_pnn(query, compute_probabilities=False).answer_ids

    def knn(
        self,
        query: Point,
        k: int,
        worlds: int = 2000,
        rng: Optional[np.random.Generator] = None,
    ) -> KNNResult:
        """Probabilistic k-NN query (answers with P(in top-k) estimates).

        .. deprecated::
            Use ``execute(KNNQuery(point, k, worlds, seed))``.
        """
        warnings.warn(
            "QueryEngine.knn() is deprecated; use "
            "engine.execute(KNNQuery(point, k, ...)) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        descriptor = KNNQuery(query, k, worlds=worlds)
        return self._run(descriptor, self.planner.plan(descriptor), rng=rng)

    # ------------------------------------------------------------------ #
    # batch queries (deprecating wrapper over the streaming execution)
    # ------------------------------------------------------------------ #
    def batch(
        self, queries: Sequence[Point], compute_probabilities: bool = True
    ) -> BatchResult:
        """Evaluate many PNN queries with a shared read cache.

        Answers are identical to sequential :meth:`pnn` calls; the saving is
        in I/O: a leaf (or cell) page list is read -- and counted -- once for
        the whole batch, so clustered workloads collapse their repeated page
        reads into one pass.

        .. deprecated::
            Use ``execute(BatchQuery.of(points))``, which streams
            ``(query, result, plan)`` triples instead of materialising
            every result up front.
        """
        warnings.warn(
            "QueryEngine.batch() is deprecated; use "
            "engine.execute(BatchQuery.of(points)) and consume the stream",
            DeprecationWarning,
            stacklevel=2,
        )
        descriptor = BatchQuery.of(
            queries, compute_probabilities=compute_probabilities
        )
        start = time.perf_counter()
        before = self.disk.stats.snapshot()
        stream = self._run(
            descriptor,
            self.planner.plan(descriptor, force_strategy="primary"),
            force_strategy="primary",
        )
        results = [result for _, result, _ in stream]
        return BatchResult(
            results=results,
            io=self.disk.stats.delta(before),
            seconds=time.perf_counter() - start,
            cache_hits=stream.cache.hits,
            cache_misses=stream.cache.misses,
        )

    # ------------------------------------------------------------------ #
    # pattern analysis
    # ------------------------------------------------------------------ #
    def partitions_in(self, region: Rect) -> PartitionQueryResult:
        """UV-partition retrieval with densities (Section V-C, query 2).

        .. deprecated::
            Use ``execute(RangeQuery(region))``.
        """
        warnings.warn(
            "QueryEngine.partitions_in() is deprecated; use "
            "engine.execute(RangeQuery(region)) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        descriptor = RangeQuery(region)
        return self._run(descriptor, self.planner.plan(descriptor))

    def uv_cell_area(self, oid: int) -> float:
        """Approximate area of one object's UV-cell (UV-index backends only)."""
        return self._pattern_analyzer().uv_cell_area(oid)

    def uv_cell_extent(self, oid: int) -> Optional[Rect]:
        """Bounding rectangle of one object's UV-cell approximation."""
        return self._pattern_analyzer().uv_cell_extent(oid)

    def _pattern_analyzer(self) -> PatternAnalyzer:
        pattern = getattr(self.backend, "pattern", None)
        if pattern is None:
            raise UnsupportedQueryError(
                f"backend {self.backend.name!r} does not materialise UV-cells; "
                "use a UV-index backend (ic/icr/basic) for UV-cell queries"
            )
        return pattern

    # ------------------------------------------------------------------ #
    # live updates
    # ------------------------------------------------------------------ #
    def insert(self, obj: UncertainObject) -> Any:
        """Insert a new object; the diagram stays queryable afterwards.

        On a live engine (:meth:`open_live`) the insert is first appended to
        the write-ahead log -- and made durable per the log's fsync policy --
        before it touches any in-memory structure, so a crash after this
        method returns can never lose it.  Returns whatever the backend
        reports (the new object's cr-object ids for UV-index backends,
        ``None`` otherwise).
        """
        self._check_writable("insert")
        with self._wal_lock:
            if obj.oid in self.by_id:
                raise ValueError(
                    f"object id {obj.oid} already exists in the engine"
                )
            if self._wal is not None:
                from repro.wal.log import OP_INSERT, encode_insert

                lsn = self._last_lsn + 1
                self._wal.append(OP_INSERT, encode_insert(obj), lsn=lsn)
                self._last_lsn = lsn
            return self._apply_insert(obj)

    def delete(self, oid: int) -> Any:
        """Remove an object by id; the diagram stays queryable afterwards.

        On a live engine the delete is appended to the write-ahead log
        before the overlay changes (see :meth:`insert`).  Returns whatever
        the backend reports (the refreshed object ids for UV-index backends,
        ``None`` otherwise).
        """
        self._check_writable("delete")
        with self._wal_lock:
            if oid not in self.by_id:
                raise KeyError(f"object {oid} is not in the engine")
            if self._wal is not None:
                from repro.wal.log import OP_DELETE, encode_delete

                lsn = self._last_lsn + 1
                self._wal.append(OP_DELETE, encode_delete(oid), lsn=lsn)
                self._last_lsn = lsn
            return self._apply_delete(oid)

    def _apply_insert(self, obj: UncertainObject) -> Any:
        """Apply an insert to the in-memory overlay (no WAL append)."""
        self._dirty = True
        self._structure_version += 1
        self._ring_cache.invalidate(obj.oid)
        if self.backend.handles_engine_state:
            return self.backend.insert(obj)
        self._register_object(obj)
        return self.backend.insert(obj)

    def _apply_delete(self, oid: int) -> Any:
        """Apply a delete to the in-memory overlay (no WAL append)."""
        self._dirty = True
        self._structure_version += 1
        self._ring_cache.invalidate(oid)
        if self.backend.handles_engine_state:
            return self.backend.delete(oid)
        result = self.backend.delete(oid)
        self._unregister_object(oid)
        return result

    def apply_record(self, record: "WalRecord") -> Any:
        """Apply a recovered WAL record to the overlay without re-logging.

        The recovery path (:func:`repro.wal.recovery.replay`) calls this for
        every record newer than the snapshot's base LSN; a record that does
        not apply cleanly (duplicate insert, missing delete target) raises
        :class:`~repro.wal.log.WalError` -- it indicates a log/snapshot
        mismatch, not a recoverable condition.
        """
        self._check_writable("replay")
        from repro.wal.log import (
            OP_DELETE,
            OP_INSERT,
            WalError,
            decode_delete,
            decode_insert,
        )

        if record.op == OP_INSERT:
            obj = decode_insert(record.payload)
            if obj.oid in self.by_id:
                raise WalError(
                    f"replay lsn {record.lsn}: insert of object {obj.oid} "
                    f"which already exists (log/snapshot mismatch)"
                )
            return self._apply_insert(obj)
        if record.op == OP_DELETE:
            oid = decode_delete(record.payload)
            if oid not in self.by_id:
                raise WalError(
                    f"replay lsn {record.lsn}: delete of object {oid} "
                    f"which does not exist (log/snapshot mismatch)"
                )
            return self._apply_delete(oid)
        raise WalError(f"replay lsn {record.lsn}: unknown op {record.op}")

    def _register_object(self, obj: UncertainObject) -> None:
        updates.register_object(self, obj)

    def _unregister_object(self, oid: int) -> None:
        updates.unregister_object(self, oid)

    # ------------------------------------------------------------------ #
    # durability (live deployments: WAL + snapshot generations)
    # ------------------------------------------------------------------ #
    @classmethod
    def open_live(
        cls,
        directory: str,
        store: str = "file",
        buffer_pages: Optional[int] = None,
        read_latency: float = 0.0,
        fsync: str = "always",
        verify: bool = False,
    ) -> "QueryEngine":
        """Open a live deployment directory (crash recovery + WAL attach).

        Reads the directory's manifest, opens the current snapshot
        generation writable, replays every write-ahead-log record newer
        than the snapshot in LSN order, and attaches the log so subsequent
        :meth:`insert` / :meth:`delete` calls are durable.  A corrupt
        current generation is quarantined and the previous generation
        recorded in the manifest is promoted in its place (see
        :func:`~repro.engine.snapshot.open_live_engine`).

        Args:
            directory: a deployment laid out by :meth:`save_generation` or
                ``repro build --save-dir``.
            store: page-store kind for the snapshot reads (``"file"``,
                ``"mmap"``, ``"memory"``).
            buffer_pages: buffer-pool override; defaults to the saved config.
            read_latency: simulated seconds per counted page read.
            fsync: WAL durability policy -- ``"always"`` (fsync every
                append; an acknowledged update survives kill -9) or
                ``"batch"`` (group commit via :meth:`wal_sync`).
            verify: checksum the snapshot before opening it (any flipped bit
                raises -- or triggers the generation fallback -- at open
                time instead of surfacing mid-query).
        """
        from repro.engine.snapshot import open_live_engine

        return open_live_engine(
            directory,
            store=store,
            buffer_pages=buffer_pages,
            read_latency=read_latency,
            fsync=fsync,
            verify=verify,
        )

    def save_generation(self, directory: str) -> "Manifest":
        """Lay ``directory`` out as a live deployment (generation 1 + WAL).

        The inverse of :meth:`open_live` for a freshly built engine: writes
        this engine's snapshot as generation 1, creates an empty write-ahead
        log, and installs the manifest atomically.  Returns the manifest.
        """
        from repro.engine.snapshot import initialize_generation

        return initialize_generation(self, directory)

    def _attach_wal(self, log: "WriteAheadLog") -> None:
        """Attach an open write-ahead log; mutators append to it from now on."""
        with self._wal_lock:
            self._wal = log

    def close_wal(self) -> None:
        """Detach and close the write-ahead log (final fsync included)."""
        with self._wal_lock:
            if self._wal is not None:
                self._wal.close()
                self._wal = None

    def wal_sync(self) -> int:
        """Force an fsync of the attached log (group commit under "batch").

        Returns the number of records made durable by this call; ``0`` when
        nothing was pending or no log is attached.
        """
        with self._wal_lock:
            if self._wal is None:
                return 0
            return self._wal.sync()

    def checkpoint_capture(self) -> Tuple[List[UncertainObject], int]:
        """Consistent ``(objects, last_lsn)`` cut for the checkpointer.

        Taken under the WAL lock -- the same lock mutators hold across
        their append *and* overlay apply -- so the object list and the LSN
        watermark describe the same moment: a snapshot built from these
        objects has every update up to and including ``last_lsn`` folded
        in, and no in-flight update can be counted in the watermark but
        missing from the list (which would let the post-checkpoint WAL
        truncation drop an acknowledged update).
        """
        with self._wal_lock:
            return list(self.objects), self._last_lsn

    def complete_checkpoint(self, manifest: "Manifest") -> None:
        """Adopt a freshly flipped manifest: truncate the WAL, move the base.

        Called by the checkpointer after it wrote generation N+1 and
        atomically installed the manifest.  Records at or below the new
        ``base_lsn`` are dropped from the log (they are folded into the new
        generation); updates appended while the checkpoint was being built
        survive the truncation.
        """
        with self._wal_lock:
            if self._wal is not None:
                self._wal.truncate_through(manifest.base_lsn)
            self._generation = manifest.generation
            self._base_lsn = manifest.base_lsn
            if self._last_lsn == manifest.base_lsn:
                self._dirty = False

    @property
    def generation(self) -> int:
        """Current snapshot generation (``0`` when not a live deployment)."""
        return self._generation

    @property
    def live_directory(self) -> Optional[str]:
        """The live deployment directory, or ``None`` for plain engines."""
        return self._live_directory

    @property
    def last_lsn(self) -> int:
        """LSN of the last update appended to (or replayed from) the WAL."""
        return self._last_lsn

    @property
    def base_lsn(self) -> int:
        """Last LSN already folded into the current snapshot generation."""
        return self._base_lsn

    @property
    def pending_wal_records(self) -> int:
        """Updates logged but not yet folded into a snapshot generation."""
        return self._last_lsn - self._base_lsn

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def index(self) -> Any:
        """The underlying UV-index, or ``None`` for non-UV backends."""
        return getattr(self.backend, "index", None)

    def object(self, oid: int) -> UncertainObject:
        """Look up an object by id."""
        return self.by_id[oid]

    def statistics(self) -> Dict[str, float]:
        """Structural statistics of the active backend."""
        return self.backend.statistics()

    def io_stats(self) -> IOStats:
        """Snapshot of the shared disk's I/O counters."""
        return self.disk.stats.snapshot()

    def __len__(self) -> int:
        return len(self.objects)
