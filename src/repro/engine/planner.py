"""Cost-based query planning and EXPLAIN.

The planner is the *how* half of the query API: it turns an immutable
descriptor from :mod:`repro.queries.spec` into a :class:`QueryPlan` -- a
concrete choice of candidate-retrieval strategy, probability kernel, and
early-termination parameters, annotated with cost estimates derived from
three inputs:

* **index statistics** of the active backend (leaf page counts, entries per
  leaf, grid cell occupancy ...), cached per structure version so live
  updates invalidate them,
* **buffer-pool state** of the shared disk (capacity and the observed hit
  ratio discount expected page reads),
* the engine's :class:`~repro.engine.config.DiagramConfig` -- which also
  means a ``--load``-ed snapshot plans with its *saved* configuration.

:meth:`QueryEngine.execute` runs the plan; :meth:`QueryEngine.explain` runs
it *and* reports estimated vs. actual page reads plus the per-stage timing
breakdown, the way EXPLAIN ANALYZE does in a relational engine.

Invariants this module relies on (machine-checked by ``repro.lint``):
descriptors and plans are ``frozen=True`` dataclasses mutated only inside
``__post_init__`` (*frozen-spec*), reconfigured through their validated
``.replace()`` (*validated-replace*); anything shipped over the serve wire
has a ``to_dict``/``from_dict`` pair registered with the decoder
(*wire-complete*); and cost estimates are priced exclusively from counted
I/O, so the planner's numbers mean the same thing on every backend and
store (*counted-io*).

The cost model is deliberately simple -- a handful of closed-form estimates
calibrated against the simulated disk -- but it is a real model: for PNN
queries the planner prices the primary backend's point lookup against the
shared R-tree's branch-and-prune traversal and picks the cheaper source
(with hysteresis, so it only abandons the primary structure when the
estimates clearly favour the baseline).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.queries.spec import BatchQuery, KNNQuery, PNNQuery, Query, RangeQuery
from repro.storage.stats import IOStats, TimingBreakdown

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.engine import QueryEngine

#: Strategy names a plan can carry.
STRATEGY_UV_POINT = "uv-point-lookup"
STRATEGY_RTREE = "rtree-branch-and-prune"
STRATEGY_GRID = "grid-ring-expansion"
STRATEGY_KNN = "knn-monte-carlo"
STRATEGY_RANGE_NATIVE = "native-partitions"
STRATEGY_RANGE_SCAN = "range-candidate-scan"
STRATEGY_BATCH = "streaming-shared-cache"
#: Used by :class:`~repro.shard.engine.ShardedQueryEngine` plans: route to
#: the shards whose possible-region bound can affect the answer, merge
#: candidates, refine once.
STRATEGY_SCATTER_GATHER = "shard-scatter-gather"

#: Primary candidate-retrieval strategy of each built-in backend family.
_PRIMARY_STRATEGY = {
    "ic": STRATEGY_UV_POINT,
    "icr": STRATEGY_UV_POINT,
    "basic": STRATEGY_UV_POINT,
    "rtree": STRATEGY_RTREE,
    "grid": STRATEGY_GRID,
}

#: The planner abandons the primary structure only when the R-tree estimate
#: undercuts it by this factor (hysteresis against estimate noise).
_RTREE_TAKEOVER_RATIO = 0.8

#: Cost units charged per candidate for CPU-side verification / refinement,
#: relative to one counted page read.
_CPU_WEIGHT_PER_CANDIDATE = 0.05


@dataclass(frozen=True)
class CostEstimate:
    """One strategy's estimated price for a query."""

    page_reads: float
    candidates: float
    cost: float


@dataclass(frozen=True)
class QueryPlan:
    """The planner's decision for one query descriptor.

    Attributes:
        kind: descriptor family -- ``"pnn"`` / ``"knn"`` / ``"range"`` /
            ``"batch"``.
        backend: registry key of the engine's active backend.
        strategy: chosen candidate-retrieval strategy (one of the
            ``STRATEGY_*`` names above).
        prob_kernel: refinement kernel the run will use (``"none"`` when no
            probabilities are computed).
        threshold / top_k: early-termination parameters pushed into the
            refinement step.
        estimated_page_reads: expected counted page reads of the run.
        estimated_candidates: expected candidates entering verification.
        estimated_cost: abstract cost units (page reads + weighted CPU).
        buffer_pool: human-readable state of the disk's buffer pool.
        notes: why the planner chose what it chose.
    """

    kind: str
    backend: str
    strategy: str
    prob_kernel: str
    threshold: float = 0.0
    top_k: Optional[int] = None
    estimated_page_reads: float = 0.0
    estimated_candidates: float = 0.0
    estimated_cost: float = 0.0
    buffer_pool: str = "off"
    notes: Tuple[str, ...] = ()

    def describe(self) -> str:
        """Multi-line EXPLAIN rendering of the plan."""
        lines = [
            f"plan: {self.kind} via {self.strategy} "
            f"[backend={self.backend}, kernel={self.prob_kernel}]",
            f"  estimated page reads : {self.estimated_page_reads:.1f}",
            f"  estimated candidates : {self.estimated_candidates:.1f}",
            f"  estimated cost       : {self.estimated_cost:.2f}",
            f"  buffer pool          : {self.buffer_pool}",
        ]
        if self.threshold > 0.0 or self.top_k is not None:
            filters = []
            if self.threshold > 0.0:
                filters.append(f"tau={self.threshold:g}")
            if self.top_k is not None:
                filters.append(f"top_k={self.top_k}")
            lines.append(
                f"  refinement filter    : {', '.join(filters)} (early termination)"
            )
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.describe()


@dataclass
class ExplainReport:
    """EXPLAIN ANALYZE output: the plan plus what actually happened.

    Attributes:
        query: the descriptor that was explained.
        plan: the plan the query ran under.
        result: whatever :meth:`QueryEngine.execute` returned (for a
            ``BatchQuery`` the stream is materialised into a list of
            ``(query, result, plan)`` triples so the I/O can be measured).
        io: counted I/O of the run.
        seconds: wall-clock time of the run.
        timings: per-stage wall-clock breakdown (index traversal, object
            retrieval, probability computation ... merged across a batch).
    """

    query: Query
    plan: QueryPlan
    result: object
    io: IOStats
    seconds: float
    timings: TimingBreakdown = field(default_factory=TimingBreakdown)

    @property
    def estimated_page_reads(self) -> float:
        return self.plan.estimated_page_reads

    @property
    def actual_page_reads(self) -> int:
        return self.io.page_reads

    @property
    def estimate_ratio(self) -> float:
        """Estimated over actual page reads (``inf`` when nothing was read)."""
        if self.actual_page_reads <= 0:
            return float("inf")
        return self.estimated_page_reads / self.actual_page_reads

    def describe(self) -> str:
        """Multi-line EXPLAIN ANALYZE rendering."""
        lines = [self.plan.describe()]
        lines.append(
            f"  actual page reads    : {self.actual_page_reads} "
            f"(estimated {self.estimated_page_reads:.1f})"
        )
        lines.append(f"  wall time            : {self.seconds * 1000.0:.2f} ms")
        for name, value in sorted(self.timings.buckets.items()):
            lines.append(f"    {name:<18} : {value * 1000.0:.2f} ms")
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.describe()


class QueryPlanner:
    """Plans query descriptors over one :class:`QueryEngine`.

    The planner holds no query state of its own; it reads the engine's
    backend statistics (cached until a live update bumps the engine's
    structure version), disk / buffer-pool counters, and configuration.
    """

    def __init__(self, engine: "QueryEngine") -> None:
        self._engine = engine
        self._stats_cache: Optional[Dict[str, float]] = None
        self._stats_version: int = -1
        self._answer_cache: Optional[float] = None
        self._answer_version: int = -1

    # ------------------------------------------------------------------ #
    # entry point
    # ------------------------------------------------------------------ #
    def plan(self, query: Query, force_strategy: Optional[str] = None) -> QueryPlan:
        """Turn a descriptor into a plan.

        Args:
            query: a descriptor from :mod:`repro.queries.spec`.
            force_strategy: pin the candidate-retrieval strategy instead of
                letting the cost model choose -- ``"primary"`` (the active
                backend's own structure; what the legacy wrappers use to
                stay behaviour-identical) or an explicit ``STRATEGY_*``
                name such as :data:`STRATEGY_RTREE`.
        """
        if isinstance(query, PNNQuery):
            return self._plan_pnn(query, force_strategy)
        if isinstance(query, KNNQuery):
            return self._plan_knn(query)
        if isinstance(query, RangeQuery):
            return self._plan_range(query)
        if isinstance(query, BatchQuery):
            return self._plan_batch(query, force_strategy)
        raise TypeError(
            f"unknown query descriptor: {query!r} (expected PNNQuery, KNNQuery, "
            "RangeQuery or BatchQuery)"
        )

    # ------------------------------------------------------------------ #
    # statistics plumbing
    # ------------------------------------------------------------------ #
    def backend_statistics(self) -> Dict[str, float]:
        """The backend's structural statistics, cached per structure version."""
        engine = self._engine
        version = engine.structure_version
        if self._stats_cache is None or self._stats_version != version:
            self._stats_cache = engine.backend.statistics()
            self._stats_version = version
        return self._stats_cache

    def _buffer_pool_state(self) -> Tuple[str, float]:
        """Description + expected miss ratio of the disk's buffer pool."""
        disk = self._engine.disk
        if disk.buffer_pool is None:
            return "off", 1.0
        stats = disk.stats
        requests = stats.cache_hits + stats.cache_misses
        if requests == 0:
            # A cold pool serves nothing yet; assume every read misses.
            return f"lru({disk.buffer_pool.capacity} pages), cold", 1.0
        hit_ratio = stats.cache_hit_ratio
        return (
            f"lru({disk.buffer_pool.capacity} pages), "
            f"observed hit ratio {hit_ratio:.0%}",
            max(0.05, 1.0 - hit_ratio),
        )

    def _expected_answers(self) -> float:
        """Expected answer-set size of a PNN query (cached per version).

        The answer objects are those whose region overlaps the d_minmax
        circle.  For ``n`` objects of mean region radius ``r`` over a domain
        of area ``A``, the circle's radius is roughly the mean
        nearest-neighbour centre distance (``0.5 * sqrt(A / n)``) plus a
        region diameter, so the expected count is that circle's area times
        the object density.
        """
        engine = self._engine
        version = engine.structure_version
        if self._answer_cache is None or self._answer_version != version:
            objects = engine.objects
            count = max(1, len(objects))
            area = max(1e-12, engine.domain.area())
            sample = objects[:256]
            mean_radius = sum(obj.mbc().radius for obj in sample) / max(
                1, len(sample)
            )
            nn_distance = 0.5 * math.sqrt(area / count)
            reach = nn_distance + 2.0 * mean_radius
            expected = count * math.pi * reach * reach / area
            self._answer_cache = min(float(count), max(1.0, expected))
            self._answer_version = version
        return self._answer_cache

    def _expected_fetch_pages(self, answers: float) -> float:
        """Expected distinct object-store pages hit when fetching ``answers``.

        Objects are packed ``objects_per_page`` to a page; drawing ``a``
        objects uniformly from ``P`` pages touches ``P * (1 - (1 - 1/P)^a)``
        distinct pages in expectation.
        """
        store = self._engine.object_store
        pages = max(1, store.page_count)
        if answers <= 0:
            return 0.0
        return pages * (1.0 - (1.0 - 1.0 / pages) ** answers)

    # ------------------------------------------------------------------ #
    # per-strategy cost estimates (PNN)
    # ------------------------------------------------------------------ #
    def _estimate_primary(self) -> Tuple[str, CostEstimate]:
        engine = self._engine
        name = engine.backend.name
        strategy = _PRIMARY_STRATEGY.get(name, STRATEGY_UV_POINT)
        stats = self.backend_statistics()
        answers = self._expected_answers()
        if strategy == STRATEGY_UV_POINT:
            # A point query reads exactly one leaf's page list; the leaf
            # entries all enter d_minmax verification.
            index_reads = max(1.0, stats.get("avg_pages_per_leaf", 1.0))
            candidates = max(1.0, stats.get("avg_entries_per_leaf", 1.0))
        elif strategy == STRATEGY_GRID:
            pages_per_cell = stats.get("total_pages", 1.0) / max(
                1.0, stats.get("populated_cells", 1.0)
            )
            cells = max(1.0, stats.get("populated_cells", 1.0))
            # The ring expansion reads the home cell plus (usually) its first
            # ring before the d_minmax bound stops it.
            cells_read = min(cells, 5.0)
            index_reads = cells_read * max(1.0, pages_per_cell)
            # The expansion pre-filters entries by the running bound, so
            # what reaches verification is essentially the answer set.
            candidates = answers
        else:  # the backend IS the R-tree baseline
            return strategy, self._estimate_rtree()
        return strategy, self._finish_pnn_estimate(index_reads, candidates)

    def _estimate_rtree(self) -> CostEstimate:
        engine = self._engine
        tree = engine.rtree
        objects = max(1.0, float(len(engine.objects)))
        leaf_capacity = max(1.0, tree.fanout / 2.0)
        leaf_count = max(1.0, math.ceil(objects / leaf_capacity))
        # Branch-and-prune touches the leaves whose MBR min-distance falls
        # under d_minmax: the home leaf plus a slowly growing neighbourhood.
        leaves_read = min(leaf_count, 1.0 + math.log2(leaf_count + 1.0) / 4.0)
        # The traversal prunes entries against the running bound, so what
        # reaches verification is essentially the answer set.
        return self._finish_pnn_estimate(leaves_read, self._expected_answers())

    def _finish_pnn_estimate(
        self, index_reads: float, candidates: float
    ) -> CostEstimate:
        answers = min(self._expected_answers(), candidates)
        fetch_reads = self._expected_fetch_pages(answers)
        _, miss_ratio = self._buffer_pool_state()
        page_reads = (index_reads + fetch_reads) * miss_ratio
        cost = page_reads + candidates * _CPU_WEIGHT_PER_CANDIDATE
        return CostEstimate(
            page_reads=page_reads, candidates=candidates, cost=cost
        )

    # ------------------------------------------------------------------ #
    # per-kind planning
    # ------------------------------------------------------------------ #
    def _plan_pnn(
        self, query: PNNQuery, force_strategy: Optional[str]
    ) -> QueryPlan:
        engine = self._engine
        backend = engine.backend.name
        primary_strategy, primary = self._estimate_primary()
        notes: List[str] = []

        if force_strategy == "primary":
            strategy, chosen = primary_strategy, primary
            notes.append("strategy pinned to the primary backend structure")
        elif force_strategy is not None:
            if force_strategy == STRATEGY_RTREE:
                strategy, chosen = STRATEGY_RTREE, self._estimate_rtree()
            elif force_strategy == primary_strategy:
                strategy, chosen = primary_strategy, primary
            else:
                raise ValueError(
                    f"backend {backend!r} cannot serve strategy "
                    f"{force_strategy!r} (available: {primary_strategy}, "
                    f"{STRATEGY_RTREE})"
                )
            notes.append(f"strategy pinned to {strategy}")
        elif primary_strategy == STRATEGY_RTREE:
            strategy, chosen = primary_strategy, primary
        else:
            rtree = self._estimate_rtree()
            if rtree.cost < primary.cost * _RTREE_TAKEOVER_RATIO:
                strategy, chosen = STRATEGY_RTREE, rtree
                notes.append(
                    f"r-tree branch-and-prune estimate ({rtree.cost:.2f}) "
                    f"undercuts the primary {primary_strategy} "
                    f"({primary.cost:.2f}) past the "
                    f"{_RTREE_TAKEOVER_RATIO:.0%} takeover bar"
                )
            else:
                strategy, chosen = primary_strategy, primary
                notes.append(
                    f"primary {primary_strategy} estimate ({primary.cost:.2f}) "
                    f"kept over r-tree branch-and-prune ({rtree.cost:.2f})"
                )

        kernel = (
            engine.config.prob_kernel if query.compute_probabilities else "none"
        )
        if query.threshold > 0.0 or query.top_k is not None:
            notes.append(
                "refinement prunes candidates whose probability upper bound "
                "misses the threshold / top-k bar"
            )
        buffer_pool, _ = self._buffer_pool_state()
        return QueryPlan(
            kind="pnn",
            backend=backend,
            strategy=strategy,
            prob_kernel=kernel,
            threshold=query.threshold,
            top_k=query.top_k,
            estimated_page_reads=chosen.page_reads,
            estimated_candidates=chosen.candidates,
            estimated_cost=chosen.cost,
            buffer_pool=buffer_pool,
            notes=tuple(notes),
        )

    def _plan_knn(self, query: KNNQuery) -> QueryPlan:
        engine = self._engine
        objects = max(1.0, float(len(engine.objects)))
        leaf_capacity = max(1.0, engine.rtree.fanout / 2.0)
        leaf_count = max(1.0, math.ceil(objects / leaf_capacity))
        # The bound traversal reads roughly the leaves holding the k nearest
        # objects; the circular range query then re-reads a similar set.
        leaves = min(leaf_count, 2.0 * max(1.0, query.k / leaf_capacity) + 2.0)
        candidates = min(objects, max(float(query.k) * 3.0, leaf_capacity))
        _, miss_ratio = self._buffer_pool_state()
        page_reads = leaves * miss_ratio
        cost = page_reads + query.worlds * candidates * 1e-4
        buffer_pool, _ = self._buffer_pool_state()
        return QueryPlan(
            kind="knn",
            backend=engine.backend.name,
            strategy=STRATEGY_KNN,
            prob_kernel="monte-carlo",
            estimated_page_reads=page_reads,
            estimated_candidates=candidates,
            estimated_cost=cost,
            buffer_pool=buffer_pool,
            notes=(
                f"{query.worlds} sampled worlds over the shared r-tree "
                f"(k={query.k})",
            ),
        )

    def _plan_range(self, query: RangeQuery) -> QueryPlan:
        engine = self._engine
        stats = self.backend_statistics()
        backend = engine.backend.name
        domain_area = max(1e-12, engine.domain.area())
        fraction = min(1.0, query.region.area() / domain_area)
        if backend in ("ic", "icr", "basic"):
            strategy = STRATEGY_RANGE_NATIVE
            leaves = max(1.0, stats.get("leaf_nodes", 1.0) * fraction)
            page_reads = leaves * max(1.0, stats.get("avg_pages_per_leaf", 1.0))
            candidates = leaves * max(1.0, stats.get("avg_entries_per_leaf", 1.0))
        elif backend == "grid":
            strategy = STRATEGY_RANGE_NATIVE
            cells = max(1.0, stats.get("populated_cells", 1.0) * fraction)
            pages_per_cell = stats.get("total_pages", 1.0) / max(
                1.0, stats.get("populated_cells", 1.0)
            )
            page_reads = cells * max(1.0, pages_per_cell)
            candidates = min(
                stats.get("objects", 1.0),
                cells * stats.get("objects", 1.0)
                / max(1.0, stats.get("populated_cells", 1.0)),
            )
        else:
            strategy = STRATEGY_RANGE_SCAN
            leaves = max(1.0, stats.get("leaf_nodes", 1.0) * fraction)
            page_reads = leaves
            candidates = max(1.0, stats.get("objects", 1.0) * fraction)
        _, miss_ratio = self._buffer_pool_state()
        page_reads *= miss_ratio
        buffer_pool, _ = self._buffer_pool_state()
        return QueryPlan(
            kind="range",
            backend=backend,
            strategy=strategy,
            prob_kernel="none",
            estimated_page_reads=page_reads,
            estimated_candidates=candidates,
            estimated_cost=page_reads + candidates * _CPU_WEIGHT_PER_CANDIDATE,
            buffer_pool=buffer_pool,
            notes=(f"region covers {fraction:.1%} of the domain",),
        )

    def _plan_batch(
        self, query: BatchQuery, force_strategy: Optional[str]
    ) -> QueryPlan:
        engine = self._engine
        count = len(query.queries)
        if count == 0:
            buffer_pool, _ = self._buffer_pool_state()
            return QueryPlan(
                kind="batch",
                backend=engine.backend.name,
                strategy=STRATEGY_BATCH,
                prob_kernel=engine.config.prob_kernel,
                buffer_pool=buffer_pool,
                notes=("empty batch",),
            )
        sample = self._plan_pnn(query.queries[0], force_strategy)
        stats = self.backend_statistics()
        # The shared read cache pays each index granule once; with more
        # queries than granules the expected distinct-granule count saturates.
        granules = max(
            1.0,
            stats.get("leaf_nodes", stats.get("populated_cells", float(count))),
        )
        distinct = granules * (1.0 - (1.0 - 1.0 / granules) ** count)
        sharing = distinct / count
        page_reads = sample.estimated_page_reads * count * (
            0.5 + 0.5 * sharing
        )
        return QueryPlan(
            kind="batch",
            backend=sample.backend,
            strategy=STRATEGY_BATCH,
            prob_kernel=sample.prob_kernel,
            threshold=sample.threshold,
            top_k=sample.top_k,
            estimated_page_reads=page_reads,
            estimated_candidates=sample.estimated_candidates * count,
            estimated_cost=sample.estimated_cost * count * (0.5 + 0.5 * sharing),
            buffer_pool=sample.buffer_pool,
            notes=sample.notes
            + (
                f"{count} queries stream through one shared read cache "
                f"(expected {distinct:.1f} distinct index granules)",
            ),
        )
