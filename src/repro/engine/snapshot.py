"""Diagram snapshots: persist a built engine, reopen it without rebuilding.

A snapshot is one file in the :mod:`repro.storage.pagestore` page-file
format: every disk page (UV-index leaf lists, R-tree leaves, grid cells,
object-store pages) lives in a fixed-size slot, and a JSON metadata tail
records everything the page ids alone cannot express -- the build
configuration, the engine's object order, the in-memory non-leaf structures,
and the backend's own state.

:func:`save_engine` writes that file; :func:`open_engine` restores a fully
functional :class:`~repro.engine.engine.QueryEngine` from it, over any of the
three store kinds (eager ``memory``, lazy ``file``, memory-mapped ``mmap``).
Because pages keep their ids and every index keeps its page references, the
reopened engine answers queries with the same answer sets, probabilities,
and counted page reads as the engine that was saved.
"""

from __future__ import annotations

import os
from typing import Any, Dict, Optional, TYPE_CHECKING

from repro.core.construction import ConstructionStats
from repro.engine.backend import restore_backend
from repro.engine.config import DiagramConfig
from repro.storage.codec import rect_from_state, rect_state
from repro.storage.disk import DiskManager
from repro.storage.object_store import ObjectStore
from repro.storage.pagestore import FilePageStore, open_page_store, write_snapshot_file
from repro.storage.stats import TimingBreakdown
from repro.rtree.tree import RTree

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.engine.engine import QueryEngine

SNAPSHOT_FORMAT = 1


def build_meta(engine: "QueryEngine") -> Dict[str, Any]:
    """The JSON metadata blob describing ``engine``'s non-page state."""
    stats = engine.construction_stats
    return {
        "snapshot_format": SNAPSHOT_FORMAT,
        "config": engine.config.to_dict(),
        "backend": engine.backend.name,
        "domain": rect_state(engine.domain),
        "object_order": [obj.oid for obj in engine.objects],
        "object_store": engine.object_store.snapshot_state(),
        "rtree": engine.rtree.snapshot_state(),
        "backend_state": engine.backend.snapshot_state(),
        "construction": {
            "method": getattr(stats, "method", engine.backend.name),
            "objects": getattr(stats, "objects", len(engine.objects)),
            "total_seconds": getattr(stats, "total_seconds", 0.0),
        },
    }


def save_engine(engine: "QueryEngine", path: str) -> str:
    """Serialize the engine's full state (pages + metadata) to ``path``.

    When the engine already lives on a :class:`FilePageStore` at the same
    path, the working set is flushed in place; otherwise the pages are copied
    into a freshly written snapshot file and the engine keeps running on its
    current store.
    """
    path = os.fspath(path)
    meta = build_meta(engine)
    disk = engine.disk
    store = disk.store
    same_path = (
        getattr(store, "path", None) is not None
        and os.path.abspath(store.path) == os.path.abspath(path)
    )
    if isinstance(store, FilePageStore) and store.writable and same_path:
        disk.flush()
        store.write_meta(meta)
        store.flush()
    else:
        # Materialise every page *before* the target file is touched: when a
        # read-only store serves the same path being saved over, the copy
        # must not race the truncation (peek_page also leaves each page in
        # the disk's working set, so serving continues from memory after).
        pages = [disk.peek_page(pid) for pid in store.page_ids()]
        write_snapshot_file(path, pages, meta, next_page_id=disk.next_page_id)
        if same_path:
            # The rewritten file may use a different slot layout than the
            # store's cached geometry; re-point the engine at a fresh handle.
            old = disk.rebind_store(open_page_store(store.kind, path))
            old.close()
    return path


def open_engine(
    path: str,
    store: str = "file",
    buffer_pages: Optional[int] = None,
    read_latency: float = 0.0,
    readonly: bool = False,
) -> "QueryEngine":
    """Restore a :class:`QueryEngine` from a snapshot, without reconstruction.

    Args:
        path: snapshot file written by :func:`save_engine`.
        store: how to serve the pages -- ``"file"`` (lazy reads through the
            page file), ``"mmap"`` (memory-mapped read-mostly view) or
            ``"memory"`` (eagerly load everything, fully in-memory serving).
        buffer_pages: override for the buffer-pool capacity; defaults to the
            value recorded in the snapshot's configuration.
        read_latency: optional simulated seconds per counted page read.
        readonly: reject ``insert`` / ``delete`` on the reopened engine (the
            serving-correctness guard -- see :class:`ReadOnlyEngineError`).
    """
    from repro.engine.engine import QueryEngine  # deferred: import cycle

    path = os.fspath(path)
    page_store = open_page_store(store, path)
    meta = page_store.read_meta()
    if meta is None:
        page_store.close()
        raise ValueError(f"{path} is a page file but holds no diagram snapshot")
    if meta.get("snapshot_format", 0) > SNAPSHOT_FORMAT:
        page_store.close()
        raise ValueError(
            f"snapshot format {meta.get('snapshot_format')} is newer than this library"
        )

    config = DiagramConfig.from_dict(meta["config"]).replace(
        store=store,
        store_path=path,
        buffer_pages=(
            buffer_pages if buffer_pages is not None
            else meta["config"].get("buffer_pages", 0)
        ),
    )
    disk = DiskManager(
        read_latency=read_latency,
        store=page_store,
        buffer_pages=config.buffer_pages,
    )
    domain = rect_from_state(meta["domain"])
    object_store = ObjectStore.from_snapshot(meta["object_store"], disk)
    objects = object_store.load_all(meta["object_order"])
    rtree = RTree.from_snapshot(meta["rtree"], disk)
    construction = meta["construction"]
    stats = ConstructionStats(
        method=construction["method"],
        objects=construction["objects"],
        total_seconds=construction["total_seconds"],
        timing=TimingBreakdown(),
    )
    backend = restore_backend(
        meta["backend"],
        meta["backend_state"],
        objects,
        domain,
        config,
        disk,
        rtree,
        stats,
    )
    engine = QueryEngine(
        objects=objects,
        domain=domain,
        backend=backend,
        rtree=rtree,
        object_store=object_store,
        disk=disk,
        config=config,
        construction_stats=stats,
    )
    engine._dirty = False
    engine._readonly = readonly
    return engine
