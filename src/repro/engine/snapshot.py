"""Diagram snapshots: persist a built engine, reopen it without rebuilding.

A snapshot is one file in the :mod:`repro.storage.pagestore` page-file
format: every disk page (UV-index leaf lists, R-tree leaves, grid cells,
object-store pages) lives in a fixed-size slot, and a JSON metadata tail
records everything the page ids alone cannot express -- the build
configuration, the engine's object order, the in-memory non-leaf structures,
and the backend's own state.

:func:`save_engine` writes that file; :func:`open_engine` restores a fully
functional :class:`~repro.engine.engine.QueryEngine` from it, over any of the
three store kinds (eager ``memory``, lazy ``file``, memory-mapped ``mmap``).
Because pages keep their ids and every index keeps its page references, the
reopened engine answers queries with the same answer sets, probabilities,
and counted page reads as the engine that was saved.

Snapshots are also the unit of *generations* in a live deployment directory
(see :doc:`docs/durability`): ``gen-000001.snap``, ``gen-000002.snap``, ...
are immutable once written, a ``wal.log`` records updates newer than the
live generation, and a small JSON ``MANIFEST`` names the generation that is
current.  The manifest is the single commit point -- it is always written to
a temporary file and atomically renamed over the old one, so readers observe
either the old generation or the new one, never a partial state.
:func:`initialize_generation` lays out such a directory,
:func:`open_live_engine` opens it with WAL replay (the engine-side recovery
path), and :func:`resolve_snapshot` lets read-only consumers (the serving
workers) find the current generation's file.
"""

from __future__ import annotations

import json
import logging
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.core.construction import ConstructionStats
from repro.engine.backend import restore_backend
from repro.engine.config import DiagramConfig
from repro.storage.codec import rect_from_state, rect_state
from repro.storage.disk import DiskManager
from repro.storage.object_store import ObjectStore
from repro.storage.pagestore import (
    CorruptSnapshotError,
    FilePageStore,
    open_page_store,
    write_snapshot_file,
)
from repro.storage.stats import TimingBreakdown
from repro.rtree.tree import RTree

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.engine.engine import QueryEngine

logger = logging.getLogger("repro.engine.snapshot")

SNAPSHOT_FORMAT = 1


def build_meta(engine: "QueryEngine") -> Dict[str, Any]:
    """The JSON metadata blob describing ``engine``'s non-page state."""
    stats = engine.construction_stats
    return {
        "snapshot_format": SNAPSHOT_FORMAT,
        "config": engine.config.to_dict(),
        "backend": engine.backend.name,
        "domain": rect_state(engine.domain),
        "object_order": [obj.oid for obj in engine.objects],
        "object_store": engine.object_store.snapshot_state(),
        "rtree": engine.rtree.snapshot_state(),
        "backend_state": engine.backend.snapshot_state(),
        "construction": {
            "method": getattr(stats, "method", engine.backend.name),
            "objects": getattr(stats, "objects", len(engine.objects)),
            "total_seconds": getattr(stats, "total_seconds", 0.0),
        },
        # Present only for shards of a sharded deployment: the shard id,
        # deployment epoch, and the full shard map (see repro.shard).
        "shard": engine.shard_info,
    }


def save_engine(engine: "QueryEngine", path: str) -> str:
    """Serialize the engine's full state (pages + metadata) to ``path``.

    When the engine already lives on a :class:`FilePageStore` at the same
    path, the working set is flushed in place; otherwise the pages are copied
    into a freshly written snapshot file and the engine keeps running on its
    current store.
    """
    path = os.fspath(path)
    meta = build_meta(engine)
    disk = engine.disk
    store = disk.store
    same_path = (
        getattr(store, "path", None) is not None
        and os.path.abspath(store.path) == os.path.abspath(path)
    )
    if isinstance(store, FilePageStore) and store.writable and same_path:
        disk.flush()
        store.write_meta(meta)
        store.flush()
    else:
        # Materialise every page *before* the target file is touched: when a
        # read-only store serves the same path being saved over, the copy
        # must not race the truncation (peek_page also leaves each page in
        # the disk's working set, so serving continues from memory after).
        pages = [disk.peek_page(pid) for pid in store.page_ids()]
        write_snapshot_file(path, pages, meta, next_page_id=disk.next_page_id)
        if same_path:
            # The rewritten file may use a different slot layout than the
            # store's cached geometry; re-point the engine at a fresh handle.
            old = disk.rebind_store(open_page_store(store.kind, path))
            old.close()
    return path


def open_engine(
    path: str,
    store: str = "file",
    buffer_pages: Optional[int] = None,
    read_latency: float = 0.0,
    readonly: bool = False,
    verify: bool = False,
) -> "QueryEngine":
    """Restore a :class:`QueryEngine` from a snapshot, without reconstruction.

    Args:
        path: snapshot file written by :func:`save_engine`.
        store: how to serve the pages -- ``"file"`` (lazy reads through the
            page file), ``"mmap"`` (memory-mapped read-mostly view) or
            ``"memory"`` (eagerly load everything, fully in-memory serving).
        buffer_pages: override for the buffer-pool capacity; defaults to the
            value recorded in the snapshot's configuration.
        read_latency: optional simulated seconds per counted page read.
        readonly: reject ``insert`` / ``delete`` on the reopened engine (the
            serving-correctness guard -- see :class:`ReadOnlyEngineError`).
        verify: checksum the whole snapshot before opening it, so a corrupt
            file raises :class:`~repro.storage.pagestore.CorruptSnapshotError`
            here instead of surfacing mid-query.
    """
    from repro.engine.engine import QueryEngine  # deferred: import cycle

    path = os.fspath(path)
    page_store = open_page_store(store, path, verify=verify)
    meta = page_store.read_meta()
    if meta is None:
        page_store.close()
        raise ValueError(f"{path} is a page file but holds no diagram snapshot")
    if meta.get("snapshot_format", 0) > SNAPSHOT_FORMAT:
        page_store.close()
        raise ValueError(
            f"snapshot format {meta.get('snapshot_format')} is newer than this library"
        )

    config = DiagramConfig.from_dict(meta["config"]).replace(
        store=store,
        store_path=path,
        buffer_pages=(
            buffer_pages if buffer_pages is not None
            else meta["config"].get("buffer_pages", 0)
        ),
    )
    disk = DiskManager(
        read_latency=read_latency,
        store=page_store,
        buffer_pages=config.buffer_pages,
    )
    domain = rect_from_state(meta["domain"])
    object_store = ObjectStore.from_snapshot(meta["object_store"], disk)
    objects = object_store.load_all(meta["object_order"])
    rtree = RTree.from_snapshot(meta["rtree"], disk)
    construction = meta["construction"]
    stats = ConstructionStats(
        method=construction["method"],
        objects=construction["objects"],
        total_seconds=construction["total_seconds"],
        timing=TimingBreakdown(),
    )
    backend = restore_backend(
        meta["backend"],
        meta["backend_state"],
        objects,
        domain,
        config,
        disk,
        rtree,
        stats,
    )
    engine = QueryEngine(
        objects=objects,
        domain=domain,
        backend=backend,
        rtree=rtree,
        object_store=object_store,
        disk=disk,
        config=config,
        construction_stats=stats,
    )
    engine._dirty = False
    engine._readonly = readonly
    engine.shard_info = meta.get("shard")
    return engine


# ---------------------------------------------------------------------- #
# generations: manifest, live-directory layout, durable open
# ---------------------------------------------------------------------- #
MANIFEST_FORMAT = 1
MANIFEST_NAME = "MANIFEST"
WAL_NAME = "wal.log"


@dataclass(frozen=True)
class Manifest:
    """The live-directory commit record: which generation is current.

    Attributes:
        generation: monotonically increasing generation number (1-based).
        snapshot: filename of the generation's snapshot, relative to the
            directory (``gen-000001.snap`` style).
        base_lsn: last WAL LSN already folded into the snapshot; recovery
            replays only records with a larger LSN.
        previous: the predecessor generation (``generation`` / ``snapshot`` /
            ``base_lsn`` keys), recorded at checkpoint time.  This is the
            degradation path: if the current generation's snapshot turns out
            to be corrupt, :func:`open_live_engine` quarantines it and falls
            back to this one (which is why pruning keeps current *and*
            previous).  Optional -- older manifests simply have none.
    """

    generation: int
    snapshot: str
    base_lsn: int
    manifest_format: int = MANIFEST_FORMAT
    previous: Optional[Dict[str, Any]] = field(default=None, compare=False)

    def to_dict(self) -> Dict[str, Any]:
        state = {
            "manifest_format": self.manifest_format,
            "generation": self.generation,
            "snapshot": self.snapshot,
            "base_lsn": self.base_lsn,
        }
        if self.previous is not None:
            state["previous"] = dict(self.previous)
        return state

    @classmethod
    def from_dict(cls, state: Dict[str, Any]) -> "Manifest":
        previous = state.get("previous")
        return cls(
            generation=int(state["generation"]),
            snapshot=str(state["snapshot"]),
            base_lsn=int(state["base_lsn"]),
            manifest_format=int(state.get("manifest_format", MANIFEST_FORMAT)),
            previous=dict(previous) if isinstance(previous, dict) else None,
        )

    def as_previous(self) -> Dict[str, Any]:
        """This manifest reduced to the ``previous`` entry of its successor."""
        return {
            "generation": self.generation,
            "snapshot": self.snapshot,
            "base_lsn": self.base_lsn,
        }


def generation_filename(generation: int) -> str:
    """Canonical snapshot filename of one generation."""
    if generation < 1:
        raise ValueError(f"generations are 1-based, got {generation}")
    return f"gen-{generation:06d}.snap"


def manifest_path(directory: str) -> str:
    return os.path.join(os.fspath(directory), MANIFEST_NAME)


def wal_path(directory: str) -> str:
    return os.path.join(os.fspath(directory), WAL_NAME)


def is_live_directory(path: str) -> bool:
    """Whether ``path`` is a generation directory (holds a manifest)."""
    return os.path.isdir(path) and os.path.exists(manifest_path(path))


def _fsync_directory(directory: str) -> None:
    """Best-effort fsync of a directory entry (rename durability)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - not all filesystems allow it
        pass
    finally:
        os.close(fd)


def read_manifest(directory: str) -> Manifest:
    """Read and validate a directory's manifest."""
    path = manifest_path(directory)
    try:
        with open(path, encoding="utf-8") as handle:
            state = json.load(handle)
    except FileNotFoundError:
        raise ValueError(
            f"{directory} is not a live deployment directory (no {MANIFEST_NAME}); "
            f"initialise it with QueryEngine.save_generation or "
            f"`repro build --save-dir`"
        ) from None
    except json.JSONDecodeError as exc:
        raise ValueError(f"corrupt manifest {path}: {exc}") from exc
    if not isinstance(state, dict):
        raise ValueError(f"corrupt manifest {path}: not a JSON object")
    if int(state.get("manifest_format", 0)) > MANIFEST_FORMAT:
        raise ValueError(
            f"manifest format {state.get('manifest_format')} is newer than "
            f"this library (supports up to {MANIFEST_FORMAT})"
        )
    return Manifest.from_dict(state)


def write_manifest(directory: str, manifest: Manifest) -> str:
    """Atomically install ``manifest`` as the directory's commit record.

    The JSON is written to a temporary file, fsynced, and renamed over the
    old manifest (``os.replace``), then the directory entry is fsynced
    best-effort -- a reader never observes a partially written manifest.
    """
    path = manifest_path(directory)
    blob = json.dumps(manifest.to_dict(), indent=2, sort_keys=True).encode("utf-8")
    temporary = path + ".tmp"
    with open(temporary, "wb") as handle:
        handle.write(blob + b"\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temporary, path)
    _fsync_directory(os.fspath(directory))
    return path


def resolve_snapshot(path: str) -> Tuple[str, Optional[int]]:
    """``(snapshot file, generation)`` behind a path.

    A live deployment directory resolves through its manifest to the current
    generation's snapshot file; a plain snapshot file resolves to itself
    with no generation.  This is how read-only consumers (serving workers,
    ``--load``) open "whatever is current" without understanding the WAL.
    """
    path = os.fspath(path)
    if is_live_directory(path):
        manifest = read_manifest(path)
        return os.path.join(path, manifest.snapshot), manifest.generation
    return path, None


def list_generations(directory: str) -> Dict[int, str]:
    """Generation number -> snapshot filename, for every ``gen-*.snap`` present."""
    generations: Dict[int, str] = {}
    for name in sorted(os.listdir(directory)):
        if not (name.startswith("gen-") and name.endswith(".snap")):
            continue
        digits = name[len("gen-"):-len(".snap")]
        if digits.isdigit():
            generations[int(digits)] = name
    return generations


def prune_generations(directory: str, keep_from: int) -> Dict[int, str]:
    """Delete generation snapshots older than ``keep_from``.

    The checkpointer keeps the new generation *and* its predecessor (a
    serving fleet may still hold the old one open over mmap -- the unlinked
    file stays readable through those mappings until they close).  Returns
    the pruned ``generation -> filename`` map.
    """
    pruned: Dict[int, str] = {}
    for generation, name in sorted(list_generations(directory).items()):
        if generation < keep_from:
            try:
                os.remove(os.path.join(directory, name))
            except OSError:  # pragma: no cover - already gone / perms
                continue
            pruned[generation] = name
    return pruned


QUARANTINE_SUFFIX = ".quarantined"


def quarantine_snapshot(directory: str, name: str) -> str:
    """Move a corrupt generation snapshot aside (``<name>.quarantined``).

    The file is renamed, not deleted, so an operator can inspect it (see the
    runbook in :doc:`docs/operations`); quarantined files no longer match the
    ``gen-*.snap`` pattern, so :func:`list_generations` and pruning ignore
    them.
    """
    source = os.path.join(os.fspath(directory), name)
    target = source + QUARANTINE_SUFFIX
    os.replace(source, target)
    _fsync_directory(os.fspath(directory))
    return target


def list_quarantined(directory: str) -> List[str]:
    """Filenames of quarantined snapshots in a live directory, sorted."""
    try:
        names = os.listdir(directory)
    except OSError:
        return []
    return sorted(name for name in names if name.endswith(QUARANTINE_SUFFIX))


def _fall_back_generation(directory: str, manifest: Manifest,
                          cause: Exception) -> Manifest:
    """Quarantine a corrupt current generation and promote its predecessor.

    Re-raises ``cause`` when there is nothing to fall back to (no recorded
    predecessor, or its snapshot file is gone).  On success the predecessor
    is installed as the manifest's current generation -- with no ``previous``
    of its own, so a second corruption does not loop -- and any updates that
    were folded into the corrupt generation (LSNs in
    ``(previous.base_lsn, manifest.base_lsn]``, already truncated from the
    WAL) are reported as lost.
    """
    previous = manifest.previous
    if not previous:
        raise cause
    fallback = Manifest(
        generation=int(previous["generation"]),
        snapshot=str(previous["snapshot"]),
        base_lsn=int(previous["base_lsn"]),
    )
    if not os.path.exists(os.path.join(directory, fallback.snapshot)):
        raise cause
    quarantined: Optional[str] = None
    if os.path.exists(os.path.join(directory, manifest.snapshot)):
        quarantined = quarantine_snapshot(directory, manifest.snapshot)
    write_manifest(directory, fallback)
    logger.error(
        "generation %d snapshot is corrupt (%s); quarantined %s and fell back "
        "to generation %d -- updates with LSNs in (%d, %d] were folded into "
        "the corrupt snapshot and are lost unless it can be repaired",
        manifest.generation, cause, quarantined or manifest.snapshot,
        fallback.generation, fallback.base_lsn, manifest.base_lsn,
    )
    return fallback


def initialize_generation(engine: "QueryEngine", directory: str) -> Manifest:
    """Lay ``directory`` out as a live deployment: generation 1 + empty WAL.

    Writes the engine's snapshot as ``gen-000001.snap``, creates an empty
    write-ahead log, and installs the manifest last -- the manifest's
    appearance is what makes the directory a valid deployment, so a crash
    mid-initialisation leaves a directory that simply is not one yet.
    """
    from repro.wal.log import WriteAheadLog

    directory = os.fspath(directory)
    if is_live_directory(directory):
        raise ValueError(
            f"{directory} already holds a live deployment "
            f"(found {MANIFEST_NAME}); checkpoint it instead of re-initialising"
        )
    os.makedirs(directory, exist_ok=True)
    name = generation_filename(1)
    save_engine(engine, os.path.join(directory, name))
    log = WriteAheadLog(wal_path(directory))
    log.close()
    manifest = Manifest(generation=1, snapshot=name, base_lsn=0)
    write_manifest(directory, manifest)
    engine._dirty = False
    return manifest


def open_live_engine(
    directory: str,
    store: str = "file",
    buffer_pages: Optional[int] = None,
    read_latency: float = 0.0,
    fsync: str = "always",
    verify: bool = False,
) -> "QueryEngine":
    """Open a live deployment directory: snapshot + WAL replay + attach.

    The engine-side crash-recovery path: read the manifest, open the current
    generation's snapshot writable, replay every WAL record newer than the
    manifest's ``base_lsn`` in LSN order, then attach the log so subsequent
    :meth:`~repro.engine.engine.QueryEngine.insert` /
    :meth:`~repro.engine.engine.QueryEngine.delete` calls append before they
    apply.  A torn WAL tail (crash mid-append) is truncated -- the torn
    record was never acknowledged, so dropping it loses nothing promised.

    Degradation: if the current generation's snapshot fails to open as
    corrupt (always detected with ``verify=True``; detected lazily on decode
    otherwise), the file is quarantined and the manifest's recorded
    *previous* generation is promoted and opened instead -- a corrupt
    checkpoint degrades to the last good state rather than taking the
    deployment down.  When no predecessor exists, the
    :class:`~repro.storage.pagestore.CorruptSnapshotError` propagates.
    """
    from repro.wal.log import WriteAheadLog
    from repro.wal.recovery import replay

    directory = os.fspath(directory)
    manifest = read_manifest(directory)

    def _open(current: Manifest) -> "QueryEngine":
        return open_engine(
            os.path.join(directory, current.snapshot),
            store=store,
            buffer_pages=buffer_pages,
            read_latency=read_latency,
            readonly=False,
            verify=verify,
        )

    try:
        engine = _open(manifest)
    except (CorruptSnapshotError, FileNotFoundError) as exc:
        manifest = _fall_back_generation(directory, manifest, exc)
        engine = _open(manifest)
    engine._generation = manifest.generation
    engine._live_directory = directory
    engine._base_lsn = manifest.base_lsn
    engine._last_lsn = manifest.base_lsn
    log = WriteAheadLog(wal_path(directory), fsync=fsync)
    # Records at or below base_lsn are already folded into the snapshot (a
    # crash between manifest flip and WAL truncation leaves them behind).
    pending = [r for r in log.records_at_open if r.lsn > manifest.base_lsn]
    replay(engine, pending, after_lsn=manifest.base_lsn)
    if pending:
        engine._last_lsn = pending[-1].lsn
    engine._attach_wal(log)
    engine._dirty = bool(pending)
    return engine
