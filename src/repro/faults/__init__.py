"""Deterministic fault injection and chaos drills.

The package has three layers:

* :mod:`repro.faults.plan` -- frozen, wire-serializable
  :class:`FaultPlan`/:class:`FaultSpec` schedules plus the runtime
  :class:`FaultInjector` that instrumented code consults.
* :mod:`repro.faults.store` -- :class:`FaultyPageStore`, a fault-injecting
  wrapper over any page store (faults land under the buffer pool, where
  real disk faults land).
* :mod:`repro.faults.corrupt` -- seeded after-the-fact byte corruption of
  snapshot and WAL files (bit rot, torn copies).

``python -m repro.faults.drill`` (also ``repro chaos``) runs the seeded
drill matrix asserting the project-wide robustness invariant: every
injected fault is either tolerated with correct answers or surfaces as a
structured error -- never a silently wrong result.
"""

from repro.faults.corrupt import (
    corrupt_wal_record,
    flip_byte,
    tear_file,
    wal_record_offsets,
)
from repro.faults.plan import (
    FAULT_KINDS,
    FAULT_PLAN_ENV,
    FaultInjector,
    FaultPlan,
    FaultPlanError,
    FaultSpec,
    injector_from_env,
)
from repro.faults.store import FaultyPageStore

__all__ = [
    "FAULT_KINDS",
    "FAULT_PLAN_ENV",
    "FaultInjector",
    "FaultPlan",
    "FaultPlanError",
    "FaultSpec",
    "FaultyPageStore",
    "corrupt_wal_record",
    "flip_byte",
    "injector_from_env",
    "tear_file",
    "wal_record_offsets",
]
