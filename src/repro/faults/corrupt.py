"""Deterministic byte-level corruption helpers for drills and tests.

These operate on *files*, after the fact -- the complement of the live
injection hooks: :mod:`repro.faults.store` breaks operations as they
happen, these break artifacts that were written correctly, modelling bit
rot, partial copies, and overwritten regions.  Every helper is seeded and
returns what it did (offset / size), so a failing drill names the exact
damaged byte.
"""

from __future__ import annotations

import os
import random
from typing import List, Optional

from repro.wal.log import HEADER_SIZE as WAL_HEADER_SIZE
from repro.wal.log import RECORD_HEADER_SIZE, scan_wal


def flip_byte(path: str, offset: Optional[int] = None, seed: int = 0,
              mask: int = 0x01) -> int:
    """XOR one byte of ``path`` with ``mask``; return the offset flipped.

    With ``offset=None`` a deterministic random offset is drawn from
    ``seed``.  Flipping the same offset twice restores the original file --
    the property the hypothesis corruption sweep uses to reuse one snapshot
    across hundreds of cases.
    """
    if not 1 <= mask <= 0xFF:
        raise ValueError(f"mask must be a non-zero byte value, got {mask}")
    size = os.path.getsize(path)
    if size == 0:
        raise ValueError(f"{path} is empty; nothing to flip")
    if offset is None:
        offset = random.Random(seed).randrange(size)
    if not 0 <= offset < size:
        raise ValueError(f"offset {offset} outside file of {size} bytes")
    with open(path, "r+b") as handle:
        handle.seek(offset)
        byte = handle.read(1)
        handle.seek(offset)
        handle.write(bytes([byte[0] ^ mask]))
    return offset


def tear_file(path: str, keep_bytes: Optional[int] = None, seed: int = 0) -> int:
    """Truncate ``path`` to ``keep_bytes`` (or a seeded random size); return it.

    Models a crash mid-write / partial copy: the prefix is intact, the tail
    is gone.  The random size is drawn from ``[1, size)`` so the result is
    never empty and never a no-op.
    """
    size = os.path.getsize(path)
    if keep_bytes is None:
        if size < 2:
            raise ValueError(f"{path} is too small to tear ({size} bytes)")
        keep_bytes = random.Random(seed).randrange(1, size)
    if not 0 <= keep_bytes <= size:
        raise ValueError(f"keep_bytes {keep_bytes} outside [0, {size}]")
    with open(path, "r+b") as handle:
        handle.truncate(keep_bytes)
    return keep_bytes


def wal_record_offsets(path: str) -> List[int]:
    """Byte offset of every intact record in a WAL file, in order."""
    scan = scan_wal(path)
    offsets: List[int] = []
    offset = WAL_HEADER_SIZE
    for record in scan.records:
        offsets.append(offset)
        offset += RECORD_HEADER_SIZE + len(record.payload)
    return offsets


def corrupt_wal_record(path: str, record_index: int, seed: int = 0,
                       mask: int = 0x01) -> int:
    """Flip one deterministic byte inside record ``record_index`` (0-based).

    The byte is drawn from the record's full framed extent (header +
    payload), so runs over many seeds cover length fields, checksums, LSNs,
    ops, and payload bytes alike.  Returns the absolute offset flipped.
    """
    scan = scan_wal(path)
    offsets = wal_record_offsets(path)
    if not 0 <= record_index < len(offsets):
        raise IndexError(
            f"record {record_index} out of range ({len(offsets)} intact records)"
        )
    start = offsets[record_index]
    extent = RECORD_HEADER_SIZE + len(scan.records[record_index].payload)
    within = random.Random(seed).randrange(extent)
    return flip_byte(path, offset=start + within, mask=mask)
