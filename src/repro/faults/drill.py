"""The chaos drill matrix: seeded faults against the full stack.

Run as ``python -m repro.faults.drill --seed S --plans smoke`` (also
exposed as ``repro chaos``).  Each drill builds a small real deployment
(snapshot, live directory, or serve fleet), injects one family of faults --
bit rot, torn files, mid-log corruption, injected I/O errors, worker
crashes and hangs -- and asserts the project-wide robustness invariant:

    every fault is either tolerated with *correct* answers or surfaces as
    a structured error (:class:`~repro.storage.pagestore.CorruptSnapshotError`,
    :class:`~repro.wal.log.CorruptRecordError`, :class:`OSError`) --
    never a silently wrong result.

Everything is deterministic in ``--seed``: the datasets, the damaged byte
offsets, the fault schedules.  A failing drill therefore reproduces from
its seed alone, and the CI smoke job pins ``--seed 0``.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import shutil
import sys
import time
import traceback
import urllib.error
import urllib.request
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.faults.corrupt import corrupt_wal_record, flip_byte, tear_file, wal_record_offsets
from repro.faults.plan import FAULT_PLAN_ENV, FaultPlan, FaultSpec
from repro.faults.store import FaultyPageStore

#: Answers are compared as ``(answer_ids, probabilities)`` pairs -- the
#: same bit-identical criterion the persistence parity tests use.
Answers = List[Tuple[Any, Any]]


class DrillFailure(AssertionError):
    """The robustness invariant was violated (or a drill's setup broke)."""


def _expect(condition: bool, message: str) -> None:
    if not condition:
        raise DrillFailure(message)


@dataclass
class DrillContext:
    """Per-drill inputs: the run seed and a fresh scratch directory."""

    seed: int
    workdir: str

    def rng(self, salt: int = 0) -> random.Random:
        return random.Random(self.seed * 1_000_003 + salt)


@dataclass
class DrillResult:
    name: str
    ok: bool
    seconds: float
    detail: str = ""
    error: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "ok": self.ok,
                "seconds": round(self.seconds, 3),
                "detail": self.detail, "error": self.error}


DRILLS: Dict[str, Callable[[DrillContext], str]] = {}


def drill(name: str) -> Callable:
    def register(fn: Callable[[DrillContext], str]) -> Callable[[DrillContext], str]:
        DRILLS[name] = fn
        return fn
    return register


# --------------------------------------------------------------------- #
# shared scaffolding
# --------------------------------------------------------------------- #
def _build_engine(seed: int, count: int = 48, buffer_pages: int = 0):
    """A small deterministic engine: enough pages to damage, fast to build."""
    from repro import DiagramConfig, QueryEngine, generate_uniform_objects

    objects, domain = generate_uniform_objects(count, seed=seed, diameter=300.0)
    config = DiagramConfig(backend="ic", page_capacity=16, seed_knn=40,
                           rtree_fanout=16, buffer_pages=buffer_pages)
    return QueryEngine.build(objects, domain, config), domain


def _queries(domain, seed: int, count: int = 5):
    from repro import generate_query_points

    return generate_query_points(count, domain, seed=17 + seed)


def _pnn_answers(engine, queries) -> Answers:
    from repro.queries.spec import PNNQuery

    answers: Answers = []
    for query in queries:
        result = engine.execute(PNNQuery(query))
        answers.append((result.answer_ids, result.probabilities))
    return answers


def _apply_inserts(directory: str, seed: int, updates: int) -> List[int]:
    """Open the live deployment, append ``updates`` durable inserts."""
    from repro.engine.engine import QueryEngine
    from repro.wal.drill import synthesize_object

    engine = QueryEngine.open_live(directory)
    rng = random.Random(seed)
    base = max(engine.by_id) + 1000
    inserted = []
    for index in range(updates):
        oid = base + index
        engine.insert(synthesize_object(oid, rng, engine.domain))
        inserted.append(oid)
    engine.close_wal()
    return inserted


def _wal_live_ids(initial: Set[int], wal_file: str) -> Set[int]:
    """The object-id set implied by a WAL's intact records over ``initial``."""
    from repro.wal import OP_DELETE, OP_INSERT, scan_wal
    from repro.wal.log import decode_delete, decode_insert

    ids = set(initial)
    for record in scan_wal(wal_file).records:
        if record.op == OP_INSERT:
            ids.add(decode_insert(record.payload).oid)
        elif record.op == OP_DELETE:
            ids.discard(decode_delete(record.payload))
    return ids


def _post_json(url: str, path: str, body: Dict[str, Any],
               timeout: float = 30.0) -> Tuple[int, Dict[str, Any]]:
    request = urllib.request.Request(
        url + path, data=json.dumps(body).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def _get_json(url: str, path: str, timeout: float = 30.0) -> Tuple[int, Dict[str, Any]]:
    try:
        with urllib.request.urlopen(url + path, timeout=timeout) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


# --------------------------------------------------------------------- #
# snapshot drills
# --------------------------------------------------------------------- #
@drill("snapshot-bit-flip")
def drill_snapshot_bit_flip(ctx: DrillContext) -> str:
    """One flipped byte anywhere in a snapshot must fail verification."""
    from repro.engine.engine import QueryEngine
    from repro.storage.pagestore import CorruptSnapshotError

    engine, domain = _build_engine(ctx.seed)
    queries = _queries(domain, ctx.seed)
    baseline = _pnn_answers(engine, queries)
    path = os.path.join(ctx.workdir, "engine.snap")
    engine.save(path)

    offset = flip_byte(path, seed=ctx.seed)
    try:
        QueryEngine.open(path, verify=True)
    except CorruptSnapshotError:
        pass
    else:
        raise DrillFailure(
            f"snapshot with byte {offset} flipped passed verification"
        )
    # The flip is self-inverse: restoring it must restore correctness too.
    flip_byte(path, offset=offset)
    reopened = QueryEngine.open(path, verify=True)
    _expect(_pnn_answers(reopened, queries) == baseline,
            "restored snapshot no longer serves bit-identical answers")
    return f"flip at byte {offset} detected by verify; restore is bit-identical"


@drill("snapshot-header-flip")
def drill_snapshot_header_flip(ctx: DrillContext) -> str:
    """Damage inside the header/CRC words is caught at open time."""
    from repro.engine.engine import QueryEngine
    from repro.storage.pagestore import CorruptSnapshotError

    from repro.storage.pagestore import PageStoreError

    engine, _ = _build_engine(ctx.seed)
    path = os.path.join(ctx.workdir, "engine.snap")
    engine.save(path)
    offset = ctx.rng(1).randrange(56)  # header struct + both CRC words
    flip_byte(path, offset=offset)
    try:
        QueryEngine.open(path, verify=True)
    except CorruptSnapshotError as exc:
        return f"header byte {offset} flip raised {type(exc).__name__}"
    except PageStoreError as exc:
        # A flip inside the version field can masquerade as a future
        # format; "unsupported version" is an equally structured refusal.
        return f"header byte {offset} flip raised {type(exc).__name__}"
    raise DrillFailure(f"header byte {offset} flip was not detected")


@drill("snapshot-torn-file")
def drill_snapshot_torn_file(ctx: DrillContext) -> str:
    """A truncated snapshot (partial copy) must never open silently."""
    from repro.engine.engine import QueryEngine
    from repro.storage.pagestore import CorruptSnapshotError

    engine, _ = _build_engine(ctx.seed)
    path = os.path.join(ctx.workdir, "engine.snap")
    engine.save(path)
    kept = tear_file(path, seed=ctx.seed)
    try:
        QueryEngine.open(path, verify=True)
    except CorruptSnapshotError:
        return f"snapshot torn to {kept} bytes raised CorruptSnapshotError"
    raise DrillFailure(f"snapshot torn to {kept} bytes opened anyway")


# --------------------------------------------------------------------- #
# WAL drills
# --------------------------------------------------------------------- #
@drill("wal-torn-tail")
def drill_wal_torn_tail(ctx: DrillContext) -> str:
    """A torn tail truncates to the acknowledged prefix -- and only that."""
    from repro.engine.engine import QueryEngine
    from repro.engine.snapshot import wal_path
    from repro.wal import scan_wal
    from repro.wal.log import HEADER_SIZE

    engine, _ = _build_engine(ctx.seed)
    initial = set(engine.by_id)
    directory = os.path.join(ctx.workdir, "live")
    engine.save_generation(directory)
    _apply_inserts(directory, ctx.seed, updates=6)

    wal_file = wal_path(directory)
    size = os.path.getsize(wal_file)
    kept = tear_file(
        wal_file, keep_bytes=ctx.rng(2).randrange(HEADER_SIZE, size)
    )
    scan = scan_wal(wal_file)
    _expect(not scan.is_corrupt,
            "a pure tail tear must scan as torn, not mid-log corruption")
    expected = _wal_live_ids(initial, wal_file)

    reopened = QueryEngine.open_live(directory)
    got = set(reopened.by_id)
    reopened.close_wal()
    _expect(got == expected,
            f"recovered ids {sorted(got)} != intact prefix {sorted(expected)}")
    return (f"tear to {kept}/{size} bytes recovered exactly the "
            f"{len(scan.records)} intact records")


@drill("wal-midlog-flip")
def drill_wal_midlog_flip(ctx: DrillContext) -> str:
    """A flipped byte *before* intact records is corruption, not a tear."""
    from repro.engine.engine import QueryEngine
    from repro.engine.snapshot import wal_path
    from repro.wal import CorruptRecordError, scan_wal

    engine, _ = _build_engine(ctx.seed)
    directory = os.path.join(ctx.workdir, "live")
    engine.save_generation(directory)
    _apply_inserts(directory, ctx.seed, updates=6)

    wal_file = wal_path(directory)
    records = len(wal_record_offsets(wal_file))
    _expect(records >= 3, f"need >= 3 WAL records, built {records}")
    offset = corrupt_wal_record(wal_file, record_index=1, seed=ctx.seed)
    scan = scan_wal(wal_file)
    _expect(scan.is_corrupt,
            f"flip at byte {offset} of record 1 did not scan as mid-log "
            f"corruption (resync_offset={scan.resync_offset})")
    try:
        QueryEngine.open_live(directory)
    except CorruptRecordError:
        return (f"flip at byte {offset} detected; open_live refused to "
                f"truncate {records - 1} acknowledged records")
    raise DrillFailure("open_live replayed over mid-log corruption")


@drill("wal-append-faults")
def drill_wal_append_faults(ctx: DrillContext) -> str:
    """Injected append faults: torn tails recover, silent damage is caught."""
    from repro.wal import OP_DELETE, CorruptRecordError, WriteAheadLog, scan_wal
    from repro.wal.log import encode_delete

    # Torn write on the third append: the two acknowledged records survive.
    torn = os.path.join(ctx.workdir, "torn.wal")
    plan = FaultPlan(seed=ctx.seed,
                     faults=(FaultSpec("wal.append", 3, "torn_write"),))
    log = WriteAheadLog(torn, injector=plan.injector())
    log.append(OP_DELETE, encode_delete(1))
    log.append(OP_DELETE, encode_delete(2))
    try:
        log.append(OP_DELETE, encode_delete(3))
    except OSError:
        pass
    else:
        raise DrillFailure("torn append was acknowledged")
    recovered = WriteAheadLog(torn)  # truncates the torn tail
    recovered.close()
    _expect([r.lsn for r in scan_wal(torn).records] == [1, 2],
            "acknowledged records did not survive the torn append")

    # CRC flip on the second of three appends: acknowledged but damaged on
    # disk -- recovery must refuse, never silently drop or replay it.
    flipped = os.path.join(ctx.workdir, "flipped.wal")
    plan = FaultPlan(seed=ctx.seed,
                     faults=(FaultSpec("wal.append", 2, "crc_flip"),))
    log = WriteAheadLog(flipped, injector=plan.injector())
    for oid in (1, 2, 3):
        log.append(OP_DELETE, encode_delete(oid))
    log.close()
    _expect(scan_wal(flipped).is_corrupt,
            "silent CRC damage was not detected as mid-log corruption")
    try:
        WriteAheadLog(flipped)
    except CorruptRecordError:
        pass
    else:
        raise DrillFailure("log with silent CRC damage reopened cleanly")

    # Injected I/O error: the append fails loudly, earlier records intact.
    failed = os.path.join(ctx.workdir, "failed.wal")
    plan = FaultPlan(seed=ctx.seed,
                     faults=(FaultSpec("wal.append", 2, "io_error"),))
    log = WriteAheadLog(failed, injector=plan.injector())
    log.append(OP_DELETE, encode_delete(1))
    try:
        log.append(OP_DELETE, encode_delete(2))
    except OSError:
        pass
    else:
        raise DrillFailure("injected I/O error was swallowed")
    log.close()
    _expect([r.lsn for r in scan_wal(failed).records] == [1],
            "I/O-error append damaged earlier records")
    return "torn append truncated, CRC flip refused, I/O error surfaced"


# --------------------------------------------------------------------- #
# checkpoint / generation drills
# --------------------------------------------------------------------- #
@drill("checkpoint-fallback")
def drill_checkpoint_fallback(ctx: DrillContext) -> str:
    """A corrupt current generation quarantines and falls back, correctly."""
    from repro.engine.engine import QueryEngine
    from repro.engine.snapshot import list_quarantined, read_manifest, wal_path
    from repro.wal import scan_wal
    from repro.wal.checkpoint import Checkpointer

    engine, domain = _build_engine(ctx.seed)
    queries = _queries(domain, ctx.seed)
    gen1_answers = _pnn_answers(engine, queries)
    directory = os.path.join(ctx.workdir, "live")
    engine.save_generation(directory)

    live = QueryEngine.open_live(directory)
    _apply_inserts_into(live, ctx.seed, updates=5)
    result = Checkpointer(live, interval=3600.0, min_records=1).run_once(force=True)
    live.close_wal()
    _expect(result is not None, "forced checkpoint did not run")
    manifest = read_manifest(directory)
    _expect(manifest.generation == 2, f"expected generation 2, got {manifest}")
    _expect(manifest.previous is not None and manifest.previous["generation"] == 1,
            "checkpoint did not record its predecessor generation")
    _expect(not scan_wal(wal_path(directory)).records,
            "checkpoint left folded records in the log")

    offset = flip_byte(os.path.join(directory, manifest.snapshot), seed=ctx.seed)
    fallen = QueryEngine.open_live(directory, verify=True)
    got = _pnn_answers(fallen, queries)
    fallen.close_wal()
    _expect(read_manifest(directory).generation == 1,
            "manifest was not rolled back to the previous generation")
    _expect(len(list_quarantined(directory)) == 1,
            "the corrupt generation was not quarantined")
    _expect(got == gen1_answers,
            "fallback generation does not serve its own bit-identical answers")
    return (f"gen 2 flip at byte {offset} quarantined; "
            f"fell back to gen 1 with bit-identical answers")


def _apply_inserts_into(engine, seed: int, updates: int) -> None:
    from repro.wal.drill import synthesize_object

    rng = random.Random(seed)
    base = max(engine.by_id) + 1000
    for index in range(updates):
        engine.insert(synthesize_object(base + index, rng, engine.domain))


# --------------------------------------------------------------------- #
# page-store drills
# --------------------------------------------------------------------- #
@drill("store-io-error")
def drill_store_io_error(ctx: DrillContext) -> str:
    """Injected store faults: latency is tolerated, I/O errors surface.

    The faults must land on real store reads, so the drill reopens the
    snapshot fresh for each phase -- a built engine serves everything from
    its in-process page cache and would never touch the store.
    """
    from repro.engine.engine import QueryEngine

    engine, domain = _build_engine(ctx.seed)
    queries = _queries(domain, ctx.seed)
    path = os.path.join(ctx.workdir, "engine.snap")
    engine.save(path)
    baseline = _pnn_answers(QueryEngine.open(path, buffer_pages=0), queries)

    plan = FaultPlan(seed=ctx.seed,
                     faults=(FaultSpec("store.load_page", 1, "latency", 0.005),))
    slow = plan.injector()
    lagged = QueryEngine.open(path, buffer_pages=0)
    lagged.disk.store = FaultyPageStore(lagged.disk.store, slow)
    _expect(_pnn_answers(lagged, queries) == baseline,
            "injected latency changed query answers")
    _expect(("store.load_page", 1, "latency") in slow.fired,
            "the latency fault never fired (queries read no pages)")

    plan = FaultPlan(seed=ctx.seed,
                     faults=(FaultSpec("store.load_page", 1, "io_error"),))
    broken = QueryEngine.open(path, buffer_pages=0)
    inner = broken.disk.store
    broken.disk.store = FaultyPageStore(inner, plan.injector())
    try:
        _pnn_answers(broken, queries)
    except OSError:
        pass
    else:
        raise DrillFailure("injected read error produced an answer anyway")

    broken.disk.store = inner
    _expect(_pnn_answers(broken, queries) == baseline,
            "engine did not recover once the faulty store was removed")
    return "latency tolerated bit-identically; read error surfaced as OSError"


# --------------------------------------------------------------------- #
# serve drills
# --------------------------------------------------------------------- #
def _serve_body(domain, seed: int) -> Dict[str, Any]:
    point = _queries(domain, seed, count=1)[0]
    return {"type": "pnn", "point": [point.x, point.y]}


def _serve_answers(payload: Dict[str, Any]) -> Any:
    """The deterministic part of a ``/query`` response (the wire payload
    also carries wall-clock timings, which legitimately vary per call)."""
    return payload.get("answers")


@drill("serve-corrupt-reload")
def drill_serve_corrupt_reload(ctx: DrillContext) -> str:
    """A fleet offered a corrupt new generation stays healthy on the old one."""
    from repro.engine.snapshot import (
        Manifest,
        generation_filename,
        read_manifest,
        write_manifest,
    )
    from repro.serve import QueryService, ServeConfig

    engine, domain = _build_engine(ctx.seed)
    directory = os.path.join(ctx.workdir, "live")
    engine.save_generation(directory)
    body = _serve_body(domain, ctx.seed)

    config = ServeConfig(snapshot_path=directory, workers=2, port=0,
                         reload_poll=0.1)
    with QueryService(config) as service:
        status, baseline = _post_json(service.url, "/query", body)
        _expect(status == 200, f"baseline query failed with HTTP {status}")

        # Forge a corrupt generation 2 and flip the manifest to it.
        manifest = read_manifest(directory)
        gen2 = generation_filename(2)
        shutil.copyfile(os.path.join(directory, manifest.snapshot),
                        os.path.join(directory, gen2))
        offset = flip_byte(os.path.join(directory, gen2), seed=ctx.seed)
        write_manifest(directory, Manifest(
            generation=2, snapshot=gen2, base_lsn=manifest.base_lsn,
            previous=manifest.as_previous(),
        ))

        time.sleep(1.0)  # several watcher polls; each reload attempt fails
        failures = 0
        for _ in range(10):
            status, payload = _post_json(service.url, "/query", body)
            if status != 200 or _serve_answers(payload) != _serve_answers(baseline):
                failures += 1
        health_status, health = _get_json(service.url, "/health")
        _expect(failures == 0,
                f"{failures}/10 queries degraded after the corrupt reload")
        _expect(health_status == 200, f"health went {health_status}: {health}")
        _expect(service.generation == 1,
                f"supervisor advanced to generation {service.generation} "
                f"past a corrupt snapshot")
    return (f"gen 2 flip at byte {offset} rejected by verify-on-reload; "
            f"10/10 queries stayed 200 and bit-identical on gen 1")


@drill("serve-worker-crash")
def drill_serve_worker_crash(ctx: DrillContext) -> str:
    """A worker hard-crash mid-request is respawned; the request is retried."""
    from repro.serve import QueryService, ServeConfig

    engine, domain = _build_engine(ctx.seed)
    snapshot = os.path.join(ctx.workdir, "engine.snap")
    engine.save(snapshot)
    body = _serve_body(domain, ctx.seed)

    plan = FaultPlan(seed=ctx.seed,
                     faults=(FaultSpec("worker.request", 3, "crash"),))
    os.environ[FAULT_PLAN_ENV] = plan.to_json()
    try:
        config = ServeConfig(snapshot_path=snapshot, workers=1, port=0,
                             respawn_delay=0.05, request_timeout=30.0)
        with QueryService(config) as service:
            answers = [_post_json(service.url, "/query", body) for _ in range(5)]
            stats = service.router.stats()
    finally:
        os.environ.pop(FAULT_PLAN_ENV, None)

    bad = [status for status, _ in answers if status != 200]
    _expect(not bad, f"crash drill produced non-200 responses: {bad}")
    _expect(all(_serve_answers(payload) == _serve_answers(answers[0][1])
                for _, payload in answers),
            "answers diverged across the crash/respawn")
    respawns = stats["counters"]["respawns"]
    _expect(respawns >= 1, "the crashed worker was never respawned")
    return (f"worker crashed at request 3, respawned {respawns}x; "
            f"5/5 queries answered 200 and identically")


@drill("serve-worker-hang")
def drill_serve_worker_hang(ctx: DrillContext) -> str:
    """A hung worker is detected, killed, and its request retried."""
    from repro.serve import QueryService, ServeConfig

    engine, domain = _build_engine(ctx.seed)
    snapshot = os.path.join(ctx.workdir, "engine.snap")
    engine.save(snapshot)
    body = _serve_body(domain, ctx.seed)

    plan = FaultPlan(seed=ctx.seed,
                     faults=(FaultSpec("worker.request", 2, "hang", 30.0),))
    os.environ[FAULT_PLAN_ENV] = plan.to_json()
    try:
        config = ServeConfig(snapshot_path=snapshot, workers=1, port=0,
                             hang_timeout=1.0, respawn_delay=0.05,
                             request_timeout=30.0)
        with QueryService(config) as service:
            status1, first = _post_json(service.url, "/query", body)
            started = time.monotonic()
            status2, second = _post_json(service.url, "/query", body)
            elapsed = time.monotonic() - started
            stats = service.router.stats()
    finally:
        os.environ.pop(FAULT_PLAN_ENV, None)

    _expect(status1 == 200 and status2 == 200,
            f"hang drill answered HTTP {status1}/{status2}")
    _expect(_serve_answers(second) == _serve_answers(first),
            "the retried request returned a different answer")
    _expect(elapsed < 25.0,
            f"request waited out the 30s hang ({elapsed:.1f}s) -- "
            f"hang detection never killed the worker")
    killed = stats["counters"]["hung_workers_killed"]
    _expect(killed >= 1, "no hung worker was killed")
    return (f"hang detected and worker killed after {elapsed:.1f}s; "
            f"retried request answered identically")


#: The CI smoke matrix is the full drill set -- every drill is seeded and
#: bounded, so "smoke" names the budget (one seed), not a subset.
PLAN_SETS: Dict[str, Tuple[str, ...]] = {
    "smoke": tuple(DRILLS),
    "all": tuple(DRILLS),
}


# --------------------------------------------------------------------- #
# runner
# --------------------------------------------------------------------- #
def run_drills(names: List[str], seed: int, root: str,
               out=print) -> List[DrillResult]:
    results: List[DrillResult] = []
    for name in names:
        workdir = os.path.join(root, name.replace("/", "_"))
        os.makedirs(workdir, exist_ok=True)
        started = time.perf_counter()
        try:
            detail = DRILLS[name](DrillContext(seed=seed, workdir=workdir))
            result = DrillResult(name=name, ok=True,
                                 seconds=time.perf_counter() - started,
                                 detail=detail)
        except Exception:  # noqa: BLE001 - one drill failing must not stop the matrix
            result = DrillResult(name=name, ok=False,
                                 seconds=time.perf_counter() - started,
                                 error=traceback.format_exc(limit=8))
        results.append(result)
        mark = "PASS" if result.ok else "FAIL"
        out(f"{mark} {name} ({result.seconds:.1f}s)"
            + (f": {result.detail}" if result.ok else ""))
        if not result.ok:
            out(result.error.rstrip())
    return results


def resolve_plans(spec: str) -> List[str]:
    """``smoke`` / ``all`` / a comma-separated list of drill names."""
    if spec in PLAN_SETS:
        return list(PLAN_SETS[spec])
    names = [name.strip() for name in spec.split(",") if name.strip()]
    unknown = sorted(set(names) - set(DRILLS))
    if not names or unknown:
        known = ", ".join(sorted(DRILLS))
        raise SystemExit(
            f"unknown drill plan(s) {unknown or [spec]}; known sets: "
            f"{', '.join(PLAN_SETS)}; known drills: {known}"
        )
    return names


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro chaos",
        description="seeded chaos drills: every injected fault must be "
                    "tolerated with correct answers or raise a structured "
                    "error -- never a silently wrong result",
    )
    parser.add_argument("--seed", type=int, default=0,
                        help="drill seed (default 0; failures reproduce from it)")
    parser.add_argument("--plans", default="smoke",
                        help="'smoke', 'all', or comma-separated drill names "
                             "(default smoke)")
    parser.add_argument("--report", default="",
                        help="write a JSON report of every drill to this path")
    parser.add_argument("--workdir", default="",
                        help="scratch directory (default: a fresh temp dir)")
    parser.add_argument("--list", action="store_true",
                        help="list the known drills and exit")
    args = parser.parse_args(argv)

    if args.list:
        for name in DRILLS:
            print(name)
        return 0

    names = resolve_plans(args.plans)
    import tempfile

    if args.workdir:
        root = args.workdir
        os.makedirs(root, exist_ok=True)
        cleanup = None
    else:
        temp = tempfile.TemporaryDirectory(prefix="repro-chaos-")
        root, cleanup = temp.name, temp

    try:
        results = run_drills(names, seed=args.seed, root=root)
    finally:
        if cleanup is not None:
            cleanup.cleanup()

    passed = sum(1 for result in results if result.ok)
    print(f"{passed}/{len(results)} drills passed (seed {args.seed})")
    if args.report:
        report = {
            "seed": args.seed,
            "plans": names,
            "ok": passed == len(results),
            "results": [result.to_dict() for result in results],
        }
        with open(args.report, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"report written to {args.report}")
    return 0 if passed == len(results) else 1


if __name__ == "__main__":
    raise SystemExit(main())
