"""Deterministic, wire-serializable fault plans.

A :class:`FaultPlan` is a frozen value: a seed plus a schedule of
:class:`FaultSpec` entries keyed by ``(op, count)`` -- "on the third
``wal.append``, tear the write".  Determinism is the whole point: the same
plan against the same workload injects the same faults at the same moments,
so a chaos drill that fails is *reproducible* from its seed alone.  Plans
serialize to JSON (:meth:`FaultPlan.to_json`), which is how they cross
process boundaries -- the serve drills hand a plan to spawned workers
through the ``REPRO_FAULT_PLAN`` environment variable.

The runtime side is :class:`FaultInjector`: instrumented code calls
``injector.fire("wal.append")`` at each fault point and acts on the returned
spec (or ``None``).  Randomness inside a fault (e.g. where to cut a torn
write) comes from :meth:`FaultInjector.rng`, seeded from the plan seed, the
op name, and the call count via CRC-32 -- never from :func:`hash`, whose
``PYTHONHASHSEED`` randomisation would break cross-process determinism.

Operation keys instrumented so far::

    store.load_page  store.store_page  store.delete_page
    store.flush      store.write_meta  store.read_meta
    wal.append
    worker.request

Fault kinds (not every kind is meaningful at every op; the op's hook
documents what it honours)::

    io_error     raise OSError at the fault point
    latency      sleep ``arg`` seconds, then proceed normally
    bit_flip     corrupt one deterministic byte of the backing file
    torn_write   write a prefix of the bytes, then fail like a crash
    short_write  write only the record header, then fail like a crash
    crc_flip     write the full record with a corrupted checksum (silent
                 on-disk damage -- the detection machinery's test case)
    fsync_fail   perform the write but fail the fsync
    crash        hard-exit the process (serve workers)
    hang         sleep ``arg`` seconds before replying (serve workers)
"""

from __future__ import annotations

import json
import os
import random
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

FAULT_KINDS = (
    "io_error",
    "latency",
    "bit_flip",
    "torn_write",
    "short_write",
    "crc_flip",
    "fsync_fail",
    "crash",
    "hang",
)

#: Environment variable carrying a JSON-encoded plan into spawned processes.
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"


class FaultPlanError(ValueError):
    """A fault plan is malformed (unknown kind, bad count, bad JSON)."""


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault: fire ``kind`` on the ``count``-th call of ``op``.

    Attributes:
        op: operation key of the instrumented fault point.
        count: 1-based occurrence of ``op`` at which the fault fires.
        kind: one of :data:`FAULT_KINDS`.
        arg: kind-specific parameter (sleep seconds for ``latency``/``hang``).
    """

    op: str
    count: int
    kind: str
    arg: float = 0.0

    def __post_init__(self) -> None:
        if not self.op:
            raise FaultPlanError("a fault spec needs a non-empty op key")
        if self.count < 1:
            raise FaultPlanError(
                f"fault counts are 1-based, got {self.count} for {self.op!r}"
            )
        if self.kind not in FAULT_KINDS:
            raise FaultPlanError(
                f"unknown fault kind {self.kind!r} "
                f"(known: {', '.join(FAULT_KINDS)})"
            )
        if self.arg < 0:
            raise FaultPlanError(f"fault arg must be >= 0, got {self.arg}")

    def to_dict(self) -> Dict[str, Any]:
        return {"op": self.op, "count": self.count, "kind": self.kind,
                "arg": self.arg}

    @classmethod
    def from_dict(cls, state: Dict[str, Any]) -> "FaultSpec":
        try:
            return cls(
                op=str(state["op"]),
                count=int(state["count"]),
                kind=str(state["kind"]),
                arg=float(state.get("arg", 0.0)),
            )
        except KeyError as exc:
            raise FaultPlanError(f"fault spec is missing key {exc}") from exc


@dataclass(frozen=True)
class FaultPlan:
    """A frozen schedule of faults plus the seed that makes them repeatable."""

    seed: int = 0
    faults: Tuple[FaultSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        seen: Dict[Tuple[str, int], FaultSpec] = {}
        for spec in self.faults:
            key = (spec.op, spec.count)
            if key in seen:
                raise FaultPlanError(
                    f"two faults scheduled for {spec.op!r} call #{spec.count}"
                )
            seen[key] = spec

    def injector(self) -> "FaultInjector":
        """A fresh runtime injector for one drill run of this plan."""
        return FaultInjector(self)

    # -- wire format ----------------------------------------------------- #
    def to_dict(self) -> Dict[str, Any]:
        return {"seed": self.seed,
                "faults": [spec.to_dict() for spec in self.faults]}

    @classmethod
    def from_dict(cls, state: Dict[str, Any]) -> "FaultPlan":
        faults = state.get("faults", [])
        if not isinstance(faults, list):
            raise FaultPlanError("'faults' must be a list of fault specs")
        return cls(
            seed=int(state.get("seed", 0)),
            faults=tuple(FaultSpec.from_dict(entry) for entry in faults),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), separators=(",", ":"), sort_keys=True)

    @classmethod
    def from_json(cls, blob: str) -> "FaultPlan":
        try:
            state = json.loads(blob)
        except json.JSONDecodeError as exc:
            raise FaultPlanError(f"fault plan is not valid JSON: {exc}") from exc
        if not isinstance(state, dict):
            raise FaultPlanError("fault plan JSON must be an object")
        return cls.from_dict(state)


class FaultInjector:
    """Runtime counterpart of a plan: counts calls, hands out due faults.

    One injector instruments one run: it keeps a per-op call counter and
    returns the scheduled :class:`FaultSpec` when a counter hits its key.
    :attr:`fired` records every fault actually delivered (op, count, kind),
    which is what drill reports assert against.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._counts: Dict[str, int] = {}
        self._schedule: Dict[Tuple[str, int], FaultSpec] = {
            (spec.op, spec.count): spec for spec in plan.faults
        }
        self.fired: List[Tuple[str, int, str]] = []

    def fire(self, op: str) -> Optional[FaultSpec]:
        """Count one call of ``op``; return its scheduled fault, if any."""
        count = self._counts[op] = self._counts.get(op, 0) + 1
        spec = self._schedule.get((op, count))
        if spec is not None:
            self.fired.append((op, count, spec.kind))
        return spec

    def rng(self, op: str) -> random.Random:
        """A deterministic RNG for the *current* call of ``op``.

        Seeded from (plan seed, op name, call count) through CRC-32 --
        stable across processes and ``PYTHONHASHSEED`` values.
        """
        count = self._counts.get(op, 0)
        return random.Random(
            self.plan.seed ^ zlib.crc32(op.encode("utf-8")) ^ (count * 0x9E3779B1)
        )

    def calls(self, op: str) -> int:
        """How many times ``op`` has fired so far."""
        return self._counts.get(op, 0)


def injector_from_env(variable: str = FAULT_PLAN_ENV) -> Optional[FaultInjector]:
    """Build an injector from a JSON plan in the environment, if present.

    This is how spawned serve workers receive their faults: the drill sets
    :data:`FAULT_PLAN_ENV` before starting the service, the spawn context
    inherits ``os.environ``, and each worker instruments itself at startup.
    Returns ``None`` when the variable is unset or empty.
    """
    blob = os.environ.get(variable, "")
    if not blob:
        return None
    return FaultPlan.from_json(blob).injector()
