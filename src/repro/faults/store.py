"""A fault-injecting :class:`~repro.storage.pagestore.PageStore` wrapper.

:class:`FaultyPageStore` implements the full ``PageStore`` protocol over any
inner backend and consults a :class:`~repro.faults.plan.FaultInjector` at
every operation.  Drills wrap the store an engine is about to run on, so the
faults land exactly where real hardware faults would: under the disk
manager, below the buffer pool, inside the counted I/O path.

Kinds honoured per operation:

* every op: ``io_error`` (raise :class:`OSError`), ``latency`` (sleep).
* ``store.store_page``: additionally ``bit_flip`` (delegate the write, then
  corrupt one deterministic byte of the backing file -- silent on-disk
  damage), ``torn_write`` (delegate, then shear trailing bytes off the
  backing file and fail like a crash) and ``fsync_fail``.
* ``store.flush``: additionally ``fsync_fail`` (the flush itself errors).

File-level kinds need a file-backed inner store (one with a ``path``); a
plan that schedules them over a memory store is a plan error, surfaced
loudly rather than skipped silently.
"""

from __future__ import annotations

import os
import time
from typing import Any, Dict, List, Optional

from repro.faults.plan import FaultInjector, FaultPlanError, FaultSpec
from repro.storage.page import Page
from repro.storage.pagestore import PageStore


class FaultyPageStore(PageStore):
    """Wrap ``inner`` so scheduled faults fire inside its operations."""

    kind = "faulty"

    def __init__(self, inner: PageStore, injector: FaultInjector) -> None:
        self.inner = inner
        self.injector = injector
        self.writable = inner.writable
        self.thread_safe_reads = inner.thread_safe_reads

    # -- fault plumbing -------------------------------------------------- #
    def _backing_path(self) -> str:
        path = getattr(self.inner, "path", None)
        if not path:
            raise FaultPlanError(
                "file-level faults (bit_flip/torn_write) need a file-backed "
                f"inner store; {self.inner.kind!r} has no path"
            )
        return str(path)

    def _basic_fault(self, op: str) -> Optional[FaultSpec]:
        """Handle the kinds every op supports; return unhandled specs."""
        spec = self.injector.fire(op)
        if spec is None:
            return None
        if spec.kind == "latency":
            time.sleep(spec.arg)
            return None
        if spec.kind == "io_error":
            raise OSError(f"injected I/O error on {op}")
        return spec

    def _reject(self, op: str, spec: FaultSpec) -> None:
        raise FaultPlanError(f"fault kind {spec.kind!r} is not valid for {op}")

    def _flip_backing_byte(self, op: str) -> None:
        """Corrupt one deterministic byte of the inner store's file."""
        path = self._backing_path()
        self.inner.flush()
        size = os.path.getsize(path)
        if size == 0:
            return
        offset = self.injector.rng(op).randrange(size)
        with open(path, "r+b") as handle:
            handle.seek(offset)
            byte = handle.read(1)
            handle.seek(offset)
            handle.write(bytes([byte[0] ^ 0x01]))

    def _tear_backing_file(self, op: str) -> None:
        """Shear a random number of trailing bytes off the inner file."""
        path = self._backing_path()
        self.inner.flush()
        size = os.path.getsize(path)
        if size > 1:
            keep = self.injector.rng(op).randrange(1, size)
            with open(path, "r+b") as handle:
                handle.truncate(keep)

    # -- PageStore protocol ---------------------------------------------- #
    def store_page(self, page: Page) -> None:
        spec = self._basic_fault("store.store_page")
        self.inner.store_page(page)
        if spec is None:
            return
        if spec.kind == "bit_flip":
            self._flip_backing_byte("store.store_page")
        elif spec.kind == "torn_write":
            self._tear_backing_file("store.store_page")
            raise OSError("injected torn write on store.store_page")
        elif spec.kind == "fsync_fail":
            raise OSError("injected fsync failure on store.store_page")
        else:
            self._reject("store.store_page", spec)

    def load_page(self, page_id: int) -> Page:
        spec = self._basic_fault("store.load_page")
        if spec is not None:
            self._reject("store.load_page", spec)
        return self.inner.load_page(page_id)

    def delete_page(self, page_id: int) -> None:
        spec = self._basic_fault("store.delete_page")
        if spec is not None:
            self._reject("store.delete_page", spec)
        self.inner.delete_page(page_id)

    def page_ids(self) -> List[int]:
        return self.inner.page_ids()

    def next_page_id(self) -> int:
        return self.inner.next_page_id()

    def read_meta(self) -> Optional[Dict[str, Any]]:
        spec = self._basic_fault("store.read_meta")
        if spec is not None:
            self._reject("store.read_meta", spec)
        return self.inner.read_meta()

    def write_meta(self, meta: Dict[str, Any]) -> None:
        spec = self._basic_fault("store.write_meta")
        if spec is not None:
            self._reject("store.write_meta", spec)
        self.inner.write_meta(meta)

    def flush(self) -> None:
        spec = self._basic_fault("store.flush")
        self.inner.flush()
        if spec is not None:
            if spec.kind == "fsync_fail":
                raise OSError("injected fsync failure on store.flush")
            self._reject("store.flush", spec)

    def close(self) -> None:
        self.inner.close()

    def __contains__(self, page_id: int) -> bool:
        return page_id in self.inner

    def __len__(self) -> int:
        return len(self.inner)
