"""Two-dimensional geometry kernel used throughout the UV-diagram library.

The UV-diagram is built from a small number of geometric primitives:

* :class:`~repro.geometry.point.Point` -- immutable 2-D points / vectors,
* :class:`~repro.geometry.circle.Circle` -- uncertainty regions and
  minimum bounding circles (MBCs),
* :class:`~repro.geometry.rectangle.Rect` -- axis-aligned rectangles used for
  the domain, quad-tree grid cells, and R-tree MBRs,
* :class:`~repro.geometry.segment.Segment` -- line segments,
* :class:`~repro.geometry.polygon.Polygon` -- simple polygons used to
  approximate possible regions and UV-cells,
* :class:`~repro.geometry.hyperbola.Hyperbola` -- the conic curves that form
  UV-edges (Equation 5 of the paper),
* convex hulls (:func:`~repro.geometry.hull.convex_hull`) used by C-pruning,
* curve clipping (:mod:`repro.geometry.clipping`) used when an exact UV-cell
  is constructed by repeatedly subtracting outside regions (Algorithm 1).

All coordinates are plain ``float``; the kernel does not depend on any other
subpackage of :mod:`repro`.
"""

from repro.geometry.point import Point, centroid, cross, dot
from repro.geometry.circle import Circle, circle_from_points, min_bounding_circle
from repro.geometry.rectangle import Rect
from repro.geometry.segment import Segment
from repro.geometry.polygon import Polygon
from repro.geometry.hull import convex_hull
from repro.geometry.hyperbola import Hyperbola
from repro.geometry.clipping import clip_polygon_halfplane, clip_polygon_by_constraint

__all__ = [
    "Point",
    "centroid",
    "cross",
    "dot",
    "Circle",
    "circle_from_points",
    "min_bounding_circle",
    "Rect",
    "Segment",
    "Polygon",
    "convex_hull",
    "Hyperbola",
    "clip_polygon_halfplane",
    "clip_polygon_by_constraint",
]
