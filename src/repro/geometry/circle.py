"""Circles: uncertainty regions and minimum bounding circles (MBCs).

Circular uncertainty regions are the primary uncertainty model of the paper
(Section III-C); non-circular regions are handled by converting them to their
minimum bounding circle, for which :func:`min_bounding_circle` (Welzl's
algorithm) is provided.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from repro.geometry.point import Point


@dataclass(frozen=True)
class Circle:
    """A circle with ``center`` and non-negative ``radius``.

    A circle with a zero radius degenerates into a point; the paper notes that
    the classic Voronoi diagram is exactly the UV-diagram of zero-radius
    objects.
    """

    center: Point
    radius: float

    def __post_init__(self) -> None:
        if self.radius < 0:
            raise ValueError(f"circle radius must be non-negative, got {self.radius}")

    # ------------------------------------------------------------------ #
    # basic predicates
    # ------------------------------------------------------------------ #
    def contains_point(self, p: Point, tol: float = 1e-9) -> bool:
        """Return ``True`` when ``p`` lies inside or on the circle."""
        return self.center.distance_to(p) <= self.radius + tol

    def contains_circle(self, other: "Circle", tol: float = 1e-9) -> bool:
        """Return ``True`` when ``other`` is completely inside this circle."""
        return self.center.distance_to(other.center) + other.radius <= self.radius + tol

    def intersects_circle(self, other: "Circle", tol: float = 1e-9) -> bool:
        """Return ``True`` when the two closed disks share at least one point."""
        return self.center.distance_to(other.center) <= self.radius + other.radius + tol

    # ------------------------------------------------------------------ #
    # distances (Equations 2 and 3 of the paper)
    # ------------------------------------------------------------------ #
    def min_distance(self, p: Point) -> float:
        """Minimum distance from ``p`` to any point of the disk.

        Zero when ``p`` lies inside the disk (Equation 2).
        """
        return max(0.0, self.center.distance_to(p) - self.radius)

    def max_distance(self, p: Point) -> float:
        """Maximum distance from ``p`` to any point of the disk (Equation 3)."""
        return self.center.distance_to(p) + self.radius

    # ------------------------------------------------------------------ #
    # measurements and conversions
    # ------------------------------------------------------------------ #
    @property
    def diameter(self) -> float:
        """Diameter of the circle."""
        return 2.0 * self.radius

    def area(self) -> float:
        """Area of the disk."""
        return math.pi * self.radius * self.radius

    def perimeter(self) -> float:
        """Circumference of the circle."""
        return 2.0 * math.pi * self.radius

    def bounding_box(self) -> "tuple[float, float, float, float]":
        """Return ``(xmin, ymin, xmax, ymax)`` of the axis-aligned bounding box."""
        return (
            self.center.x - self.radius,
            self.center.y - self.radius,
            self.center.x + self.radius,
            self.center.y + self.radius,
        )

    def sample_boundary(self, count: int) -> List[Point]:
        """Return ``count`` points evenly spaced on the circle boundary."""
        if count <= 0:
            raise ValueError("count must be positive")
        step = 2.0 * math.pi / count
        return [
            Point(
                self.center.x + self.radius * math.cos(i * step),
                self.center.y + self.radius * math.sin(i * step),
            )
            for i in range(count)
        ]

    def scaled(self, factor: float) -> "Circle":
        """Return a circle with the same centre and radius scaled by ``factor``."""
        if factor < 0:
            raise ValueError("scale factor must be non-negative")
        return Circle(self.center, self.radius * factor)

    def translated(self, offset: Point) -> "Circle":
        """Return a circle translated by the vector ``offset``."""
        return Circle(self.center + offset, self.radius)


# ---------------------------------------------------------------------- #
# minimum bounding circles
# ---------------------------------------------------------------------- #
def circle_from_points(a: Point, b: Point, c: Optional[Point] = None) -> Circle:
    """Smallest circle through two points, or the circumcircle of three points.

    With two points the circle has the segment ``ab`` as diameter.  With three
    non-collinear points the unique circumcircle is returned; collinear
    triples fall back to the diametral circle of the two farthest points.
    """
    if c is None:
        center = a.midpoint(b)
        return Circle(center, center.distance_to(a))

    ax, ay = a.x, a.y
    bx, by = b.x, b.y
    cx, cy = c.x, c.y
    d = 2.0 * (ax * (by - cy) + bx * (cy - ay) + cx * (ay - by))
    if abs(d) < 1e-12:
        # Collinear: use the two farthest-apart points as a diameter.
        pairs = [(a, b), (a, c), (b, c)]
        far = max(pairs, key=lambda pq: pq[0].distance_to(pq[1]))
        return circle_from_points(far[0], far[1])
    ux = (
        (ax * ax + ay * ay) * (by - cy)
        + (bx * bx + by * by) * (cy - ay)
        + (cx * cx + cy * cy) * (ay - by)
    ) / d
    uy = (
        (ax * ax + ay * ay) * (cx - bx)
        + (bx * bx + by * by) * (ax - cx)
        + (cx * cx + cy * cy) * (bx - ax)
    ) / d
    center = Point(ux, uy)
    return Circle(center, center.distance_to(a))


def _circle_covers(circle: Circle, points: Sequence[Point], tol: float = 1e-7) -> bool:
    return all(circle.contains_point(p, tol=tol) for p in points)


def min_bounding_circle(points: Iterable[Point], seed: int = 7) -> Circle:
    """Minimum enclosing circle of a non-empty point set (Welzl's algorithm).

    Used to convert arbitrary uncertainty regions (given as point samples)
    into the circular regions required by the UV-diagram construction.
    """
    pts = list(points)
    if not pts:
        raise ValueError("cannot bound an empty point set")
    if len(pts) == 1:
        return Circle(pts[0], 0.0)

    rng = random.Random(seed)
    shuffled = pts[:]
    rng.shuffle(shuffled)

    circle = circle_from_points(shuffled[0], shuffled[1])
    for i, p in enumerate(shuffled):
        if circle.contains_point(p, tol=1e-7):
            continue
        # p must lie on the boundary of the minimal circle of shuffled[:i+1].
        circle = Circle(p, 0.0)
        for j, q in enumerate(shuffled[:i]):
            if circle.contains_point(q, tol=1e-7):
                continue
            circle = circle_from_points(p, q)
            for r in shuffled[:j]:
                if circle.contains_point(r, tol=1e-7):
                    continue
                circle = circle_from_points(p, q, r)
    return circle
