"""Polygon clipping against half-planes and general smooth constraints.

Algorithm 1 of the paper builds an exact UV-cell by repeatedly subtracting
*outside regions* from a possible region.  An outside region is bounded by a
hyperbolic UV-edge, so the subtraction is "clip a polygon by a smooth convex
constraint".  We keep the possible region as a polygon whose curved edges are
densely sampled; each clip

1. walks the polygon boundary,
2. keeps vertices that satisfy the constraint,
3. finds boundary crossings by sampling + bisection on each edge, and
4. replaces the removed boundary portion by sampled points of the constraint
   curve itself (when the caller can provide them, e.g. via
   :meth:`repro.geometry.hyperbola.Hyperbola.arc_between`).

The same machinery also provides the classic Sutherland-Hodgman half-plane
clip used for rectangles and domain boundaries.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.geometry.point import Point
from repro.geometry.polygon import Polygon

# A constraint maps a point to a signed value; points with value <= 0 are kept.
Constraint = Callable[[Point], float]
# An arc sampler returns interior points of the constraint boundary between
# an exit crossing and the next entry crossing (in boundary order).
ArcSampler = Callable[[Point, Point], Sequence[Point]]


def clip_polygon_halfplane(polygon: Polygon, a: float, b: float, c: float) -> Polygon:
    """Clip ``polygon`` with the half-plane ``a*x + b*y + c <= 0``.

    Standard Sutherland-Hodgman; exact because both the subject edges and the
    clip boundary are straight lines.
    """
    vertices = polygon.vertices
    if not vertices:
        return Polygon.empty()
    result: List[Point] = []
    n = len(vertices)
    for i in range(n):
        current = vertices[i]
        nxt = vertices[(i + 1) % n]
        cur_val = a * current.x + b * current.y + c
        nxt_val = a * nxt.x + b * nxt.y + c
        if cur_val <= 0:
            result.append(current)
        if (cur_val < 0 < nxt_val) or (nxt_val < 0 < cur_val):
            t = cur_val / (cur_val - nxt_val)
            result.append(
                Point(
                    current.x + t * (nxt.x - current.x),
                    current.y + t * (nxt.y - current.y),
                )
            )
    return Polygon(result)


def clip_polygon_to_rect(polygon: Polygon, xmin: float, ymin: float, xmax: float, ymax: float) -> Polygon:
    """Clip a polygon to an axis-aligned rectangle."""
    clipped = clip_polygon_halfplane(polygon, -1.0, 0.0, xmin)   # x >= xmin
    clipped = clip_polygon_halfplane(clipped, 1.0, 0.0, -xmax)   # x <= xmax
    clipped = clip_polygon_halfplane(clipped, 0.0, -1.0, ymin)   # y >= ymin
    clipped = clip_polygon_halfplane(clipped, 0.0, 1.0, -ymax)   # y <= ymax
    return clipped


def _find_crossing(
    start: Point, end: Point, g_start: float, g_end: float, constraint: Constraint, iterations: int = 40
) -> Point:
    """Bisection root of the constraint along the segment ``start -> end``.

    ``g_start`` and ``g_end`` must have opposite signs.
    """
    lo, hi = 0.0, 1.0
    val_lo = g_start
    for _ in range(iterations):
        mid = (lo + hi) / 2.0
        p = Point(start.x + (end.x - start.x) * mid, start.y + (end.y - start.y) * mid)
        val = constraint(p)
        if (val_lo <= 0) == (val <= 0):
            lo = mid
            val_lo = val
        else:
            hi = mid
    mid = (lo + hi) / 2.0
    return Point(start.x + (end.x - start.x) * mid, start.y + (end.y - start.y) * mid)


def _edge_crossings(
    start: Point, end: Point, constraint: Constraint, samples: int
) -> List[Point]:
    """All crossings of the constraint boundary along one polygon edge.

    The edge is sampled at ``samples + 1`` points; each sign change is refined
    by bisection.  Sampling guards against edges that enter and leave the
    constraint region between their endpoints.
    """
    crossings: List[Point] = []
    prev_t = 0.0
    prev_p = start
    prev_val = constraint(start)
    for k in range(1, samples + 1):
        t = k / samples
        p = Point(start.x + (end.x - start.x) * t, start.y + (end.y - start.y) * t)
        val = constraint(p)
        if (prev_val <= 0) != (val <= 0):
            crossings.append(_find_crossing(prev_p, p, prev_val, val, constraint))
        prev_t, prev_p, prev_val = t, p, val
    return crossings


def clip_polygon_by_constraint(
    polygon: Polygon,
    constraint: Constraint,
    arc_sampler: Optional[ArcSampler] = None,
    edge_samples: int = 6,
) -> Polygon:
    """Clip ``polygon`` keeping the points where ``constraint(p) <= 0``.

    Args:
        polygon: subject polygon (possibly with densely sampled curved edges).
        constraint: signed function, negative/zero inside the kept region.
        arc_sampler: optional callable producing interior boundary points of
            the constraint curve between an exit and the following entry
            crossing; when omitted the two crossings are joined by a straight
            chord, which slightly over-approximates the kept region (safe for
            *possible* regions, which only need to cover the UV-cell).
        edge_samples: number of sub-samples per edge used to detect crossings.

    Returns:
        The clipped polygon (possibly empty).
    """
    vertices = polygon.vertices
    if not vertices:
        return Polygon.empty()

    values = [constraint(v) for v in vertices]
    if all(v <= 0 for v in values):
        return polygon
    if all(v > 0 for v in values):
        # The whole boundary is outside; the polygon may still contain a kept
        # pocket in its interior, but for convex-ish possible regions the
        # result is empty.
        return Polygon.empty()

    n = len(vertices)
    output: List[Point] = []
    pending_exit: Optional[Point] = None

    def emit_entry(entry: Point) -> None:
        nonlocal pending_exit
        if pending_exit is not None and arc_sampler is not None:
            output.extend(arc_sampler(pending_exit, entry))
        pending_exit = None
        output.append(entry)

    first_exit: Optional[Point] = None
    for i in range(n):
        current = vertices[i]
        nxt = vertices[(i + 1) % n]
        cur_val = values[i]
        if cur_val <= 0:
            output.append(current)
        crossings = _edge_crossings(current, nxt, constraint, edge_samples)
        inside = cur_val <= 0
        for crossing in crossings:
            if inside:
                # leaving the kept region
                output.append(crossing)
                pending_exit = crossing
                if first_exit is None:
                    first_exit = crossing
            else:
                emit_entry(crossing)
            inside = not inside

    # A clip can wrap around the vertex list: the final exit pairs with the
    # first entry, which was emitted before any exit was recorded.  In that
    # case insert the arc at the end (the polygon is cyclic, so appending is
    # equivalent).
    if pending_exit is not None and arc_sampler is not None and output:
        first_inside_index = next(
            (idx for idx, p in enumerate(output) if constraint(p) <= 1e-9), None
        )
        if first_inside_index is not None:
            output.extend(arc_sampler(pending_exit, output[first_inside_index]))

    return Polygon(output)
