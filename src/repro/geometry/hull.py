"""Convex hulls (Andrew's monotone chain).

C-pruning (Lemma 3 of the paper) operates on the convex hull of the current
possible region: a candidate object can be discarded when its centre lies
outside every d-bound circle erected on the hull's vertices.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.geometry.point import Point, cross
from repro.geometry.polygon import Polygon


def convex_hull(points: Iterable[Point]) -> List[Point]:
    """Return the convex hull vertices in counter-clockwise order.

    Collinear points on the hull boundary are dropped.  Degenerate inputs
    (fewer than three distinct points) return the distinct points themselves.
    """
    pts = sorted(set((p.x, p.y) for p in points))
    unique = [Point(x, y) for x, y in pts]
    if len(unique) <= 2:
        return unique

    def half_hull(sequence: List[Point]) -> List[Point]:
        hull: List[Point] = []
        for p in sequence:
            while len(hull) >= 2 and cross(hull[-1] - hull[-2], p - hull[-2]) <= 0:
                hull.pop()
            hull.append(p)
        return hull

    lower = half_hull(unique)
    upper = half_hull(list(reversed(unique)))
    return lower[:-1] + upper[:-1]


def convex_hull_polygon(points: Iterable[Point]) -> Polygon:
    """Convex hull as a :class:`~repro.geometry.polygon.Polygon`."""
    return Polygon(convex_hull(points))


def is_convex(polygon: Polygon, tol: float = 1e-9) -> bool:
    """Return ``True`` when the polygon is convex (assuming CCW orientation)."""
    verts = polygon.vertices
    n = len(verts)
    if n < 3:
        return False
    for i in range(n):
        a, b, c = verts[i], verts[(i + 1) % n], verts[(i + 2) % n]
        if cross(b - a, c - b) < -tol:
            return False
    return True


def point_in_convex_hull(point: Point, hull: List[Point], tol: float = 1e-9) -> bool:
    """Membership test for a point against a CCW convex hull vertex list."""
    n = len(hull)
    if n == 0:
        return False
    if n == 1:
        return point.is_close(hull[0], tol=tol)
    if n == 2:
        from repro.geometry.segment import Segment

        return Segment(hull[0], hull[1]).distance_to_point(point) <= tol
    for i in range(n):
        a = hull[i]
        b = hull[(i + 1) % n]
        if cross(b - a, point - a) < -tol:
            return False
    return True
