"""Hyperbolic UV-edges (Equation 5 of the paper).

The UV-edge of an uncertain object ``O_i`` with respect to ``O_j`` is the set
of points ``p`` where the minimum distance to ``O_i`` equals the maximum
distance to ``O_j``::

    dist(p, c_i) - r_i = dist(p, c_j) + r_j
    dist(p, c_i) - dist(p, c_j) = r_i + r_j

which is one branch of a hyperbola with foci ``c_i`` and ``c_j`` -- the
branch that bends around ``c_j``.  This module gives that branch an explicit
parametric form (used when an exact UV-cell is assembled and its curved
boundary needs to be sampled) plus the distance-based membership tests used
everywhere else.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

from repro.geometry.point import Point


@dataclass(frozen=True)
class Hyperbola:
    """One branch of the hyperbola forming a UV-edge.

    Attributes:
        focus_i: centre of the object whose UV-cell is being constructed
            (``c_i`` in the paper); the branch bends *away* from it.
        focus_j: centre of the competing object (``c_j``); the branch bends
            around it.
        radius_i: radius of ``O_i``'s uncertainty region.
        radius_j: radius of ``O_j``'s uncertainty region.
        a: semi-major axis ``(r_i + r_j) / 2``.
        b: semi-minor axis ``sqrt(c^2 - a^2)`` with ``c = dist(c_i, c_j)/2``.
        center: midpoint of the two foci.
        cos_t, sin_t: rotation of the focal axis (from ``c_i`` towards ``c_j``).
    """

    focus_i: Point
    focus_j: Point
    radius_i: float
    radius_j: float
    a: float
    b: float
    center: Point
    cos_t: float
    sin_t: float

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @staticmethod
    def uv_edge(
        center_i: Point, radius_i: float, center_j: Point, radius_j: float
    ) -> Optional["Hyperbola"]:
        """Build the UV-edge ``E_i(j)``, or ``None`` when it does not exist.

        The edge does not exist when the two uncertainty regions overlap
        (``dist(c_i, c_j) <= r_i + r_j``): then ``b`` is not real and the
        outside region ``X_i(j)`` is empty (Section III-C).
        """
        focal_distance = center_i.distance_to(center_j)
        a = (radius_i + radius_j) / 2.0
        c = focal_distance / 2.0
        # c <= a also covers coincident centres (focal_distance == 0 gives
        # c == 0 <= a), so no separate zero test -- and no division below
        # can see a zero focal_distance.
        if c <= a:
            return None
        b = math.sqrt(c * c - a * a)
        center = center_i.midpoint(center_j)
        cos_t = (center_j.x - center_i.x) / focal_distance
        sin_t = (center_j.y - center_i.y) / focal_distance
        return Hyperbola(
            focus_i=center_i,
            focus_j=center_j,
            radius_i=radius_i,
            radius_j=radius_j,
            a=a,
            b=b,
            center=center,
            cos_t=cos_t,
            sin_t=sin_t,
        )

    # ------------------------------------------------------------------ #
    # coordinate transforms
    # ------------------------------------------------------------------ #
    def to_local(self, p: Point) -> Point:
        """Rotate/translate ``p`` into the hyperbola's local frame.

        In the local frame the branch is ``x = a cosh(t)``, ``y = b sinh(t)``.
        """
        dx = p.x - self.center.x
        dy = p.y - self.center.y
        return Point(
            dx * self.cos_t + dy * self.sin_t,
            -dx * self.sin_t + dy * self.cos_t,
        )

    def to_world(self, local: Point) -> Point:
        """Inverse of :meth:`to_local`."""
        return Point(
            self.center.x + local.x * self.cos_t - local.y * self.sin_t,
            self.center.y + local.x * self.sin_t + local.y * self.cos_t,
        )

    # ------------------------------------------------------------------ #
    # parametric branch
    # ------------------------------------------------------------------ #
    def point_at(self, t: float) -> Point:
        """Point of the branch at parameter ``t`` (``t = 0`` is the vertex)."""
        return self.to_world(Point(self.a * math.cosh(t), self.b * math.sinh(t)))

    def parameter_of(self, p: Point) -> float:
        """Parameter of the branch point closest (in parameter space) to ``p``.

        ``p`` is assumed to lie on or very near the branch; the parameter is
        recovered from the local ``y`` coordinate.
        """
        local = self.to_local(p)
        return math.asinh(local.y / self.b)

    def arc_between(self, start: Point, end: Point, count: int = 16) -> List[Point]:
        """Sample ``count`` interior points of the branch between two points.

        ``start`` and ``end`` must lie (approximately) on the branch; they are
        *not* included in the result.  Used when a clipped possible-region
        boundary needs to follow the curved UV-edge between two crossing
        points.
        """
        if count <= 0:
            return []
        t0 = self.parameter_of(start)
        t1 = self.parameter_of(end)
        step = (t1 - t0) / (count + 1)
        return [self.point_at(t0 + step * (k + 1)) for k in range(count)]

    def vertex(self) -> Point:
        """The vertex of the branch (the point closest to ``focus_i``)."""
        return self.point_at(0.0)

    # ------------------------------------------------------------------ #
    # membership (distance based -- exact, no conic arithmetic needed)
    # ------------------------------------------------------------------ #
    def edge_value(self, p: Point) -> float:
        """Signed UV-edge function ``distmin(O_i, p) - distmax(O_j, p)``.

        * ``> 0``: ``p`` is in the outside region ``X_i(j)`` (``O_j`` is
          certainly closer than ``O_i``),
        * ``= 0``: ``p`` lies on the UV-edge,
        * ``< 0``: ``O_i`` still has a chance to be the nearest neighbour.
        """
        dist_min_i = max(0.0, p.distance_to(self.focus_i) - self.radius_i)
        dist_max_j = p.distance_to(self.focus_j) + self.radius_j
        return dist_min_i - dist_max_j

    def in_outside_region(self, p: Point, tol: float = 0.0) -> bool:
        """Return ``True`` when ``p`` lies strictly in the outside region ``X_i(j)``."""
        return self.edge_value(p) > tol

    def implicit_value(self, p: Point) -> float:
        """Value of the implicit conic ``x^2/a^2 - y^2/b^2 - 1`` in the local frame.

        Zero on the full hyperbola (both branches); provided for testing the
        algebraic form of Equation 5 against the distance-based definition.
        """
        local = self.to_local(p)
        return (local.x * local.x) / (self.a * self.a) - (local.y * local.y) / (
            self.b * self.b
        ) - 1.0
