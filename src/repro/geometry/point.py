"""Immutable 2-D points and elementary vector operations.

The whole library works in a flat Euclidean plane.  ``Point`` doubles as a
vector: subtraction yields a displacement, and the helper functions
:func:`dot` and :func:`cross` operate on such displacements.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence, Tuple


@dataclass(frozen=True)
class Point:
    """A point (or vector) in the plane.

    Instances are immutable and hashable so they can be used as dictionary
    keys (e.g. when deduplicating polygon vertices).
    """

    x: float
    y: float

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def origin() -> "Point":
        """Return the origin ``(0, 0)``."""
        return Point(0.0, 0.0)

    @staticmethod
    def from_tuple(pair: Sequence[float]) -> "Point":
        """Build a point from any two-element sequence."""
        if len(pair) != 2:
            raise ValueError(f"expected a 2-element sequence, got {pair!r}")
        return Point(float(pair[0]), float(pair[1]))

    @staticmethod
    def polar(radius: float, angle: float) -> "Point":
        """Return the point at ``radius`` from the origin at ``angle`` radians."""
        return Point(radius * math.cos(angle), radius * math.sin(angle))

    # ------------------------------------------------------------------ #
    # vector arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other: "Point") -> "Point":
        return Point(self.x + other.x, self.y + other.y)

    def __sub__(self, other: "Point") -> "Point":
        return Point(self.x - other.x, self.y - other.y)

    def __mul__(self, scalar: float) -> "Point":
        return Point(self.x * scalar, self.y * scalar)

    __rmul__ = __mul__

    def __truediv__(self, scalar: float) -> "Point":
        return Point(self.x / scalar, self.y / scalar)

    def __neg__(self) -> "Point":
        return Point(-self.x, -self.y)

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y

    # ------------------------------------------------------------------ #
    # metrics
    # ------------------------------------------------------------------ #
    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def squared_distance_to(self, other: "Point") -> float:
        """Squared Euclidean distance to ``other`` (no square root)."""
        dx = self.x - other.x
        dy = self.y - other.y
        return dx * dx + dy * dy

    def norm(self) -> float:
        """Length of this point interpreted as a vector."""
        return math.hypot(self.x, self.y)

    def squared_norm(self) -> float:
        """Squared length of this point interpreted as a vector."""
        return self.x * self.x + self.y * self.y

    def normalized(self) -> "Point":
        """Return a unit vector with the same direction.

        Raises:
            ValueError: if this is the zero vector.
        """
        length = self.norm()
        # repro-lint: ignore[float-eq] -- exact zero (the only non-normalizable length) guards the division
        if length == 0.0:
            raise ValueError("cannot normalize the zero vector")
        return Point(self.x / length, self.y / length)

    def rotated(self, angle: float, about: "Point" | None = None) -> "Point":
        """Return this point rotated by ``angle`` radians around ``about``.

        The rotation is counter-clockwise; ``about`` defaults to the origin.
        """
        pivot = about if about is not None else Point.origin()
        dx = self.x - pivot.x
        dy = self.y - pivot.y
        cos_a = math.cos(angle)
        sin_a = math.sin(angle)
        return Point(
            pivot.x + dx * cos_a - dy * sin_a,
            pivot.y + dx * sin_a + dy * cos_a,
        )

    def angle_to(self, other: "Point") -> float:
        """Angle (radians in ``[-pi, pi]``) of the vector from this point to ``other``."""
        return math.atan2(other.y - self.y, other.x - self.x)

    def midpoint(self, other: "Point") -> "Point":
        """Return the midpoint between this point and ``other``."""
        return Point((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)

    def is_close(self, other: "Point", tol: float = 1e-9) -> bool:
        """Return ``True`` when both coordinates differ by at most ``tol``."""
        return abs(self.x - other.x) <= tol and abs(self.y - other.y) <= tol

    def as_tuple(self) -> Tuple[float, float]:
        """Return ``(x, y)`` as a plain tuple."""
        return (self.x, self.y)


def dot(a: Point, b: Point) -> float:
    """Dot product of two vectors."""
    return a.x * b.x + a.y * b.y


def cross(a: Point, b: Point) -> float:
    """Z-component of the cross product of two vectors.

    Positive when ``b`` is counter-clockwise from ``a``.
    """
    return a.x * b.y - a.y * b.x


def orientation(a: Point, b: Point, c: Point) -> float:
    """Signed area (times two) of triangle ``abc``.

    Positive for a counter-clockwise turn, negative for clockwise, zero for
    collinear points.
    """
    return cross(b - a, c - a)


def centroid(points: Iterable[Point]) -> Point:
    """Arithmetic mean of a non-empty collection of points."""
    pts = list(points)
    if not pts:
        raise ValueError("centroid of an empty point set is undefined")
    sx = sum(p.x for p in pts)
    sy = sum(p.y for p in pts)
    return Point(sx / len(pts), sy / len(pts))
