"""Simple polygons.

Possible regions and (approximate) UV-cells are represented as simple
polygons whose vertices may originate from domain corners, hyperbolic
UV-edges (sampled densely), or intersections between the two.  The polygon
class therefore provides exactly the operations the construction algorithms
need: area, containment, vertex access, bounding boxes, and clipping support
(in :mod:`repro.geometry.clipping`).
"""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence

from repro.geometry.point import Point
from repro.geometry.rectangle import Rect
from repro.geometry.segment import Segment


class Polygon:
    """A simple polygon defined by an ordered list of vertices.

    Vertices may be given in either orientation; the class normalises to
    counter-clockwise order so that the signed area is non-negative.
    Degenerate polygons (fewer than three vertices) are allowed and behave as
    empty regions -- they appear naturally when a possible region is clipped
    down to nothing.
    """

    __slots__ = ("_vertices",)

    def __init__(self, vertices: Iterable[Point]):
        verts = _dedupe_consecutive(list(vertices))
        if len(verts) >= 3 and _signed_area(verts) < 0:
            verts.reverse()
        self._vertices = verts

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @staticmethod
    def from_rect(rect: Rect) -> "Polygon":
        """Polygon covering the rectangle ``rect``."""
        return Polygon(rect.corners())

    @staticmethod
    def regular(center: Point, radius: float, sides: int) -> "Polygon":
        """Regular polygon with ``sides`` vertices inscribed in a circle."""
        if sides < 3:
            raise ValueError("a polygon needs at least three sides")
        step = 2.0 * math.pi / sides
        return Polygon(
            Point(center.x + radius * math.cos(i * step), center.y + radius * math.sin(i * step))
            for i in range(sides)
        )

    @staticmethod
    def empty() -> "Polygon":
        """The empty polygon."""
        return Polygon([])

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #
    @property
    def vertices(self) -> List[Point]:
        """The vertices in counter-clockwise order (a copy)."""
        return list(self._vertices)

    def __len__(self) -> int:
        return len(self._vertices)

    def is_empty(self) -> bool:
        """Return ``True`` when the polygon has no interior."""
        return len(self._vertices) < 3 or self.area() <= 0.0

    def edges(self) -> List[Segment]:
        """The boundary edges, in order."""
        n = len(self._vertices)
        if n < 2:
            return []
        return [Segment(self._vertices[i], self._vertices[(i + 1) % n]) for i in range(n)]

    # ------------------------------------------------------------------ #
    # measurements
    # ------------------------------------------------------------------ #
    def area(self) -> float:
        """Unsigned area (shoelace formula)."""
        if len(self._vertices) < 3:
            return 0.0
        return abs(_signed_area(self._vertices))

    def perimeter(self) -> float:
        """Total boundary length."""
        return sum(edge.length for edge in self.edges())

    def centroid(self) -> Point:
        """Area centroid (falls back to the vertex mean for degenerate polygons)."""
        n = len(self._vertices)
        if n == 0:
            raise ValueError("centroid of an empty polygon is undefined")
        a = _signed_area(self._vertices)
        if n < 3 or abs(a) < 1e-15:
            sx = sum(p.x for p in self._vertices)
            sy = sum(p.y for p in self._vertices)
            return Point(sx / n, sy / n)
        cx = 0.0
        cy = 0.0
        for i in range(n):
            p = self._vertices[i]
            q = self._vertices[(i + 1) % n]
            w = p.x * q.y - q.x * p.y
            cx += (p.x + q.x) * w
            cy += (p.y + q.y) * w
        return Point(cx / (6.0 * a), cy / (6.0 * a))

    def bounding_rect(self) -> Rect:
        """Axis-aligned bounding rectangle."""
        return Rect.from_points(self._vertices)

    # ------------------------------------------------------------------ #
    # predicates
    # ------------------------------------------------------------------ #
    def contains_point(self, p: Point, tol: float = 1e-9) -> bool:
        """Point-in-polygon test (boundary points count as inside)."""
        n = len(self._vertices)
        if n < 3:
            return False
        # Boundary check first so ray crossing corner cases do not matter.
        for edge in self.edges():
            if edge.distance_to_point(p) <= tol:
                return True
        inside = False
        j = n - 1
        for i in range(n):
            vi = self._vertices[i]
            vj = self._vertices[j]
            if (vi.y > p.y) != (vj.y > p.y):
                x_cross = (vj.x - vi.x) * (p.y - vi.y) / (vj.y - vi.y) + vi.x
                if p.x < x_cross:
                    inside = not inside
            j = i
        return inside

    def max_distance_from(self, origin: Point) -> float:
        """Largest distance from ``origin`` to any vertex.

        The UV-cell construction uses this as the bound ``d`` of Lemma 2
        (I-pruning): the possible region boundary is made of concave arcs and
        straight domain edges, so the farthest boundary point from the
        object's centre is always a vertex of the polygonal approximation.
        """
        if not self._vertices:
            raise ValueError("polygon has no vertices")
        return max(origin.distance_to(v) for v in self._vertices)

    def min_distance_from(self, origin: Point) -> float:
        """Smallest distance from ``origin`` to the polygon boundary (0 if inside)."""
        if not self._vertices:
            raise ValueError("polygon has no vertices")
        if self.contains_point(origin):
            return 0.0
        return min(edge.distance_to_point(origin) for edge in self.edges())

    def intersects_rect(self, rect: Rect) -> bool:
        """Conservative polygon/rectangle overlap test."""
        if self.is_empty():
            return False
        if not self.bounding_rect().intersects(rect):
            return False
        if any(rect.contains_point(v) for v in self._vertices):
            return True
        if any(self.contains_point(c) for c in rect.corners()):
            return True
        rect_edges = Polygon.from_rect(rect).edges()
        return any(pe.intersects(re) for pe in self.edges() for re in rect_edges)

    # ------------------------------------------------------------------ #
    # misc
    # ------------------------------------------------------------------ #
    def translated(self, offset: Point) -> "Polygon":
        """Polygon translated by ``offset``."""
        return Polygon(v + offset for v in self._vertices)

    def sample_interior(self, resolution: int) -> List[Point]:
        """Lattice points of the bounding box that fall inside the polygon."""
        if self.is_empty():
            return []
        return [
            p
            for p in self.bounding_rect().sample_grid(resolution)
            if self.contains_point(p)
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Polygon({len(self._vertices)} vertices, area={self.area():.3f})"


def _signed_area(vertices: Sequence[Point]) -> float:
    total = 0.0
    n = len(vertices)
    for i in range(n):
        p = vertices[i]
        q = vertices[(i + 1) % n]
        total += p.x * q.y - q.x * p.y
    return total / 2.0


def _dedupe_consecutive(vertices: List[Point], tol: float = 1e-12) -> List[Point]:
    if not vertices:
        return []
    result = [vertices[0]]
    for v in vertices[1:]:
        if not v.is_close(result[-1], tol=tol):
            result.append(v)
    if len(result) > 1 and result[0].is_close(result[-1], tol=tol):
        result.pop()
    return result
