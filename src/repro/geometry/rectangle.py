"""Axis-aligned rectangles.

Rectangles serve three roles in the library:

* the square *domain* ``D`` that bounds the UV-diagram,
* the quad-tree grid cells of the UV-index (Section V),
* minimum bounding rectangles (MBRs) in the R-tree substrate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Tuple

from repro.geometry.point import Point


@dataclass(frozen=True)
class Rect:
    """Closed axis-aligned rectangle ``[xmin, xmax] x [ymin, ymax]``."""

    xmin: float
    ymin: float
    xmax: float
    ymax: float

    def __post_init__(self) -> None:
        if self.xmin > self.xmax or self.ymin > self.ymax:
            raise ValueError(
                f"malformed rectangle: ({self.xmin}, {self.ymin}, {self.xmax}, {self.ymax})"
            )

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @staticmethod
    def from_points(points: Iterable[Point]) -> "Rect":
        """Bounding rectangle of a non-empty point collection."""
        pts = list(points)
        if not pts:
            raise ValueError("cannot bound an empty point set")
        xs = [p.x for p in pts]
        ys = [p.y for p in pts]
        return Rect(min(xs), min(ys), max(xs), max(ys))

    @staticmethod
    def from_center(center: Point, half_width: float, half_height: float) -> "Rect":
        """Rectangle centred at ``center`` with the given half extents."""
        return Rect(
            center.x - half_width,
            center.y - half_height,
            center.x + half_width,
            center.y + half_height,
        )

    @staticmethod
    def square(origin: Point, side: float) -> "Rect":
        """Square with lower-left corner ``origin`` and the given ``side``."""
        return Rect(origin.x, origin.y, origin.x + side, origin.y + side)

    # ------------------------------------------------------------------ #
    # geometry
    # ------------------------------------------------------------------ #
    @property
    def width(self) -> float:
        return self.xmax - self.xmin

    @property
    def height(self) -> float:
        return self.ymax - self.ymin

    @property
    def center(self) -> Point:
        return Point((self.xmin + self.xmax) / 2.0, (self.ymin + self.ymax) / 2.0)

    def area(self) -> float:
        """Area of the rectangle."""
        return self.width * self.height

    def perimeter(self) -> float:
        """Perimeter of the rectangle (used by R*-style split heuristics)."""
        return 2.0 * (self.width + self.height)

    def corners(self) -> List[Point]:
        """The four corners, counter-clockwise from the lower-left."""
        return [
            Point(self.xmin, self.ymin),
            Point(self.xmax, self.ymin),
            Point(self.xmax, self.ymax),
            Point(self.xmin, self.ymax),
        ]

    # ------------------------------------------------------------------ #
    # predicates
    # ------------------------------------------------------------------ #
    def contains_point(self, p: Point, tol: float = 0.0) -> bool:
        """Return ``True`` when ``p`` lies inside or on the boundary."""
        return (
            self.xmin - tol <= p.x <= self.xmax + tol
            and self.ymin - tol <= p.y <= self.ymax + tol
        )

    def contains_rect(self, other: "Rect") -> bool:
        """Return ``True`` when ``other`` is fully inside this rectangle."""
        return (
            self.xmin <= other.xmin
            and self.ymin <= other.ymin
            and self.xmax >= other.xmax
            and self.ymax >= other.ymax
        )

    def intersects(self, other: "Rect") -> bool:
        """Return ``True`` when the two closed rectangles overlap."""
        return not (
            self.xmax < other.xmin
            or other.xmax < self.xmin
            or self.ymax < other.ymin
            or other.ymax < self.ymin
        )

    def intersects_circle(self, center: Point, radius: float) -> bool:
        """Return ``True`` when the rectangle overlaps the closed disk."""
        return self.min_distance_to_point(center) <= radius

    # ------------------------------------------------------------------ #
    # distances
    # ------------------------------------------------------------------ #
    def min_distance_to_point(self, p: Point) -> float:
        """Minimum distance from ``p`` to the rectangle (zero if inside)."""
        dx = max(self.xmin - p.x, 0.0, p.x - self.xmax)
        dy = max(self.ymin - p.y, 0.0, p.y - self.ymax)
        return math.hypot(dx, dy)

    def max_distance_to_point(self, p: Point) -> float:
        """Maximum distance from ``p`` to any point of the rectangle."""
        dx = max(abs(p.x - self.xmin), abs(p.x - self.xmax))
        dy = max(abs(p.y - self.ymin), abs(p.y - self.ymax))
        return math.hypot(dx, dy)

    # ------------------------------------------------------------------ #
    # combination
    # ------------------------------------------------------------------ #
    def union(self, other: "Rect") -> "Rect":
        """Smallest rectangle containing both rectangles."""
        return Rect(
            min(self.xmin, other.xmin),
            min(self.ymin, other.ymin),
            max(self.xmax, other.xmax),
            max(self.ymax, other.ymax),
        )

    def intersection(self, other: "Rect") -> "Rect | None":
        """Overlap of two rectangles, or ``None`` when they are disjoint."""
        xmin = max(self.xmin, other.xmin)
        ymin = max(self.ymin, other.ymin)
        xmax = min(self.xmax, other.xmax)
        ymax = min(self.ymax, other.ymax)
        if xmin > xmax or ymin > ymax:
            return None
        return Rect(xmin, ymin, xmax, ymax)

    def overlap_area(self, other: "Rect") -> float:
        """Area of the overlap of two rectangles (zero when disjoint)."""
        inter = self.intersection(other)
        return inter.area() if inter is not None else 0.0

    def expanded(self, margin: float) -> "Rect":
        """Rectangle grown by ``margin`` on every side."""
        return Rect(
            self.xmin - margin, self.ymin - margin, self.xmax + margin, self.ymax + margin
        )

    def enlargement(self, other: "Rect") -> float:
        """Area increase needed for this rectangle to cover ``other``.

        This is the classic R-tree ``ChooseSubtree`` metric.
        """
        return self.union(other).area() - self.area()

    # ------------------------------------------------------------------ #
    # quad-tree support
    # ------------------------------------------------------------------ #
    def quarters(self) -> Tuple["Rect", "Rect", "Rect", "Rect"]:
        """Split into four equal quadrants: SW, SE, NW, NE.

        Used by the UV-index when a grid node splits (Algorithm 4, Step 7).
        """
        cx, cy = self.center.x, self.center.y
        return (
            Rect(self.xmin, self.ymin, cx, cy),
            Rect(cx, self.ymin, self.xmax, cy),
            Rect(self.xmin, cy, cx, self.ymax),
            Rect(cx, cy, self.xmax, self.ymax),
        )

    def sample_grid(self, resolution: int) -> List[Point]:
        """Return a ``resolution x resolution`` lattice of points inside the rectangle."""
        if resolution < 2:
            raise ValueError("resolution must be at least 2")
        xs = [self.xmin + self.width * i / (resolution - 1) for i in range(resolution)]
        ys = [self.ymin + self.height * i / (resolution - 1) for i in range(resolution)]
        return [Point(x, y) for y in ys for x in xs]
