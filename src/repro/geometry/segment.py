"""Line segments and segment predicates.

Segments are used by the polygon machinery (edge walks during curve
clipping) and by the "road-like" dataset generators that place object
centres along polylines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.geometry.point import Point, cross


@dataclass(frozen=True)
class Segment:
    """Closed line segment between two endpoints."""

    start: Point
    end: Point

    @property
    def length(self) -> float:
        """Length of the segment."""
        return self.start.distance_to(self.end)

    @property
    def midpoint(self) -> Point:
        """Midpoint of the segment."""
        return self.start.midpoint(self.end)

    def direction(self) -> Point:
        """Unit direction vector from ``start`` to ``end``."""
        return (self.end - self.start).normalized()

    def point_at(self, t: float) -> Point:
        """Point at parameter ``t`` (``0`` = start, ``1`` = end)."""
        return Point(
            self.start.x + (self.end.x - self.start.x) * t,
            self.start.y + (self.end.y - self.start.y) * t,
        )

    def distance_to_point(self, p: Point) -> float:
        """Euclidean distance from ``p`` to the closest point of the segment."""
        return p.distance_to(self.closest_point(p))

    def closest_point(self, p: Point) -> Point:
        """The point of the segment closest to ``p``."""
        d = self.end - self.start
        denom = d.squared_norm()
        # repro-lint: ignore[float-eq] -- exact zero (a degenerate point segment) guards the division
        if denom == 0.0:
            return self.start
        t = ((p.x - self.start.x) * d.x + (p.y - self.start.y) * d.y) / denom
        t = max(0.0, min(1.0, t))
        return self.point_at(t)

    def side_of(self, p: Point) -> float:
        """Signed area test: positive when ``p`` is left of ``start -> end``."""
        return cross(self.end - self.start, p - self.start)

    def intersects(self, other: "Segment") -> bool:
        """Return ``True`` when the two closed segments intersect."""
        return self.intersection(other) is not None

    def intersection(self, other: "Segment") -> Optional[Point]:
        """Intersection point of two segments, or ``None``.

        Collinear overlapping segments return one shared endpoint when an
        endpoint of one lies on the other; fully interior overlaps return the
        midpoint of the overlap's projection, which is sufficient for the
        dataset generators that only need *an* intersection witness.
        """
        p, r = self.start, self.end - self.start
        q, s = other.start, other.end - other.start
        denom = cross(r, s)
        qp = q - p
        if abs(denom) < 1e-15:
            if abs(cross(qp, r)) > 1e-12:
                return None
            # Collinear: check for overlap along the common line.
            rr = r.squared_norm()
            # repro-lint: ignore[float-eq] -- exact zero (a degenerate point segment) guards the division
            if rr == 0.0:
                return self.start if other.distance_to_point(self.start) < 1e-12 else None
            t0 = (qp.x * r.x + qp.y * r.y) / rr
            t1 = t0 + (s.x * r.x + s.y * r.y) / rr
            lo, hi = min(t0, t1), max(t0, t1)
            lo = max(lo, 0.0)
            hi = min(hi, 1.0)
            if lo > hi:
                return None
            return self.point_at((lo + hi) / 2.0)
        t = cross(qp, s) / denom
        u = cross(qp, r) / denom
        if -1e-12 <= t <= 1.0 + 1e-12 and -1e-12 <= u <= 1.0 + 1e-12:
            return self.point_at(min(max(t, 0.0), 1.0))
        return None

    def sample(self, count: int) -> List[Point]:
        """Return ``count`` points evenly spaced along the segment (inclusive)."""
        if count < 2:
            raise ValueError("count must be at least 2")
        return [self.point_at(i / (count - 1)) for i in range(count)]


def polyline_length(points: List[Point]) -> float:
    """Total length of the polyline through ``points``."""
    return sum(points[i].distance_to(points[i + 1]) for i in range(len(points) - 1))


def sample_polyline(points: List[Point], count: int) -> List[Point]:
    """Sample ``count`` points spread evenly along a polyline by arc length."""
    if len(points) < 2:
        raise ValueError("polyline needs at least two vertices")
    if count < 1:
        raise ValueError("count must be positive")
    total = polyline_length(points)
    # repro-lint: ignore[float-eq] -- exact zero (all vertices coincide) guards the arc-length division
    if total == 0.0:
        return [points[0]] * count
    targets = [total * i / max(count - 1, 1) for i in range(count)]
    samples: List[Point] = []
    seg_index = 0
    accumulated = 0.0
    for target in targets:
        while seg_index < len(points) - 2 and accumulated + points[seg_index].distance_to(
            points[seg_index + 1]
        ) < target:
            accumulated += points[seg_index].distance_to(points[seg_index + 1])
            seg_index += 1
        seg = Segment(points[seg_index], points[seg_index + 1])
        remaining = target - accumulated
        t = remaining / seg.length if seg.length > 0 else 0.0
        samples.append(seg.point_at(min(max(t, 0.0), 1.0)))
    return samples
