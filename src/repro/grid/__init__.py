"""Uniform grid index baseline.

The paper notes that besides the R-tree, a simple grid can index uncertainty
regions (Mokbel et al., VLDB'06) but suffers from the same multi-cell /
multi-page retrieval overhead for nearest-neighbour search.  This package
provides that baseline for completeness and for the ablation benchmarks.
"""

from repro.grid.uniform_grid import UniformGridIndex, GridPNN

__all__ = ["UniformGridIndex", "GridPNN"]
