"""A uniform grid over uncertainty regions and a PNN evaluator on top of it.

Each grid cell keeps, on simulated disk pages, the ids and MBCs of the
objects whose uncertainty regions intersect the cell.  PNN evaluation
retrieves the query's cell, derives ``d_minmax`` from it, and expands to
neighbouring cells until no unseen cell can contain a closer object.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.geometry.circle import Circle
from repro.geometry.point import Point
from repro.geometry.rectangle import Rect
from repro.queries.pipeline import evaluate_pnn
from repro.queries.probability_kernel import DEFAULT_PROB_KERNEL, RingCache
from repro.queries.result import PNNResult
from repro.storage.disk import DiskManager
from repro.storage.object_store import ObjectStore
from repro.uncertain.objects import UncertainObject


class UniformGridIndex:
    """A fixed-resolution grid over the domain.

    Args:
        domain: the indexed domain rectangle.
        resolution: number of cells per axis.
        disk: disk manager for the per-cell page lists.
    """

    def __init__(self, domain: Rect, resolution: int, disk: Optional[DiskManager] = None):
        if resolution < 1:
            raise ValueError("resolution must be positive")
        self.domain = domain
        self.resolution = resolution
        self.disk = disk if disk is not None else DiskManager()
        self._cell_pages: Dict[Tuple[int, int], List[int]] = {}
        self.size = 0

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def build(self, objects: Sequence[UncertainObject]) -> None:
        """Assign every object to all cells its uncertainty region intersects."""
        staged: Dict[Tuple[int, int], List[Tuple[int, Circle]]] = {}
        for obj in objects:
            for cell in self._cells_overlapping(obj.region):
                staged.setdefault(cell, []).append((obj.oid, obj.mbc()))
        for cell, entries in staged.items():
            page_ids: List[int] = []
            page = None
            for entry in entries:
                if page is None or page.is_full():
                    page = self.disk.allocate_page()
                    page_ids.append(page.page_id)
                page.add(entry)
            self._cell_pages[cell] = page_ids
        self.size = len(objects)

    def insert(self, obj: UncertainObject) -> None:
        """Add one object to every cell its uncertainty region intersects."""
        entry = (obj.oid, obj.mbc())
        for cell in self._cells_overlapping(obj.region):
            page_ids = self._cell_pages.setdefault(cell, [])
            page = self.disk.peek_page(page_ids[-1]) if page_ids else None
            if page is None or page.is_full():
                page = self.disk.allocate_page()
                page_ids.append(page.page_id)
            page.add(entry)
        self.size += 1

    def remove(self, oid: int) -> bool:
        """Drop every cell entry of one object; returns ``True`` if found.

        Affected cells are repacked: the surviving entries are compacted into
        the leading pages and emptied pages are freed, so insert/delete churn
        does not grow a cell's page list (and hence its query I/O) without
        bound.
        """
        removed = False
        for cell in list(self._cell_pages):
            page_ids = self._cell_pages[cell]
            entries = [
                entry
                for page_id in page_ids
                for entry in self.disk.peek_page(page_id).entries
            ]
            survivors = [entry for entry in entries if entry[0] != oid]
            if len(survivors) == len(entries):
                continue
            removed = True
            kept_pages: List[int] = []
            for page_id in page_ids:
                if not survivors:
                    self.disk.free_page(page_id)
                    continue
                page = self.disk.peek_page(page_id)
                page.entries, survivors = (
                    survivors[: page.capacity],
                    survivors[page.capacity:],
                )
                kept_pages.append(page_id)
            if kept_pages:
                self._cell_pages[cell] = kept_pages
            else:
                del self._cell_pages[cell]
        if removed:
            self.size = max(0, self.size - 1)
        return removed

    # ------------------------------------------------------------------ #
    # persistence (diagram snapshots)
    # ------------------------------------------------------------------ #
    def snapshot_state(self) -> Dict:
        """JSON-ready state: the cell -> page-id directory plus the knobs."""
        return {
            "resolution": self.resolution,
            "size": self.size,
            "cells": [
                [cell[0], cell[1], list(page_ids)]
                for cell, page_ids in sorted(self._cell_pages.items())
            ],
        }

    @classmethod
    def from_snapshot(cls, state: Dict, domain: Rect, disk: DiskManager) -> "UniformGridIndex":
        """Rebuild a grid over already-persisted cell pages (no allocation)."""
        grid = cls(domain, resolution=state["resolution"], disk=disk)
        grid.size = state["size"]
        grid._cell_pages = {
            (cx, cy): list(page_ids) for cx, cy, page_ids in state["cells"]
        }
        return grid

    # ------------------------------------------------------------------ #
    # cell arithmetic
    # ------------------------------------------------------------------ #
    def cell_of(self, p: Point) -> Tuple[int, int]:
        """Grid coordinates of the cell containing ``p`` (clamped to the domain)."""
        cx = int((p.x - self.domain.xmin) / self.domain.width * self.resolution)
        cy = int((p.y - self.domain.ymin) / self.domain.height * self.resolution)
        cx = min(max(cx, 0), self.resolution - 1)
        cy = min(max(cy, 0), self.resolution - 1)
        return (cx, cy)

    def cell_rect(self, cell: Tuple[int, int]) -> Rect:
        """Rectangle covered by a cell."""
        width = self.domain.width / self.resolution
        height = self.domain.height / self.resolution
        return Rect(
            self.domain.xmin + cell[0] * width,
            self.domain.ymin + cell[1] * height,
            self.domain.xmin + (cell[0] + 1) * width,
            self.domain.ymin + (cell[1] + 1) * height,
        )

    def _cells_overlapping(self, circle: Circle) -> List[Tuple[int, int]]:
        xmin, ymin, xmax, ymax = circle.bounding_box()
        lo = self.cell_of(Point(xmin, ymin))
        hi = self.cell_of(Point(xmax, ymax))
        cells = []
        for cx in range(lo[0], hi[0] + 1):
            for cy in range(lo[1], hi[1] + 1):
                if self.cell_rect((cx, cy)).intersects_circle(circle.center, circle.radius):
                    cells.append((cx, cy))
        return cells

    # ------------------------------------------------------------------ #
    # retrieval
    # ------------------------------------------------------------------ #
    def read_cell(self, cell: Tuple[int, int]) -> List[Tuple[int, Circle]]:
        """Entries of one cell, reading its pages (counted I/O)."""
        entries: List[Tuple[int, Circle]] = []
        for page_id in self._cell_pages.get(cell, []):
            entries.extend(self.disk.read_page(page_id).entries)
        return entries

    def cells_within(self, center: Point, radius: float) -> List[Tuple[int, int]]:
        """All cells whose rectangle intersects the disk ``Cir(center, radius)``."""
        return [
            cell
            for cell in self._all_cells()
            if self.cell_rect(cell).intersects_circle(center, radius)
        ]

    def _all_cells(self) -> List[Tuple[int, int]]:
        return [
            (cx, cy)
            for cx in range(self.resolution)
            for cy in range(self.resolution)
        ]


def grid_candidates(
    grid: UniformGridIndex, query: Point, cache=None
) -> List[Tuple[int, Circle]]:
    """Candidate ``(oid, MBC)`` pairs by expanding rings of cells around ``query``.

    When ``cache`` (a :class:`repro.engine.backend.BatchReadCache`) is given,
    each cell's page list is read -- and counted -- at most once per batch.
    """

    def read_cell(cell: Tuple[int, int]) -> List[Tuple[int, Circle]]:
        if cache is None:
            return grid.read_cell(cell)
        return cache.get(("grid-cell", cell), lambda: grid.read_cell(cell))

    seen_cells: Set[Tuple[int, int]] = set()
    seen_objects: Dict[int, Circle] = {}
    home = grid.cell_of(query)
    frontier = [home]
    best_minmax = math.inf

    ring = 0
    while frontier:
        for cell in frontier:
            if cell in seen_cells:
                continue
            seen_cells.add(cell)
            for oid, mbc in read_cell(cell):
                if oid not in seen_objects:
                    seen_objects[oid] = mbc
                    best_minmax = min(best_minmax, mbc.max_distance(query))
        ring += 1
        next_frontier = []
        for cell in _ring_cells(grid, home, ring):
            if cell in seen_cells:
                continue
            if grid.cell_rect(cell).min_distance_to_point(query) <= best_minmax:
                next_frontier.append(cell)
        frontier = next_frontier

    return [
        (oid, mbc)
        for oid, mbc in seen_objects.items()
        if mbc.min_distance(query) <= best_minmax + 1e-12
    ]


def _ring_cells(
    grid: UniformGridIndex, home: Tuple[int, int], ring: int
) -> List[Tuple[int, int]]:
    cells = []
    resolution = grid.resolution
    for dx in range(-ring, ring + 1):
        for dy in range(-ring, ring + 1):
            if max(abs(dx), abs(dy)) != ring:
                continue
            cx, cy = home[0] + dx, home[1] + dy
            if 0 <= cx < resolution and 0 <= cy < resolution:
                cells.append((cx, cy))
    return cells


class GridPNN:
    """PNN evaluation over a :class:`UniformGridIndex`."""

    def __init__(
        self,
        grid: UniformGridIndex,
        object_store: Optional[ObjectStore] = None,
        objects: Optional[Sequence[UncertainObject]] = None,
        prob_kernel: str = DEFAULT_PROB_KERNEL,
        ring_cache: Optional[RingCache] = None,
    ):
        if object_store is None and objects is None:
            raise ValueError("either an object store or in-memory objects are required")
        self.grid = grid
        self.object_store = object_store
        self.prob_kernel = prob_kernel
        self.ring_cache = ring_cache
        self._objects_by_id = {obj.oid: obj for obj in objects} if objects else {}

    def query(
        self,
        query: Point,
        compute_probabilities: bool = True,
        threshold: float = 0.0,
        top_k: "int | None" = None,
    ) -> PNNResult:
        """Evaluate a PNN query by expanding rings of cells around the query.

        ``threshold`` / ``top_k`` push early termination into the refinement
        step (probability-threshold and top-k PNN).
        """
        return evaluate_pnn(
            query,
            self._retrieve_candidates,
            self._fetch_objects,
            self.grid.disk.stats,
            compute_probabilities=compute_probabilities,
            prob_kernel=self.prob_kernel,
            ring_cache=self.ring_cache,
            threshold=threshold,
            top_k=top_k,
        )

    def _retrieve_candidates(self, query: Point) -> List[Tuple[int, Circle]]:
        return grid_candidates(self.grid, query)

    def _fetch_objects(self, oids: List[int]) -> List[UncertainObject]:
        if self.object_store is not None:
            return self.object_store.fetch_many(oids)
        return [self._objects_by_id[oid] for oid in oids]
