"""``repro.lint``: the project-invariant static analyzer.

The repo's load-bearing invariants -- bit-identical parallel replay,
counted I/O through :class:`~repro.storage.disk.DiskManager`, frozen
descriptor/config records, wire-format completeness, the readonly serving
guard, and lock discipline on shared router state -- are enforced here as
AST-level rules instead of review-time convention.  Run it as::

    repro lint                     # or: python -m repro.lint
    repro lint --list-rules        # the catalogue with rationales
    repro lint --select float-eq   # one rule
    repro lint --format json -o lint-report.json   # the CI artifact

Intentional violations are suppressed inline with a rationale::

    if radius == 0.0:  # repro-lint: ignore[float-eq] -- exact zero guards division

See :mod:`repro.lint.rules` for the catalogue and
:mod:`repro.lint.baseline` for bulk-adoption baselines.
"""

from repro.lint.driver import LintReport, lint_path
from repro.lint.findings import Finding
from repro.lint.registry import RULES, Rule, all_rules, register

__all__ = [
    "Finding",
    "LintReport",
    "RULES",
    "Rule",
    "all_rules",
    "lint_path",
    "register",
]
