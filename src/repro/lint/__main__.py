"""``python -m repro.lint`` entry point."""

import sys

from repro.lint.cli import main

sys.exit(main())
