"""Baseline files: accept today's known findings, block new ones.

A baseline is a JSON list of finding fingerprints (rule id + file +
normalized source line -- see :attr:`repro.lint.findings.Finding.fingerprint`),
so it survives line-number churn but expires the moment the offending line
itself changes.  The intended workflow mirrors mypy/ruff baselines:

* ``repro lint --write-baseline lint-baseline.json`` records the current
  findings;
* ``repro lint --baseline lint-baseline.json`` reports only findings that
  are *not* in the file (and exits non-zero only for those).

Prefer inline ``# repro-lint: ignore[rule] -- why`` suppressions for
intentional violations: they keep the rationale next to the code.  The
baseline exists for bulk adoption, not as a dumping ground.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Set

from repro.lint.findings import Finding, sort_findings

#: Schema marker of the baseline file.
BASELINE_VERSION = 1


def load_baseline(path: Path) -> Set[str]:
    """The set of baselined fingerprints recorded in ``path``."""
    data = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(data, dict) or data.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"{path} is not a repro-lint baseline "
            f"(expected a dict with version={BASELINE_VERSION})"
        )
    entries = data.get("findings", [])
    return {entry["fingerprint"] for entry in entries}


def write_baseline(path: Path, findings: List[Finding]) -> None:
    """Record ``findings`` as the accepted baseline at ``path``."""
    payload = {
        "version": BASELINE_VERSION,
        "findings": [
            {
                "fingerprint": finding.fingerprint,
                "rule": finding.rule_id,
                "path": finding.path,
                "source_line": finding.source_line,
            }
            for finding in sort_findings(findings)
        ],
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
