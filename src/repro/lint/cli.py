"""Command-line front end of the analyzer (``repro lint`` / ``python -m repro.lint``)."""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.lint.baseline import load_baseline, write_baseline
from repro.lint.driver import lint_path
from repro.lint.findings import render_json_report
from repro.lint.registry import all_rules


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="project-invariant static analysis for the repro codebase",
    )
    parser.add_argument(
        "paths", nargs="*",
        help="directories or files to scan (default: the installed repro package)")
    parser.add_argument(
        "--select", action="append", metavar="RULE",
        help="run only these rule ids (repeatable)")
    parser.add_argument(
        "--format", choices=["text", "json"], default="text",
        help="report format on stdout (default: text)")
    parser.add_argument(
        "-o", "--output", metavar="FILE", default=None,
        help="also write the JSON report to FILE (the CI artifact)")
    parser.add_argument(
        "--baseline", metavar="FILE", default=None,
        help="drop findings recorded in this baseline file")
    parser.add_argument(
        "--write-baseline", metavar="FILE", default=None,
        help="record the current findings as the accepted baseline and exit 0")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue with rationales and exit")
    parser.add_argument(
        "-q", "--quiet", action="store_true",
        help="print findings only, no summary line")
    return parser


def _list_rules() -> int:
    for rule in all_rules():
        scope = ", ".join(rule.scope) if rule.scope else "(whole tree)"
        print(f"{rule.id}")
        print(f"  {rule.title}")
        print(f"  why   : {rule.rationale}")
        print(f"  scope : {scope}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        return _list_rules()

    baseline = None
    if args.baseline:
        try:
            baseline = load_baseline(Path(args.baseline))
        except (OSError, ValueError, KeyError) as exc:
            print(f"error: cannot read baseline {args.baseline}: {exc}",
                  file=sys.stderr)
            return 2

    targets = [Path(path) for path in args.paths] or [None]
    reports = []
    try:
        for target in targets:
            reports.append(lint_path(target, select=args.select, baseline=baseline))
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    findings = [finding for report in reports for finding in report.all_findings()]
    summary = {
        "files_scanned": sum(r.files_scanned for r in reports),
        "rules_run": max((r.rules_run for r in reports), default=0),
        "findings": len(findings),
        "suppressed": sum(r.suppressed for r in reports),
        "baselined": sum(r.baselined for r in reports),
    }

    if args.write_baseline:
        write_baseline(Path(args.write_baseline), findings)
        print(f"wrote baseline with {len(findings)} finding(s) to "
              f"{args.write_baseline}")
        return 0

    if args.output:
        Path(args.output).write_text(
            render_json_report(findings, summary) + "\n", encoding="utf-8")

    if args.format == "json":
        print(render_json_report(findings, summary))
    else:
        for finding in findings:
            print(finding.render())
        if not args.quiet:
            status = "clean" if not findings else f"{len(findings)} finding(s)"
            print(
                f"repro lint: {status} -- {summary['files_scanned']} files, "
                f"{summary['rules_run']} rules, "
                f"{summary['suppressed']} suppressed, "
                f"{summary['baselined']} baselined"
            )
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
