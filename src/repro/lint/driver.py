"""The lint driver: collect files, run every rule, filter, report.

The driver owns the mechanics shared by all rules: walking the tree,
parsing each file exactly once into a :class:`~repro.lint.project.SourceFile`,
building the cross-module :class:`~repro.lint.project.ProjectModel`, running
per-file and project-wide passes, and then filtering the raw findings
through inline suppressions and the optional baseline.  Rules stay pure
functions from ASTs to findings.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Set

from repro.lint.findings import Finding, sort_findings
from repro.lint.project import ProjectModel, SourceFile
from repro.lint.registry import Rule, all_rules

#: Directories never scanned.
_SKIPPED_DIRS = {"__pycache__"}


def default_root() -> Path:
    """The installed ``repro`` package directory (the default scan target)."""
    return Path(__file__).resolve().parent.parent


def resolve_root(path: Path) -> Path:
    """Normalize a CLI path to the package root the relpaths hang off.

    Passing ``src`` or the repository root finds the ``repro`` package
    inside it, so ``repro lint src`` and ``repro lint`` agree on scopes
    like ``core/construction.py``.
    """
    path = path.resolve()
    if path.is_dir():
        for candidate in (path / "repro", path / "src" / "repro"):
            if candidate.is_dir() and (candidate / "__init__.py").exists():
                return candidate
    return path


def collect_files(root: Path) -> List[Path]:
    """Every ``.py`` file under ``root``, in deterministic order."""
    if root.is_file():
        return [root]
    return sorted(
        path
        for path in root.rglob("*.py")
        if not any(part in _SKIPPED_DIRS for part in path.parts)
    )


@dataclass
class LintReport:
    """Everything one lint run produced."""

    findings: List[Finding] = field(default_factory=list)
    parse_failures: List[Finding] = field(default_factory=list)
    files_scanned: int = 0
    rules_run: int = 0
    suppressed: int = 0
    baselined: int = 0

    @property
    def exit_code(self) -> int:
        """Non-zero when anything (including a parse failure) survived."""
        return 1 if (self.findings or self.parse_failures) else 0

    def all_findings(self) -> List[Finding]:
        """Parse failures first, then rule findings, in report order."""
        return sort_findings(self.parse_failures) + sort_findings(self.findings)

    def summary(self) -> dict:
        """The JSON-report summary block."""
        return {
            "files_scanned": self.files_scanned,
            "rules_run": self.rules_run,
            "findings": len(self.findings) + len(self.parse_failures),
            "suppressed": self.suppressed,
            "baselined": self.baselined,
        }


def load_project(root: Path) -> "tuple[ProjectModel, List[Finding]]":
    """Parse every file under ``root``; syntax errors become findings."""
    sources: List[SourceFile] = []
    failures: List[Finding] = []
    for path in collect_files(root):
        relpath = (
            path.relative_to(root).as_posix() if root.is_dir() else path.name
        )
        try:
            sources.append(SourceFile.load(path, relpath))
        except SyntaxError as exc:
            failures.append(
                Finding(
                    rule_id="parse-error",
                    path=relpath,
                    line=exc.lineno or 1,
                    col=(exc.offset or 1) - 1,
                    message=f"file does not parse: {exc.msg}",
                    hint="repro lint analyses ASTs; fix the syntax error first",
                )
            )
    return ProjectModel(sources), failures


def run_rules(
    project: ProjectModel, rules: Sequence[Rule]
) -> "tuple[List[Finding], int]":
    """Run every rule over the project, applying inline suppressions."""
    raw: List[Finding] = []
    for rule in rules:
        for source in project.files:
            if rule.applies_to(source):
                raw.extend(rule.check_file(source, project))
        raw.extend(rule.check_project(project))

    kept: List[Finding] = []
    suppressed = 0
    for finding in raw:
        source = project.find(finding.path)
        if source is not None and source.is_suppressed(finding.rule_id, finding.line):
            suppressed += 1
        else:
            kept.append(finding)
    return kept, suppressed


def lint_path(
    target: Optional[Path] = None,
    rules: Optional[Sequence[Rule]] = None,
    select: Optional[Iterable[str]] = None,
    baseline: Optional[Set[str]] = None,
) -> LintReport:
    """Lint one tree and return the filtered report.

    Args:
        target: directory (or file) to scan; defaults to the installed
            ``repro`` package.
        rules: explicit rule instances (tests inject single rules here).
        select: restrict the registered rules to these ids.
        baseline: fingerprints to drop from the report (see
            :mod:`repro.lint.baseline`).
    """
    root = resolve_root(target) if target is not None else default_root()
    chosen: Sequence[Rule] = list(rules) if rules is not None else all_rules()
    if select is not None:
        wanted = set(select)
        unknown = wanted - {rule.id for rule in chosen}
        if unknown:
            raise ValueError(f"unknown rule id(s): {', '.join(sorted(unknown))}")
        chosen = [rule for rule in chosen if rule.id in wanted]

    project, parse_failures = load_project(root)
    findings, suppressed = run_rules(project, chosen)

    baselined = 0
    if baseline:
        surviving = []
        for finding in findings:
            if finding.fingerprint in baseline:
                baselined += 1
            else:
                surviving.append(finding)
        findings = surviving

    return LintReport(
        findings=sort_findings(findings),
        parse_failures=sort_findings(parse_failures),
        files_scanned=len(project.files) + len(parse_failures),
        rules_run=len(chosen),
        suppressed=suppressed,
        baselined=baselined,
    )


def parse_snippet(code: str, relpath: str = "snippet.py") -> SourceFile:
    """A :class:`SourceFile` for inline code (the fixture-test helper)."""
    import textwrap

    text = textwrap.dedent(code)
    lines = text.splitlines()
    from repro.lint.project import parse_suppressions

    return SourceFile(
        path=Path(relpath),
        relpath=relpath,
        text=text,
        tree=ast.parse(text),
        lines=lines,
        suppressions=parse_suppressions(lines),
    )
