"""Structured findings: what a rule reports and how it is rendered.

A :class:`Finding` pins one defect to a ``file:line:col``, names the rule
that raised it, and carries a human message plus an optional fix hint.  The
*fingerprint* identifies the finding across unrelated line-number churn --
it hashes the rule id, the file, and the normalized source line -- which is
what makes baseline files (see :mod:`repro.lint.baseline`) stable while the
file above a known finding is edited.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List


@dataclass(frozen=True)
class Finding:
    """One defect reported by one rule.

    Attributes:
        rule_id: registry id of the rule that raised the finding.
        path: file path relative to the scan root (posix separators).
        line: 1-based line of the offending construct.
        col: 0-based column of the offending construct.
        message: what is wrong, in one sentence.
        hint: how to fix it (or how to suppress it when intentional).
        source_line: the stripped text of the offending line, for reports
            and for the baseline fingerprint.
    """

    rule_id: str
    path: str
    line: int
    col: int = 0
    message: str = ""
    hint: str = ""
    source_line: str = field(default="", compare=False)

    @property
    def fingerprint(self) -> str:
        """A line-number-independent identity for baselining."""
        basis = f"{self.rule_id}:{self.path}:{' '.join(self.source_line.split())}"
        return hashlib.sha1(basis.encode("utf-8")).hexdigest()[:16]

    def render(self) -> str:
        """The one-line ``path:line:col: id message`` form of the finding."""
        text = f"{self.path}:{self.line}:{self.col + 1}: {self.rule_id}: {self.message}"
        if self.hint:
            text += f" [hint: {self.hint}]"
        return text

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible state (the report artifact format)."""
        return {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "hint": self.hint,
            "source_line": self.source_line,
            "fingerprint": self.fingerprint,
        }


def sort_findings(findings: List[Finding]) -> List[Finding]:
    """Deterministic report order: by file, then position, then rule id."""
    return sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule_id))


def render_json_report(findings: List[Finding], summary: Dict[str, Any]) -> str:
    """The machine-readable report (uploaded as a CI artifact)."""
    return json.dumps(
        {
            "summary": summary,
            "findings": [finding.to_dict() for finding in sort_findings(findings)],
        },
        indent=2,
        sort_keys=True,
    )
