"""The project model: parsed source files plus cross-module lookups.

Per-file rules see one :class:`SourceFile` (text, AST, suppression map);
project rules see the whole :class:`ProjectModel`, which is how invariants
*between* modules -- "every descriptor registered for the wire decoder has a
``to_dict``/``from_dict`` pair" -- become checkable without importing any
project code.  Everything here is pure ``ast``: linting never executes the
target modules.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Set

#: ``# repro-lint: ignore[rule-a,rule-b]`` or ``# repro-lint: ignore`` (all
#: rules).  Anything after the bracket (e.g. ``-- why it is fine``) is the
#: author's rationale and is ignored by the parser but expected by reviewers.
#: A trailing comment suppresses its own line; a standalone comment line
#: suppresses the line that follows it.
_SUPPRESSION = re.compile(r"#\s*repro-lint:\s*ignore(?:\[([^\]]*)\])?")

#: The marker meaning "every rule" in a suppression set.
ALL_RULES = "*"


def parse_suppressions(lines: List[str]) -> Dict[int, Set[str]]:
    """Map 1-based line numbers to the rule ids suppressed on that line."""
    suppressions: Dict[int, Set[str]] = {}
    for number, line in enumerate(lines, start=1):
        if "repro-lint" not in line:
            continue
        match = _SUPPRESSION.search(line)
        if match is None:
            continue
        listed = match.group(1)
        if listed is None:
            rules = {ALL_RULES}
        else:
            rules = {rule.strip() for rule in listed.split(",") if rule.strip()}
        # A comment-only line shields the next line (the code it annotates);
        # a trailing comment shields its own.
        target = number + 1 if line.lstrip().startswith("#") else number
        suppressions.setdefault(target, set()).update(rules)
    return suppressions


@dataclass
class SourceFile:
    """One parsed module of the scanned tree."""

    path: Path
    relpath: str
    text: str
    tree: ast.Module
    lines: List[str] = field(default_factory=list)
    suppressions: Dict[int, Set[str]] = field(default_factory=dict)

    @classmethod
    def load(cls, path: Path, relpath: str) -> "SourceFile":
        """Read and parse one file (raises ``SyntaxError`` on broken code)."""
        text = path.read_text(encoding="utf-8")
        lines = text.splitlines()
        return cls(
            path=path,
            relpath=relpath,
            text=text,
            tree=ast.parse(text, filename=str(path)),
            lines=lines,
            suppressions=parse_suppressions(lines),
        )

    def line_text(self, line: int) -> str:
        """The stripped source text of a 1-based line (for fingerprints)."""
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        """Whether ``rule_id`` is suppressed on ``line``."""
        listed = self.suppressions.get(line)
        if listed is None:
            return False
        return ALL_RULES in listed or rule_id in listed

    def classes(self) -> Dict[str, ast.ClassDef]:
        """Top-level class definitions by name."""
        return {
            node.name: node
            for node in self.tree.body
            if isinstance(node, ast.ClassDef)
        }


class ProjectModel:
    """Every scanned file, addressable by its root-relative path."""

    def __init__(self, files: List[SourceFile]) -> None:
        self.files = files
        self.by_relpath: Dict[str, SourceFile] = {
            source.relpath: source for source in files
        }

    def find(self, relpath: str) -> Optional[SourceFile]:
        """The file at ``relpath``, or ``None`` when it is outside the scan."""
        return self.by_relpath.get(relpath)

    def matching(self, prefix: str) -> List[SourceFile]:
        """Files whose relpath equals ``prefix`` or lives under it."""
        return [
            source
            for source in self.files
            if source.relpath == prefix or source.relpath.startswith(prefix)
        ]
