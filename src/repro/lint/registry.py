"""The rule registry: every check is one named, documented, scoped rule.

A rule declares *where* it applies (``scope`` -- root-relative path
prefixes) and *what* it checks (``check_file`` for single-module invariants,
``check_project`` for cross-module ones).  Registration happens at import
time via the :func:`register` decorator; :mod:`repro.lint.rules` imports
every rule module, so ``all_rules()`` is complete as soon as the package is
imported.  The ids are part of the tool's interface: suppression comments
(``# repro-lint: ignore[rule-id]``), baselines, and the CLI's
``--select`` all speak rule ids.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Type

from repro.lint.findings import Finding
from repro.lint.project import ProjectModel, SourceFile


class Rule:
    """Base class of every lint rule.

    Class attributes:
        id: stable kebab-case identifier (suppressions and baselines use it).
        title: one-line name of the invariant.
        rationale: why the project enforces it (shown by ``--list-rules``).
        hint: default fix hint attached to findings.
        scope: root-relative path prefixes the rule applies to; empty means
            every scanned file.
    """

    id: str = ""
    title: str = ""
    rationale: str = ""
    hint: str = ""
    scope: tuple = ()

    def applies_to(self, source: SourceFile) -> bool:
        """Whether ``source`` is inside the rule's scope."""
        if not self.scope:
            return True
        return any(
            source.relpath == prefix or source.relpath.startswith(prefix)
            for prefix in self.scope
        )

    def check_file(self, source: SourceFile, project: ProjectModel) -> Iterable[Finding]:
        """Per-file pass; yield findings for ``source``."""
        return ()

    def check_project(self, project: ProjectModel) -> Iterable[Finding]:
        """Cross-module pass; runs once after every file is parsed."""
        return ()

    # ------------------------------------------------------------------ #
    # finding helper
    # ------------------------------------------------------------------ #
    def finding(
        self,
        source: SourceFile,
        line: int,
        col: int,
        message: str,
        hint: str = "",
    ) -> Finding:
        """Build a finding anchored in ``source`` with the rule's identity."""
        return Finding(
            rule_id=self.id,
            path=source.relpath,
            line=line,
            col=col,
            message=message,
            hint=hint or self.hint,
            source_line=source.line_text(line),
        )


#: id -> rule instance, populated by :func:`register`.
RULES: Dict[str, Rule] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: instantiate the rule and add it to the registry."""
    rule = cls()
    if not rule.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if rule.id in RULES:
        raise ValueError(f"duplicate rule id: {rule.id}")
    RULES[rule.id] = rule
    return cls


def all_rules() -> List[Rule]:
    """Every registered rule, in id order (importing the rules package)."""
    import repro.lint.rules  # noqa: F401 - importing registers the rules

    return [RULES[rule_id] for rule_id in sorted(RULES)]
