"""The rule catalogue: importing this package registers every rule.

One module per rule keeps each invariant's motivation, scope, and
implementation in one reviewable place; :func:`repro.lint.registry.all_rules`
imports this package so the registry is always complete.
"""

from repro.lint.rules import (  # noqa: F401 - imported for registration
    counted_io,
    determinism,
    error_discipline,
    float_eq,
    frozen_spec,
    lock_discipline,
    picklable_work,
    readonly_guard,
    shard_map_coherence,
    validated_replace,
    wal_ordering,
    wire_complete,
)
