"""Small AST helpers shared by the rule implementations."""

from __future__ import annotations

import ast
from typing import Iterator, Optional


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for nested Name/Attribute chains, else ``None``."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = dotted_name(node.value)
        if base is not None:
            return f"{base}.{node.attr}"
    return None


def call_name(node: ast.Call) -> Optional[str]:
    """Dotted name of a call target (``pool.map`` for ``pool.map(...)``)."""
    return dotted_name(node.func)


def is_constant(node: ast.AST, *values: object) -> bool:
    """Whether ``node`` is a literal equal (by identity) to one of ``values``."""
    return isinstance(node, ast.Constant) and any(
        node.value is value for value in values
    )


def is_float_literal(node: ast.AST) -> bool:
    """Whether ``node`` is a ``float`` constant (or unary minus of one)."""
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        node = node.operand
    return isinstance(node, ast.Constant) and type(node.value) is float


def walk_functions(tree: ast.AST) -> Iterator[ast.AST]:
    """Every function / async-function / lambda definition in ``tree``."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            yield node


def decorator_dataclass_frozen(node: ast.ClassDef) -> Optional[bool]:
    """``True``/``False`` when ``node`` is a dataclass (frozen or not),
    ``None`` when it is not a dataclass at all."""
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = dotted_name(target)
        if name in ("dataclass", "dataclasses.dataclass"):
            if isinstance(decorator, ast.Call):
                for keyword in decorator.keywords:
                    if keyword.arg == "frozen":
                        return is_constant(keyword.value, True)
            return False
    return None


def class_methods(node: ast.ClassDef) -> Iterator[ast.FunctionDef]:
    """Direct method definitions of a class body."""
    for item in node.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield item


def has_method(node: ast.ClassDef, *names: str) -> bool:
    """Whether the class body directly defines any of ``names``."""
    defined = {method.name for method in class_methods(node)}
    return any(name in defined for name in names)
