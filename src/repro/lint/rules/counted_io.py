"""Rule ``counted-io``: page content flows through ``DiskManager`` only.

The paper's headline metric is the *number of counted page accesses* per
query and per construction.  ``DiskManager.read_page`` / ``write_page`` /
``free_page`` are the counted path (and the buffer-pool integration point);
the :class:`~repro.storage.pagestore.PageStore` protocol methods
(``load_page`` / ``store_page`` / ``delete_page``) move raw page content and
count nothing.  A query or index module calling the store directly silently
deflates every reported I/O number and bypasses buffer-pool coherence.
"""

from __future__ import annotations

import ast
from typing import List

from repro.lint.findings import Finding
from repro.lint.project import ProjectModel, SourceFile
from repro.lint.registry import Rule, register

#: PageStore content methods (uncounted); DiskManager's counted equivalents.
_STORE_METHODS = {
    "load_page": "DiskManager.read_page",
    "store_page": "DiskManager.write_page",
    "delete_page": "DiskManager.free_page",
}

#: The persistence layer itself implements and fronts the store protocol,
#: and the fault-injection wrapper delegates to it by design.
_EXEMPT_PREFIXES = ("storage/", "lint/", "faults/")


@register
class CountedIORule(Rule):
    id = "counted-io"
    title = "query/backend code must not bypass DiskManager page accounting"
    rationale = (
        "the paper's reported metric is counted page accesses; PageStore "
        "methods move content without counting (or buffer-pool coherence)"
    )
    hint = (
        "call DiskManager.read_page/write_page/free_page (counted, "
        "pool-coherent) instead of the PageStore protocol methods"
    )

    def applies_to(self, source: SourceFile) -> bool:
        return not source.relpath.startswith(_EXEMPT_PREFIXES)

    def check_file(self, source: SourceFile, project: ProjectModel) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(source.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _STORE_METHODS
            ):
                counted = _STORE_METHODS[node.func.attr]
                findings.append(self.finding(
                    source, node.lineno, node.col_offset,
                    f"direct PageStore.{node.func.attr}() call bypasses the "
                    f"counted I/O path",
                    hint=f"use {counted} so the access is counted and the "
                         f"buffer pool stays coherent",
                ))
        return findings
