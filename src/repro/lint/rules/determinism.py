"""Rule ``determinism``: no iteration-order or RNG nondeterminism in
construction, parallel scheduling, or snapshot replay code.

Parallel builds are bit-identical to serial builds *because* every loop that
feeds the index runs in a canonical order (PR 3), and snapshot replay
re-creates structures in recorded order (PR 2).  A single ``for x in
some_set`` or ``sorted(..., key=id)`` silently breaks that contract on a
different Python process (hash randomization, allocation addresses), which
the parity tests only catch for the code paths they happen to cover.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from repro.lint.findings import Finding
from repro.lint.project import ProjectModel, SourceFile
from repro.lint.registry import Rule, register
from repro.lint.rules._ast_util import dotted_name

#: ``random``-module functions that consume the unseeded global generator.
_GLOBAL_RANDOM_FNS = {
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "normalvariate", "betavariate",
}

#: Set-returning method names whose iteration order is undefined.
_SET_METHODS = {"intersection", "union", "difference", "symmetric_difference"}

#: ``numpy.random`` entry points that build explicitly seeded generators --
#: these are the *fix* for global-state randomness, not an instance of it.
_SEEDED_NP_FACTORIES = {"default_rng", "Generator", "SeedSequence"}


def _is_set_expression(node: ast.AST) -> bool:
    """Whether ``node`` evaluates to a set (literal, comprehension, call)."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        if name in ("set", "frozenset"):
            return True
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _SET_METHODS
        ):
            return True
    return False


def _iteration_targets(tree: ast.AST) -> Iterable[ast.AST]:
    """Every expression some loop or comprehension iterates over."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            yield node.iter
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            for generator in node.generators:
                yield generator.iter


@register
class DeterminismRule(Rule):
    id = "determinism"
    title = "no unordered iteration / unseeded randomness on replayed paths"
    rationale = (
        "parallel construction and snapshot replay promise bit-identical "
        "results; set iteration order and the global random generator vary "
        "between processes"
    )
    hint = (
        "iterate in a canonical order (sorted(...) or the recorded object "
        "order) and seed randomness explicitly (random.Random(seed))"
    )
    scope = (
        "core/construction.py",
        "core/updates.py",
        "parallel/",
        "engine/snapshot.py",
    )

    def check_file(self, source: SourceFile, project: ProjectModel) -> List[Finding]:
        findings: List[Finding] = []

        for target in _iteration_targets(source.tree):
            if _is_set_expression(target):
                findings.append(self.finding(
                    source, target.lineno, target.col_offset,
                    "iteration over a set has no deterministic order",
                ))

        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            # Unseeded module-level random: random.shuffle(...), np.random.rand(...)
            if name is not None and "." in name:
                head, _, fn = name.rpartition(".")
                if head == "random" and fn in _GLOBAL_RANDOM_FNS:
                    findings.append(self.finding(
                        source, node.lineno, node.col_offset,
                        f"random.{fn}() uses the unseeded global generator",
                        hint="use a random.Random(seed) instance owned by the caller",
                    ))
                elif (
                    (head.endswith("np.random") or head.endswith("numpy.random"))
                    and fn not in _SEEDED_NP_FACTORIES
                ):
                    findings.append(self.finding(
                        source, node.lineno, node.col_offset,
                        f"{name}() uses numpy's global random state",
                        hint="use numpy.random.default_rng(seed) owned by the caller",
                    ))
            # id()-based ordering: sorted(xs, key=id), xs.sort(key=lambda o: id(o))
            is_sort = name in ("sorted", "min", "max") or (
                isinstance(node.func, ast.Attribute) and node.func.attr == "sort"
            )
            if is_sort:
                for child in ast.walk(node):
                    if (
                        isinstance(child, ast.Call)
                        and isinstance(child.func, ast.Name)
                        and child.func.id == "id"
                    ) or (
                        isinstance(child, ast.keyword)
                        and child.arg == "key"
                        and isinstance(child.value, ast.Name)
                        and child.value.id == "id"
                    ):
                        findings.append(self.finding(
                            source, node.lineno, node.col_offset,
                            "ordering by id() depends on allocation addresses",
                            hint="order by a stable key (oid, coordinates)",
                        ))
                        break
        return findings
