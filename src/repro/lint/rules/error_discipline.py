"""Rule ``error-discipline``: no bare excepts, no silently swallowed errors.

The robustness work (PR 9) rests on one invariant: a fault is either
tolerated with correct behaviour or surfaces as a *structured* error --
never silently absorbed.  Two handler shapes break that invariant
syntactically:

* a bare ``except:`` catches everything including ``KeyboardInterrupt``
  and ``SystemExit``, hiding even the intent of what was expected to fail;
* ``except Exception: pass`` (or ``...``) swallows every error with no
  handling, logging, or fallback -- a corrupt page, a failed fsync, and a
  typo in the handler's own scope all vanish identically.

Broad catches with a *body* (log, count, degrade, re-raise) are fine and
common in supervisor loops; it is the empty body that turns breadth into
silence.  Where a deliberate swallow is genuinely right, say so with a
suppression comment (``# repro-lint: ignore[error-discipline]``) so the
exception is visible in review.
"""

from __future__ import annotations

import ast
from typing import List

from repro.lint.findings import Finding
from repro.lint.project import ProjectModel, SourceFile
from repro.lint.registry import Rule, register

#: Catching these names swallows everything; only an empty body is flagged.
_BROAD_NAMES = {"Exception", "BaseException"}


def _broad_types(node: ast.ExceptHandler) -> bool:
    """Whether the handler catches ``Exception``/``BaseException``."""
    types = node.type.elts if isinstance(node.type, ast.Tuple) else [node.type]
    for entry in types:
        if isinstance(entry, ast.Name) and entry.id in _BROAD_NAMES:
            return True
        if isinstance(entry, ast.Attribute) and entry.attr in _BROAD_NAMES:
            return True
    return False


def _body_is_silent(body: List[ast.stmt]) -> bool:
    """Whether the handler body does nothing at all (``pass`` / ``...``)."""
    for statement in body:
        if isinstance(statement, ast.Pass):
            continue
        if (isinstance(statement, ast.Expr)
                and isinstance(statement.value, ast.Constant)
                and statement.value.value is Ellipsis):
            continue
        return False
    return True


@register
class ErrorDisciplineRule(Rule):
    id = "error-discipline"
    title = "no bare excepts; broad catches must handle, not swallow"
    rationale = (
        "a fault must be tolerated with correct behaviour or surface as a "
        "structured error; 'except:' and 'except Exception: pass' absorb "
        "corruption, I/O failures, and the handler's own bugs identically "
        "and silently"
    )
    hint = (
        "catch the specific exceptions the operation can raise; if a broad "
        "catch is needed (supervisor loops), handle it -- log, count, "
        "degrade, or re-raise -- instead of passing"
    )
    scope = ()  # every scanned file: silence is wrong everywhere

    def check_file(self, source: SourceFile, project: ProjectModel) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                findings.append(self.finding(
                    source, node.lineno, node.col_offset,
                    "bare 'except:' catches everything (including "
                    "SystemExit/KeyboardInterrupt) without naming what was "
                    "expected to fail",
                ))
            elif _broad_types(node) and _body_is_silent(node.body):
                findings.append(self.finding(
                    source, node.lineno, node.col_offset,
                    "broad exception handler silently swallows every error "
                    "('except Exception' with an empty body)",
                ))
        return findings
