"""Rule ``float-eq``: no bare ``==``/``is`` equality on floats or oids.

PR 4 shipped (and fixed) exactly this bug: the degenerate-dominance path in
``probability.py`` compared object ids with ``is``, which works for small
interned ints and silently fails for ids above 256 -- wrong probabilities,
no exception.  In numeric code the twin hazard is ``x == 0.5``-style float
literal comparison, which is only correct for values that are *exact* by
construction (and deserves a comment saying so).  The rule flags:

* ``is`` / ``is not`` between two values (identity is only meaningful
  against singletons -- ``None``, ``True``, ``False`` -- or sentinels);
* ``==`` / ``!=`` where either side is a float literal.

Exact-by-construction comparisons (a radius checked against literal zero
before dividing, a vectorised mask) are suppressed inline with
``# repro-lint: ignore[float-eq] -- <why exactness holds>``.
"""

from __future__ import annotations

import ast
from typing import List

from repro.lint.findings import Finding
from repro.lint.project import ProjectModel, SourceFile
from repro.lint.registry import Rule, register
from repro.lint.rules._ast_util import is_float_literal


def _is_singleton(node: ast.AST) -> bool:
    """Literals for which identity comparison is well-defined."""
    return isinstance(node, ast.Constant) and (
        node.value is None or node.value is True or node.value is False
        or node.value is Ellipsis
    )


def _is_sentinel_name(node: ast.AST) -> bool:
    """UPPER_CASE names are module sentinels (e.g. ``SHUTDOWN``)."""
    return isinstance(node, ast.Name) and node.id.isupper()


@register
class FloatEqRule(Rule):
    id = "float-eq"
    title = "no identity comparison of values, no bare float-literal equality"
    rationale = (
        "`oid is other.oid` breaks for non-interned ints (the PR 4 bug); "
        "`x == 0.5` on computed floats fails on rounding and must be "
        "justified where exactness holds"
    )
    hint = (
        "compare values with == (for oids) or an explicit tolerance (for "
        "floats); suppress with a rationale where exactness is structural"
    )
    scope = (
        "uncertain/",
        "geometry/",
        "queries/probability.py",
        "queries/probability_kernel.py",
    )

    def check_file(self, source: SourceFile, project: ProjectModel) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for index, op in enumerate(node.ops):
                left, right = operands[index], operands[index + 1]
                if isinstance(op, (ast.Is, ast.IsNot)):
                    if (
                        _is_singleton(left) or _is_singleton(right)
                        or _is_sentinel_name(left) or _is_sentinel_name(right)
                    ):
                        continue
                    findings.append(self.finding(
                        source, node.lineno, node.col_offset,
                        "identity comparison (`is`) between values; ints and "
                        "floats are not reliably interned",
                        hint="use == (the PR 4 degenerate-dominance bug was "
                             "exactly this)",
                    ))
                elif isinstance(op, (ast.Eq, ast.NotEq)):
                    if is_float_literal(left) or is_float_literal(right):
                        findings.append(self.finding(
                            source, node.lineno, node.col_offset,
                            "equality against a float literal on a computed "
                            "value",
                        ))
        return findings
