"""Rule ``frozen-spec``: config/descriptor dataclasses stay immutable.

Query descriptors (:mod:`repro.queries.spec`), build configuration
(:mod:`repro.engine.config`), serve configuration and wire envelopes
(:mod:`repro.serve.config` / :mod:`repro.serve.protocol`) are shared across
threads, hashed into planner caches, and logged next to the plans that
served them -- all of which assumes ``frozen=True``.  The rule also flags
``object.__setattr__`` outside ``__post_init__``: that is the only blessed
use of the frozen-dataclass escape hatch (normalising a field during
construction), anywhere else it is a mutation in disguise.
"""

from __future__ import annotations

import ast
from typing import List

from repro.lint.findings import Finding
from repro.lint.project import ProjectModel, SourceFile
from repro.lint.registry import Rule, register
from repro.lint.rules._ast_util import decorator_dataclass_frozen, dotted_name


@register
class FrozenSpecRule(Rule):
    id = "frozen-spec"
    title = "descriptor/config dataclasses must be frozen (and stay frozen)"
    rationale = (
        "descriptors and configs are shared across threads and processes, "
        "cached by value, and logged; silent mutation would corrupt all three"
    )
    hint = "declare @dataclass(frozen=True) and build changed copies via .replace()"
    scope = (
        "queries/spec.py",
        "engine/config.py",
        "serve/config.py",
        "serve/protocol.py",
    )

    def check_file(self, source: SourceFile, project: ProjectModel) -> List[Finding]:
        findings: List[Finding] = []
        for name, node in source.classes().items():
            frozen = decorator_dataclass_frozen(node)
            if frozen is False:
                findings.append(self.finding(
                    source, node.lineno, node.col_offset,
                    f"dataclass {name} is not frozen=True",
                ))

        for node in ast.walk(source.tree):
            if (
                isinstance(node, ast.Call)
                and dotted_name(node.func) == "object.__setattr__"
                and not self._inside_post_init(source.tree, node)
            ):
                findings.append(self.finding(
                    source, node.lineno, node.col_offset,
                    "object.__setattr__ outside __post_init__ mutates a "
                    "frozen instance",
                    hint="frozen instances change only via .replace(); the "
                         "escape hatch is for __post_init__ normalisation",
                ))
        return findings

    @staticmethod
    def _inside_post_init(tree: ast.AST, target: ast.AST) -> bool:
        """Whether ``target`` sits lexically inside some ``__post_init__``."""
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.FunctionDef)
                and node.name == "__post_init__"
            ):
                for child in ast.walk(node):
                    if child is target:
                        return True
        return False
