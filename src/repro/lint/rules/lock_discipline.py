"""Rule ``lock-discipline``: declared guarded state is touched under its lock.

The router shares mutable state between HTTP handler threads, the response
pump, and the worker monitor.  Which lock guards which attribute is
*declared* in the class itself::

    class Router:
        _GUARDED_BY = {
            "_pending": "_lock",
            "counters": "_lock",
            "_buckets": "_bucket_lock",
        }

and this rule turns the declaration into a checked property: every
``self.<attr>`` access (read or write) of a declared attribute must sit
lexically inside ``with self.<lock>:`` for the declared lock.  ``__init__``
is exempt (construction precedes sharing), as is any method whose docstring
says the **caller holds the lock** -- the convention for private helpers
that run under a caller's critical section.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, List, Optional

from repro.lint.findings import Finding
from repro.lint.project import ProjectModel, SourceFile
from repro.lint.registry import Rule, register

#: Docstring phrase that marks a helper as running under the caller's lock.
_CALLER_HOLDS = "caller holds the lock"


def _guarded_map(cls: ast.ClassDef) -> Optional[Dict[str, str]]:
    """The ``_GUARDED_BY`` declaration of a class, when present."""
    for node in cls.body:
        value = None
        if isinstance(node, ast.Assign):
            if any(
                isinstance(t, ast.Name) and t.id == "_GUARDED_BY"
                for t in node.targets
            ):
                value = node.value
        elif isinstance(node, ast.AnnAssign):
            if (
                isinstance(node.target, ast.Name)
                and node.target.id == "_GUARDED_BY"
            ):
                value = node.value
        if value is None:
            continue
        if not isinstance(value, ast.Dict):
            return None
        declared: Dict[str, str] = {}
        for key, lock in zip(value.keys, value.values):
            if (
                isinstance(key, ast.Constant) and isinstance(key.value, str)
                and isinstance(lock, ast.Constant) and isinstance(lock.value, str)
            ):
                declared[key.value] = lock.value
        return declared
    return None


@register
class LockDisciplineRule(Rule):
    id = "lock-discipline"
    title = "attributes declared guarded-by-lock are only touched under it"
    rationale = (
        "router state is shared by handler threads, the response pump, and "
        "the monitor; one unlocked access is a data race that only shows up "
        "under production concurrency"
    )
    hint = (
        "wrap the access in `with self.<lock>:`, or document the helper "
        "with 'caller holds the lock' if it runs under a caller's section"
    )
    # No path scope: the rule activates wherever a class opts in by
    # declaring _GUARDED_BY.

    def check_file(self, source: SourceFile, project: ProjectModel) -> List[Finding]:
        findings: List[Finding] = []
        for cls in source.classes().values():
            guarded = _guarded_map(cls)
            if not guarded:
                continue
            for method in cls.body:
                if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if method.name == "__init__":
                    continue
                docstring = ast.get_docstring(method) or ""
                if _CALLER_HOLDS in docstring.lower():
                    continue
                for stmt in method.body:
                    self._scan(source, guarded, stmt, frozenset(), findings)
        return findings

    def _scan(
        self,
        source: SourceFile,
        guarded: Dict[str, str],
        node: ast.AST,
        held: FrozenSet[str],
        findings: List[Finding],
    ) -> None:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            acquired = set()
            for item in node.items:
                expr = item.context_expr
                # `with self._lock:` -- acquiring a lock attribute of self.
                if (
                    isinstance(expr, ast.Attribute)
                    and isinstance(expr.value, ast.Name)
                    and expr.value.id == "self"
                ):
                    acquired.add(expr.attr)
                self._scan(source, guarded, expr, held, findings)
            for stmt in node.body:
                self._scan(source, guarded, stmt, held | acquired, findings)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            # A nested function may run after the critical section ended.
            for child in ast.iter_child_nodes(node):
                self._scan(source, guarded, child, frozenset(), findings)
            return
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and node.attr in guarded
        ):
            lock = guarded[node.attr]
            if lock not in held:
                findings.append(self.finding(
                    source, node.lineno, node.col_offset,
                    f"self.{node.attr} is declared guarded by self.{lock} "
                    f"but accessed outside `with self.{lock}`",
                ))
        for child in ast.iter_child_nodes(node):
            self._scan(source, guarded, child, held, findings)
