"""Rule ``picklable-work``: nothing unpicklable crosses a process boundary.

The construction pool and the serve fleet both ship work to *spawned*
processes, so every callable submitted must be importable by the child:
module-level functions pickle, lambdas and nested functions do not.  The
failure is especially nasty on Linux, where ``fork`` makes an unpicklable
target appear to work until the code first runs on spawn (macOS, Windows,
or the serve router, which spawns deliberately -- see
:mod:`repro.serve.router`).  The rule flags lambdas and locally-defined
functions passed to pool submission methods or as a ``Process`` target.
"""

from __future__ import annotations

import ast
from typing import List, Set

from repro.lint.findings import Finding
from repro.lint.project import ProjectModel, SourceFile
from repro.lint.registry import Rule, register

#: Methods that ship their first argument to a worker process.
_SUBMIT_METHODS = {
    "map", "imap", "imap_unordered", "starmap", "starmap_async",
    "apply", "apply_async", "submit",
}

#: Keywords of process/pool constructors whose value must pickle.
_TARGET_KEYWORDS = {"target", "initializer", "func"}

#: Constructor names whose keyword arguments are checked.
_PROCESS_CTORS = {"Process", "Pool"}


def _locally_defined(tree: ast.AST) -> Set[str]:
    """Names of functions defined *inside* another function."""
    nested: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for child in ast.walk(node):
                if (
                    child is not node
                    and isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
                ):
                    nested.add(child.name)
    return nested


@register
class PicklableWorkRule(Rule):
    id = "picklable-work"
    title = "no lambdas/nested functions submitted to worker processes"
    rationale = (
        "spawned children re-import the callable by qualified name; a "
        "lambda or closure fails to pickle (or silently works under fork "
        "and breaks under spawn)"
    )
    hint = "hoist the callable to module level and pass data explicitly"
    scope = ("parallel/", "serve/", "engine/", "core/construction.py")

    def check_file(self, source: SourceFile, project: ProjectModel) -> List[Finding]:
        findings: List[Finding] = []
        nested = _locally_defined(source.tree)

        def unpicklable(arg: ast.AST) -> str:
            if isinstance(arg, ast.Lambda):
                return "a lambda"
            if isinstance(arg, ast.Name) and arg.id in nested:
                return f"nested function {arg.id}()"
            return ""

        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            suspects: List[ast.AST] = []
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _SUBMIT_METHODS
                and node.args
            ):
                suspects.append(node.args[0])
            ctor = (
                node.func.attr if isinstance(node.func, ast.Attribute)
                else node.func.id if isinstance(node.func, ast.Name) else ""
            )
            if ctor in _PROCESS_CTORS:
                suspects.extend(
                    keyword.value
                    for keyword in node.keywords
                    if keyword.arg in _TARGET_KEYWORDS
                )
            for arg in suspects:
                what = unpicklable(arg)
                if what:
                    findings.append(self.finding(
                        source, arg.lineno, arg.col_offset,
                        f"{what} is submitted to a worker process and will "
                        f"not pickle under spawn",
                    ))
        return findings
