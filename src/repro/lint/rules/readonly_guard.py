"""Rule ``readonly-guard``: public mutators check the readonly guard first.

``QueryEngine.open(path, readonly=True)`` is the serving-correctness
contract: N worker processes share one snapshot, so structural mutation
must raise :class:`~repro.engine.engine.ReadOnlyEngineError` instead of
diverging into a volatile overlay (PR 6).  The engine centralises that in
``_check_writable``; this rule makes "every public mutating method calls
it" a checked property instead of a convention, by flagging any public
method that shows a structural-mutation signal (setting ``self._dirty =
True``, registering/unregistering objects, or calling the backend's
``insert``/``delete``) without calling ``self._check_writable(...)``.
"""

from __future__ import annotations

import ast
from typing import List

from repro.lint.findings import Finding
from repro.lint.project import ProjectModel, SourceFile
from repro.lint.registry import Rule, register
from repro.lint.rules._ast_util import class_methods, dotted_name, has_method, is_constant

#: Calls that mutate engine structure.
_MUTATING_CALLS = {
    "self._register_object",
    "self._unregister_object",
    "self.backend.insert",
    "self.backend.delete",
}


def _mutation_signal(method: ast.FunctionDef) -> "ast.AST | None":
    """The first structural-mutation node in ``method``, if any."""
    for node in ast.walk(method):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if (
                    dotted_name(target) == "self._dirty"
                    and is_constant(node.value, True)
                ):
                    return node
        elif isinstance(node, ast.Call):
            if dotted_name(node.func) in _MUTATING_CALLS:
                return node
    return None


def _calls_guard(method: ast.FunctionDef) -> bool:
    for node in ast.walk(method):
        if (
            isinstance(node, ast.Call)
            and dotted_name(node.func) == "self._check_writable"
        ):
            return True
    return False


@register
class ReadonlyGuardRule(Rule):
    id = "readonly-guard"
    title = "public mutating engine methods must call _check_writable"
    rationale = (
        "readonly=True is how concurrent serving stays sound; a mutator "
        "that skips the guard corrupts every worker sharing the snapshot"
    )
    hint = "call self._check_writable(\"<operation>\") before mutating"
    scope = ("engine/",)

    def check_file(self, source: SourceFile, project: ProjectModel) -> List[Finding]:
        findings: List[Finding] = []
        for cls in source.classes().values():
            if not has_method(cls, "_check_writable"):
                continue
            for method in class_methods(cls):
                if method.name.startswith("_"):
                    continue  # internals run under an already-checked public entry
                signal = _mutation_signal(method)
                if signal is not None and not _calls_guard(method):
                    findings.append(self.finding(
                        source, method.lineno, method.col_offset,
                        f"public method {cls.name}.{method.name}() mutates "
                        f"engine structure without checking the readonly guard",
                    ))
        return findings
