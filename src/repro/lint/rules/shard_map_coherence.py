"""Rule ``shard-map-coherence``: shard maps stay frozen and opaque.

The ``SHARDMAP`` manifest is the routing contract of a sharded deployment:
every router prunes with the per-shard possible-region bounds it carries,
and the parity guarantee (sharded answers are bit-identical to the
single-snapshot engine) holds only while those bounds and tiles are exactly
what the validated constructors computed.  Two failure modes would break
that silently:

* **in-place mutation** -- ``object.__setattr__`` on a ``ShardMap`` /
  ``ShardInfo`` / ``ShardDeployment`` field outside ``__post_init__``
  bypasses the constructors' validation (contiguous ids, tiles partition
  the domain, bounds non-degenerate).  A widened tile or narrowed bound is
  invisible until a query routes past the shard that held its answer.
* **page-store reach-through** -- code that walks a deployment's shard
  directories and reads shard pages directly (``load_page`` and friends)
  bypasses the per-shard engine, its buffer pool, and its counted I/O;
  benchmarks and the routing gate stop measuring reality.  Shards are
  opened through engines, never through raw page stores.
"""

from __future__ import annotations

import ast
from typing import List

from repro.lint.findings import Finding
from repro.lint.project import ProjectModel, SourceFile
from repro.lint.registry import Rule, register
from repro.lint.rules._ast_util import dotted_name

#: Fields of the shard-map dataclasses whose mutation breaks routing.
_SHARD_FIELDS = {
    "shard_id",
    "tile",
    "bound",
    "max_radius",
    "shards",
    "shard_map",
    "shard_dirs",
    "uv_skeleton",
    "epoch",
}

#: Raw page-store primitives a shard-deployment walker must not call.
_PAGE_PRIMITIVES = {"load_page", "write_page", "free_page", "allocate_page"}

#: Names whose presence marks a module as handling shard deployments.
_DEPLOYMENT_API = {
    "read_shard_deployment",
    "write_shard_deployment",
    "shard_paths",
    "ShardDeployment",
    "SHARDMAP_NAME",
}


def _references_deployment_api(tree: ast.Module) -> bool:
    for node in ast.walk(tree):
        if isinstance(node, ast.Name) and node.id in _DEPLOYMENT_API:
            return True
        if isinstance(node, ast.Attribute) and node.attr in _DEPLOYMENT_API:
            return True
        if isinstance(node, ast.ImportFrom):
            for alias in node.names:
                if alias.name in _DEPLOYMENT_API:
                    return True
    return False


def _inside_post_init(tree: ast.AST, target: ast.AST) -> bool:
    """Whether ``target`` sits lexically inside some ``__post_init__``."""
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef) and node.name == "__post_init__":
            for child in ast.walk(node):
                if child is target:
                    return True
    return False


@register
class ShardMapCoherenceRule(Rule):
    id = "shard-map-coherence"
    title = "shard maps change only via validated constructors, shards only via engines"
    rationale = (
        "routing prunes with the shard map's bounds; a field mutated past "
        "the constructors' validation, or a shard read through a raw page "
        "store instead of its engine, silently breaks the parity guarantee"
    )
    hint = (
        "rebuild shard maps through their constructors (build_shard_map / "
        "from_dict) and open shards with QueryEngine, not page stores"
    )
    scope = ()  # the invariant is global: any module can hold a shard map

    def check_file(self, source: SourceFile, project: ProjectModel) -> List[Finding]:
        findings: List[Finding] = []
        touches_deployment = _references_deployment_api(source.tree)
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if (
                name == "object.__setattr__"
                and len(node.args) >= 2
                and isinstance(node.args[1], ast.Constant)
                and node.args[1].value in _SHARD_FIELDS
                and not _inside_post_init(source.tree, node)
            ):
                findings.append(self.finding(
                    source, node.lineno, node.col_offset,
                    f"shard-map field {node.args[1].value!r} mutated in "
                    f"place, bypassing the validated constructors",
                ))
            elif (
                touches_deployment
                and name is not None
                and "." in name
                and name.rsplit(".", 1)[1] in _PAGE_PRIMITIVES
            ):
                findings.append(self.finding(
                    source, node.lineno, node.col_offset,
                    f"{name}() reads shard pages through a raw page store; "
                    f"shards are opened through engines only",
                ))
        return findings
