"""Rule ``validated-replace``: config copies go through the validated path.

``DiagramConfig.replace`` and ``ServeConfig.replace`` re-run
``__post_init__`` validation and reject unknown field names with a clear
error; raw ``dataclasses.replace(...)`` does neither, so a typo'd field
name or an out-of-range value sails through and detonates later (PR 5
added the validated path for exactly this reason).  Outside the config
modules themselves -- which implement ``.replace()`` in terms of the raw
helper -- every call site must use the method.
"""

from __future__ import annotations

import ast
from typing import List

from repro.lint.findings import Finding
from repro.lint.project import ProjectModel, SourceFile
from repro.lint.registry import Rule, register
from repro.lint.rules._ast_util import dotted_name

#: The modules implementing the validated wrappers.
_EXEMPT = ("engine/config.py", "serve/config.py", "lint/")


@register
class ValidatedReplaceRule(Rule):
    id = "validated-replace"
    title = "use the validated .replace() instead of dataclasses.replace"
    rationale = (
        "dataclasses.replace skips __post_init__ re-validation and raises "
        "an opaque TypeError on typo'd fields; the config types provide a "
        "validated .replace() for exactly this"
    )
    hint = "call the instance's own .replace(**changes)"

    def applies_to(self, source: SourceFile) -> bool:
        return not source.relpath.startswith(_EXEMPT)

    def check_file(self, source: SourceFile, project: ProjectModel) -> List[Finding]:
        replace_names = {"dataclasses.replace"}
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "dataclasses":
                for alias in node.names:
                    if alias.name == "replace":
                        replace_names.add(alias.asname or alias.name)

        findings: List[Finding] = []
        for node in ast.walk(source.tree):
            if (
                isinstance(node, ast.Call)
                and dotted_name(node.func) in replace_names
            ):
                findings.append(self.finding(
                    source, node.lineno, node.col_offset,
                    "raw dataclasses.replace() bypasses __post_init__ "
                    "re-validation",
                ))
        return findings
