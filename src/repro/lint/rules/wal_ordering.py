"""Rule ``wal-ordering``: log before apply; replay in monotonic LSN order.

The durability contract of :mod:`repro.wal` (PR 8) has two halves:

* **write-ahead**: a mutator must append the update's record to the WAL --
  and make it durable per the fsync policy -- *before* touching the
  in-memory overlay.  Applied-but-unlogged updates are exactly the ones a
  crash loses after they were acknowledged.
* **ordered replay**: recovery must apply records in strictly increasing
  LSN order; a reordered or duplicated record silently corrupts the
  replayed state (an insert/delete pair applied backwards resurrects the
  object).

Both are syntactic properties: in any function that both appends to a
WAL-like object and applies an update to the overlay, the first append must
precede the first apply; and any ``replay*`` function in :mod:`repro.wal`
that applies records must carry an LSN comparison guarding the order.
"""

from __future__ import annotations

import ast
from typing import List, Optional

from repro.lint.findings import Finding
from repro.lint.project import ProjectModel, SourceFile
from repro.lint.registry import Rule, register
from repro.lint.rules._ast_util import dotted_name

#: Calls that apply an update to the in-memory overlay.
_APPLY_CALLS = {
    "self.backend.insert",
    "self.backend.delete",
    "self._apply_insert",
    "self._apply_delete",
    "self._register_object",
    "self._unregister_object",
}


def _wal_append(node: ast.Call) -> bool:
    """Whether ``node`` appends to a WAL-like object (``*wal*.append(...)``)."""
    func = node.func
    if not (isinstance(func, ast.Attribute) and func.attr == "append"):
        return False
    owner = dotted_name(func.value)
    return owner is not None and "wal" in owner.lower()


def _first_append_and_apply(
    function: ast.FunctionDef,
) -> "tuple[Optional[ast.Call], Optional[ast.Call]]":
    first_append: Optional[ast.Call] = None
    first_apply: Optional[ast.Call] = None
    for node in ast.walk(function):
        if not isinstance(node, ast.Call):
            continue
        if _wal_append(node):
            if first_append is None or node.lineno < first_append.lineno:
                first_append = node
        elif dotted_name(node.func) in _APPLY_CALLS:
            if first_apply is None or node.lineno < first_apply.lineno:
                first_apply = node
    return first_append, first_apply


def _applies_records(function: ast.FunctionDef) -> bool:
    for node in ast.walk(function):
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name is not None and "apply" in name:
                return True
    return False


def _has_lsn_guard(function: ast.FunctionDef) -> bool:
    for node in ast.walk(function):
        if not isinstance(node, ast.Compare):
            continue
        for side in [node.left, *node.comparators]:
            name = dotted_name(side)
            if name is not None and "lsn" in name.lower():
                return True
    return False


@register
class WalOrderingRule(Rule):
    id = "wal-ordering"
    title = "mutators log before applying; replay is LSN-ordered"
    rationale = (
        "an update applied to the overlay before its WAL record is durable "
        "is exactly what a crash loses after acknowledging it; replay "
        "without a monotonic-LSN guard silently accepts reordered or "
        "duplicated records"
    )
    hint = (
        "append the record to the WAL before touching the overlay; guard "
        "replay loops with a strictly-increasing LSN comparison"
    )
    scope = ("engine/", "wal/")

    def check_file(self, source: SourceFile, project: ProjectModel) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(source.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            append, apply = _first_append_and_apply(node)
            if append is not None and apply is not None:
                if apply.lineno < append.lineno:
                    findings.append(self.finding(
                        source, apply.lineno, apply.col_offset,
                        f"{node.name}() applies the update to the overlay "
                        f"before appending it to the WAL",
                    ))
            if (
                source.relpath.startswith("wal/")
                and node.name.startswith("replay")
                and _applies_records(node)
                and not _has_lsn_guard(node)
            ):
                findings.append(self.finding(
                    source, node.lineno, node.col_offset,
                    f"{node.name}() applies records without a monotonic-LSN "
                    f"order guard",
                ))
        return findings
