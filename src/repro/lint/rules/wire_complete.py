"""Rule ``wire-complete``: every wire-reachable type round-trips.

The serve layer's protocol is "a request body is a serialized descriptor,
a response payload is a serialized result" (PR 6).  That only holds while
(a) the ``Query`` union, the ``QUERY_TYPES`` decoder table, and the
descriptor classes agree, and (b) every descriptor/result type reachable
from :func:`repro.queries.spec.query_from_dict` carries both halves of the
``to_dict`` / ``from_dict`` pair.  This is a cross-module invariant -- the
decoder lives in ``queries/spec.py`` while result types span four other
modules -- so the rule runs as a project pass over the parsed ASTs.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set

from repro.lint.findings import Finding
from repro.lint.project import ProjectModel, SourceFile
from repro.lint.registry import Rule, register
from repro.lint.rules._ast_util import has_method

#: Where the wire-reachable descriptor machinery lives.
_SPEC_MODULE = "queries/spec.py"

#: Modules holding result types that cross the serve wire (directly or
#: nested inside another result's payload).
_RESULT_MODULES = (
    "queries/result.py",
    "queries/knn.py",
    "core/pattern.py",
    "queries/probability_kernel.py",
    "storage/stats.py",
)

#: Class-name suffixes that mark a type as part of a wire payload.
_RESULT_SUFFIXES = ("Result", "Answer", "Stats", "Breakdown", "Info")


def _assigned_names(module: ast.Module, target_name: str) -> Optional[ast.AST]:
    """The value node of a top-level ``target_name = ...`` assignment."""
    for node in module.body:
        targets = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
        for target in targets:
            if isinstance(target, ast.Name) and target.id == target_name:
                return node.value
    return None


def _name_of(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value  # a forward reference inside Union[...]
    return None


def _union_members(node: ast.AST) -> Set[str]:
    """Class names of a ``Union[A, B]`` / ``A | B`` expression."""
    if isinstance(node, ast.Subscript):
        inner = node.slice
        elements = inner.elts if isinstance(inner, ast.Tuple) else [inner]
        return {name for el in elements if (name := _name_of(el)) is not None}
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        return _union_members(node.left) | _union_members(node.right)
    name = _name_of(node)
    return {name} if name is not None else set()


@register
class WireCompleteRule(Rule):
    id = "wire-complete"
    title = "wire-reachable types need matching to_dict/from_dict pairs"
    rationale = (
        "a serve request body is a serialized descriptor and a response is "
        "a serialized result; one missing decoder half turns into a runtime "
        "KeyError on the other side of the wire"
    )
    hint = "add the missing to_dict/from_dict half (and a round-trip test)"

    def check_project(self, project: ProjectModel) -> List[Finding]:
        findings: List[Finding] = []
        spec = project.find(_SPEC_MODULE)
        if spec is not None:
            findings.extend(self._check_spec(spec))
        for relpath in _RESULT_MODULES:
            source = project.find(relpath)
            if source is not None:
                findings.extend(self._check_results(source))
        return findings

    # ------------------------------------------------------------------ #
    # descriptors: union <-> decoder table <-> class methods
    # ------------------------------------------------------------------ #
    def _check_spec(self, spec: SourceFile) -> List[Finding]:
        findings: List[Finding] = []
        classes = spec.classes()

        table = _assigned_names(spec.tree, "QUERY_TYPES")
        registered: Dict[str, ast.AST] = {}
        if isinstance(table, ast.Dict):
            for value in table.values:
                name = _name_of(value)
                if name is not None:
                    registered[name] = value
        else:
            findings.append(self.finding(
                spec, 1, 0,
                "QUERY_TYPES decoder table is missing (or not a dict literal)",
                hint="query_from_dict dispatches on QUERY_TYPES; keep it a "
                     "literal so the wire surface stays statically checkable",
            ))

        union = _assigned_names(spec.tree, "Query")
        if union is not None and registered:
            union_names = _union_members(union)
            for missing in sorted(union_names - set(registered)):
                findings.append(self.finding(
                    spec, union.lineno, union.col_offset,
                    f"descriptor {missing} is in the Query union but not "
                    f"registered in QUERY_TYPES",
                    hint="register it so query_from_dict can decode it",
                ))
            for extra in sorted(set(registered) - union_names):
                node = registered[extra]
                findings.append(self.finding(
                    spec, node.lineno, node.col_offset,
                    f"QUERY_TYPES registers {extra} which is not in the "
                    f"Query union",
                    hint="add it to the union (or drop the registration)",
                ))

        for name in registered:
            cls = classes.get(name)
            if cls is None:
                continue  # imported descriptors are checked in their module
            for method in ("to_dict", "from_dict"):
                if not has_method(cls, method):
                    findings.append(self.finding(
                        spec, cls.lineno, cls.col_offset,
                        f"descriptor {name} is wire-reachable via "
                        f"query_from_dict but has no {method}()",
                    ))
        return findings

    # ------------------------------------------------------------------ #
    # results: every payload type must round-trip
    # ------------------------------------------------------------------ #
    def _check_results(self, source: SourceFile) -> List[Finding]:
        findings: List[Finding] = []
        for name, node in source.classes().items():
            if name.startswith("_") or not name.endswith(_RESULT_SUFFIXES):
                continue
            serializer = has_method(node, "to_dict", "as_dict")
            deserializer = has_method(node, "from_dict")
            if serializer and deserializer:
                continue
            if serializer:
                message = (f"result type {name} serializes (to_dict) but "
                           f"cannot be decoded (no from_dict)")
            elif deserializer:
                message = (f"result type {name} decodes (from_dict) but "
                           f"cannot be serialized (no to_dict)")
            else:
                message = f"result type {name} has no to_dict/from_dict pair"
            findings.append(self.finding(
                source, node.lineno, node.col_offset, message,
            ))
        return findings
