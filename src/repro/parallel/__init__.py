"""Parallel, sharded UV-diagram construction.

The cell-computation phase of diagram construction is pure per object, so it
shards across cores; the indexing phase replays the per-object results in
canonical order, keeping parallel builds bit-identical to serial ones.  See
:class:`ConstructionScheduler` for the entry point and
:mod:`repro.parallel.scheduler` for the full story.

Typical usage::

    from repro import DiagramConfig, QueryEngine
    from repro.datasets.synthetic import generate_uniform_objects

    objects, domain = generate_uniform_objects(500, seed=7)
    engine = QueryEngine.build(
        objects, domain, DiagramConfig(backend="ic", workers=4)
    )

or explicitly::

    from repro.parallel import ConstructionScheduler

    scheduler = ConstructionScheduler(workers=4, shard_strategy="spatial_tile")
    engine = QueryEngine.build(objects, domain, scheduler=scheduler)
"""

from repro.parallel.scheduler import (
    ConstructionScheduler,
    MultiprocessingExecutor,
    SchedulerReport,
    SerialExecutor,
    ShardReport,
    SHARD_STRATEGIES,
    available_workers,
    shard_round_robin,
    shard_spatial_tiles,
)

__all__ = [
    "ConstructionScheduler",
    "MultiprocessingExecutor",
    "SchedulerReport",
    "SerialExecutor",
    "ShardReport",
    "SHARD_STRATEGIES",
    "available_workers",
    "shard_round_robin",
    "shard_spatial_tiles",
]
