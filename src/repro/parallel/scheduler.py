"""Sharded, optionally multi-process UV-diagram cell computation.

Construction of a UV-diagram is two phases (see
:mod:`repro.core.construction`): a pure, embarrassingly parallel
cell-computation phase and a strictly ordered indexing phase.  The
:class:`ConstructionScheduler` owns phase 1: it splits the object set into
shards, runs each shard through an executor, and hands the merged per-object
results back to the builder, which indexes them in canonical object order.
Because the computation is pure and the indexing order fixed, the resulting
diagram is **bit-identical** to a serial build for every shard strategy and
executor -- the parity tests in ``tests/test_parallel_construction.py``
enforce this for all five backends.

Two shard strategies:

* ``round_robin`` -- object ``i`` goes to shard ``i mod n``; shards are
  maximally balanced in count.
* ``spatial_tile`` -- the domain is cut into a grid of tiles, objects are
  grouped by the tile containing their centre (row-major), and contiguous
  tile runs are chunked into shards.  Objects that are close in space land
  on the same worker, which keeps each worker's R-tree traversals in a
  warm region of the structure.

Two executors:

* :class:`SerialExecutor` -- computes every shard in-process.  The default
  (and the fallback when a worker pool cannot be created, e.g. in sandboxed
  CI), so ``workers=1`` costs nothing over the classic serial build.
* :class:`MultiprocessingExecutor` -- a ``multiprocessing.Pool`` whose
  workers each build the read-only :class:`ConstructionContext` once (R-tree
  + pruning machinery) via the pool initializer, then stream shards through
  :func:`_compute_shard`.  Only plain picklable values cross the process
  boundary: the :class:`CellWorkSpec` in, lists of
  :class:`ObjectCellResult` out.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.construction import (
    CellWorkSpec,
    ConstructionContext,
    ObjectCellResult,
)

SHARD_STRATEGIES = ("round_robin", "spatial_tile")

#: per-process construction context, built once by the pool initializer
_WORKER_CONTEXT: Optional[ConstructionContext] = None


def _init_worker(spec: CellWorkSpec) -> None:
    """Pool initializer: build the read-only context once per worker."""
    global _WORKER_CONTEXT
    _WORKER_CONTEXT = ConstructionContext(spec)


def _compute_shard(oids: Sequence[int]) -> Tuple[List[ObjectCellResult], float]:
    """Worker entry point: compute one shard, report its compute seconds."""
    start = time.perf_counter()
    results = _WORKER_CONTEXT.compute_many(oids)
    return results, time.perf_counter() - start


# ---------------------------------------------------------------------- #
# shard strategies
# ---------------------------------------------------------------------- #
def shard_round_robin(oids: Sequence[int], shards: int) -> List[List[int]]:
    """Deal object ids to ``shards`` lists round-robin (maximally balanced)."""
    if shards < 1:
        raise ValueError("shard count must be positive")
    dealt = [list(oids[i::shards]) for i in range(shards)]
    return [shard for shard in dealt if shard]


def shard_spatial_tiles(
    spec: CellWorkSpec, shards: int, tiles_per_axis: Optional[int] = None
) -> List[List[int]]:
    """Group objects by domain tile, then chunk tile runs into shards.

    The tile grid is ``t x t`` with ``t = ceil(sqrt(4 * shards))`` by default
    (a few tiles per shard smooths out skewed datasets).  Objects are ordered
    by (tile row, tile column, object position in the dataset) and cut into
    ``shards`` near-equal contiguous chunks, so each shard covers a compact
    region of the domain while staying balanced in count.
    """
    if shards < 1:
        raise ValueError("shard count must be positive")
    domain = spec.domain
    if tiles_per_axis is None:
        tiles_per_axis = max(1, int((4 * shards) ** 0.5 + 0.999))
    width = max(domain.xmax - domain.xmin, 1e-12)
    height = max(domain.ymax - domain.ymin, 1e-12)

    def tile_of(obj) -> Tuple[int, int]:
        tx = int((obj.center.x - domain.xmin) / width * tiles_per_axis)
        ty = int((obj.center.y - domain.ymin) / height * tiles_per_axis)
        return (
            min(max(ty, 0), tiles_per_axis - 1),
            min(max(tx, 0), tiles_per_axis - 1),
        )

    ordered = sorted(
        range(len(spec.objects)), key=lambda i: (tile_of(spec.objects[i]), i)
    )
    oids = [spec.objects[i].oid for i in ordered]
    count = len(oids)
    base, extra = divmod(count, shards)
    chunks: List[List[int]] = []
    cursor = 0
    for shard in range(shards):
        size = base + (1 if shard < extra else 0)
        if size == 0:
            continue
        chunks.append(oids[cursor : cursor + size])
        cursor += size
    return chunks


# ---------------------------------------------------------------------- #
# reports
# ---------------------------------------------------------------------- #
@dataclass
class ShardReport:
    """What one shard looked like and cost."""

    index: int
    size: int
    seconds: float


@dataclass
class SchedulerReport:
    """How the last :meth:`ConstructionScheduler.compute_cells` call ran."""

    strategy: str
    executor: str
    workers: int
    objects: int
    total_seconds: float
    shards: List[ShardReport] = field(default_factory=list)
    fell_back_to_serial: bool = False

    @property
    def shard_count(self) -> int:
        return len(self.shards)

    @property
    def compute_seconds(self) -> float:
        """Summed per-shard compute time (CPU-side, across all workers)."""
        return sum(shard.seconds for shard in self.shards)

    def as_dict(self) -> Dict:
        """JSON-ready view (benchmark output)."""
        return {
            "strategy": self.strategy,
            "executor": self.executor,
            "workers": self.workers,
            "objects": self.objects,
            "total_seconds": self.total_seconds,
            "compute_seconds": self.compute_seconds,
            "fell_back_to_serial": self.fell_back_to_serial,
            "shards": [
                {"index": s.index, "size": s.size, "seconds": s.seconds}
                for s in self.shards
            ],
        }


# ---------------------------------------------------------------------- #
# executors
# ---------------------------------------------------------------------- #
class SerialExecutor:
    """Deterministic in-process execution: one context, shards in order."""

    name = "serial"

    def run(
        self, spec: CellWorkSpec, shards: Sequence[Sequence[int]]
    ) -> List[Tuple[List[ObjectCellResult], float]]:
        context = ConstructionContext(spec)
        outputs: List[Tuple[List[ObjectCellResult], float]] = []
        for shard in shards:
            start = time.perf_counter()
            results = context.compute_many(shard)
            outputs.append((results, time.perf_counter() - start))
        return outputs


class MultiprocessingExecutor:
    """A ``multiprocessing.Pool`` over picklable work specs.

    Each worker pays the context build (R-tree + pruning machinery) once in
    the pool initializer; shards then stream through ``pool.map``.  The
    platform's default start method is used (``fork`` on Linux, ``spawn`` on
    Windows/macOS) unless ``start_method`` overrides it.
    """

    name = "process"

    def __init__(self, workers: int, start_method: Optional[str] = None):
        if workers < 1:
            raise ValueError("workers must be positive")
        self.workers = workers
        self.start_method = start_method

    def run(
        self, spec: CellWorkSpec, shards: Sequence[Sequence[int]]
    ) -> List[Tuple[List[ObjectCellResult], float]]:
        context = (
            multiprocessing.get_context(self.start_method)
            if self.start_method
            else multiprocessing
        )
        workers = min(self.workers, max(1, len(shards)))
        with context.Pool(
            processes=workers, initializer=_init_worker, initargs=(spec,)
        ) as pool:
            return pool.map(_compute_shard, [list(shard) for shard in shards])


ExecutorSpec = Union[str, SerialExecutor, MultiprocessingExecutor, None]


# ---------------------------------------------------------------------- #
# the scheduler
# ---------------------------------------------------------------------- #
class ConstructionScheduler:
    """Shards cell computation and runs it through an executor.

    Args:
        workers: worker count.  ``1`` (the default) selects the in-process
            serial executor; ``>1`` selects a multiprocessing pool unless
            ``executor`` overrides the choice.
        shard_strategy: ``"round_robin"`` or ``"spatial_tile"``.
        executor: ``"serial"``, ``"process"``, an executor instance, or
            ``None`` to pick from ``workers``.
        shards_per_worker: how many shards each worker should receive.
            More shards than workers smooths load imbalance at a small
            scheduling cost.

    The scheduler is reusable; :attr:`last_report` describes the most recent
    :meth:`compute_cells` run (shard sizes, per-shard seconds, fallbacks).
    """

    def __init__(
        self,
        workers: int = 1,
        shard_strategy: str = "round_robin",
        executor: ExecutorSpec = None,
        shards_per_worker: int = 1,
    ):
        if workers < 1:
            raise ValueError("workers must be positive")
        if shard_strategy not in SHARD_STRATEGIES:
            raise ValueError(
                f"unknown shard strategy: {shard_strategy!r} "
                f"(known: {', '.join(SHARD_STRATEGIES)})"
            )
        if shards_per_worker < 1:
            raise ValueError("shards_per_worker must be positive")
        self.workers = workers
        self.shard_strategy = shard_strategy
        self.shards_per_worker = shards_per_worker
        self.executor = self._resolve_executor(executor)
        self.last_report: Optional[SchedulerReport] = None

    def _resolve_executor(self, executor: ExecutorSpec):
        if executor is None:
            executor = "serial" if self.workers <= 1 else "process"
        if isinstance(executor, str):
            if executor == "serial":
                return SerialExecutor()
            if executor == "process":
                return MultiprocessingExecutor(self.workers)
            raise ValueError(
                f"unknown executor: {executor!r} (known: serial, process)"
            )
        return executor

    @classmethod
    def from_config(cls, config) -> "ConstructionScheduler":
        """Build a scheduler from a :class:`~repro.engine.DiagramConfig`."""
        return cls(
            workers=getattr(config, "workers", 1),
            shard_strategy=getattr(config, "shard_strategy", "round_robin"),
        )

    # ------------------------------------------------------------------ #
    # sharding
    # ------------------------------------------------------------------ #
    def shard(self, spec: CellWorkSpec) -> List[List[int]]:
        """Split the spec's object ids into shards per the strategy."""
        shards = max(1, self.workers * self.shards_per_worker)
        if self.shard_strategy == "spatial_tile":
            return shard_spatial_tiles(spec, shards)
        return shard_round_robin([obj.oid for obj in spec.objects], shards)

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def compute_cells(self, spec: CellWorkSpec) -> Dict[int, ObjectCellResult]:
        """Compute every object's cell result, keyed by object id.

        Falls back to in-process execution when a worker pool cannot be
        created (restricted environments) or the spec will not pickle, so
        builds never fail just because parallelism is unavailable.
        """
        shards = self.shard(spec)
        executor = self.executor
        fell_back = False
        start = time.perf_counter()
        try:
            outputs = executor.run(spec, shards)
        except (OSError, pickle.PicklingError, AttributeError, ImportError):
            if isinstance(executor, SerialExecutor):
                raise
            fell_back = True
            executor = SerialExecutor()
            outputs = executor.run(spec, shards)
        total = time.perf_counter() - start

        self.last_report = SchedulerReport(
            strategy=self.shard_strategy,
            executor=executor.name,
            workers=self.workers,
            objects=len(spec.objects),
            total_seconds=total,
            shards=[
                ShardReport(index=i, size=len(shard), seconds=seconds)
                for i, (shard, (_results, seconds)) in enumerate(zip(shards, outputs))
            ],
            fell_back_to_serial=fell_back,
        )

        merged: Dict[int, ObjectCellResult] = {}
        for results, _seconds in outputs:
            for result in results:
                merged[result.oid] = result
        return merged


def available_workers() -> int:
    """Usable CPU count (affinity-aware where the platform exposes it)."""
    if hasattr(os, "sched_getaffinity"):
        try:
            return max(1, len(os.sched_getaffinity(0)))
        except OSError:  # pragma: no cover - platform quirk
            pass
    return max(1, os.cpu_count() or 1)
