"""Query processing: verification and qualification probabilities.

Retrieving the *answer objects* of a probabilistic nearest-neighbour query is
the job of the indexes (UV-index or R-tree); this package implements the
index-agnostic parts shared by both:

* the ``d_minmax`` verification of Cheng et al. (TKDE'04) that removes
  objects that cannot possibly be the nearest neighbour,
* qualification-probability computation by numerical integration over
  distance distributions, and a Monte-Carlo estimator as an independent
  cross-check,
* the result containers returned to callers.
"""

from repro.queries.verifier import min_max_prune
from repro.queries.probability import (
    qualification_probabilities,
    qualification_probabilities_sampling,
)
from repro.queries.probability_kernel import (
    DEFAULT_PROB_KERNEL,
    PROB_KERNELS,
    RefinementStats,
    RingCache,
    compute_qualification_probabilities,
    qualification_probabilities_vectorized,
)
from repro.queries.result import PNNAnswer, PNNResult
from repro.queries.spec import BatchQuery, KNNQuery, PNNQuery, Query, RangeQuery

__all__ = [
    "DEFAULT_PROB_KERNEL",
    "PROB_KERNELS",
    "RefinementStats",
    "RingCache",
    "compute_qualification_probabilities",
    "min_max_prune",
    "qualification_probabilities",
    "qualification_probabilities_sampling",
    "qualification_probabilities_vectorized",
    "BatchQuery",
    "KNNQuery",
    "PNNAnswer",
    "PNNQuery",
    "PNNResult",
    "Query",
    "RangeQuery",
]
