"""Probabilistic k-nearest-neighbour (k-PNN) queries.

The paper's UV-diagram targets the 1-NN case; k-NN over uncertain data is
listed among the related queries it could be extended to (Section II cites
the k-th order Voronoi diagram, and Section VII mentions extending to other
queries).  This module provides that extension on top of the same substrates:

* **answer-object retrieval**: an object has non-zero probability of being
  among the k nearest iff its minimum distance from the query does not exceed
  ``d_kminmax`` -- the k-th smallest *maximum* distance over all objects.
  The bound is obtained from the R-tree with a best-first traversal over
  maximum distances, then candidates are collected with a circular range
  query, exactly mirroring the 1-NN branch-and-prune strategy.
* **probability estimation**: the probability that an object is among the k
  nearest is estimated over sampled possible worlds (the numerical
  integration of the 1-NN case does not generalise cheaply to k > 1).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.geometry.point import Point
from repro.rtree.tree import RTree
from repro.uncertain.objects import UncertainObject


@dataclass
class KNNAnswer:
    """One answer object of a k-PNN query."""

    oid: int
    probability: float

    def to_dict(self) -> dict:
        """JSON-compatible state (inverse of :meth:`from_dict`)."""
        return {"oid": self.oid, "probability": self.probability}

    @classmethod
    def from_dict(cls, state: dict) -> "KNNAnswer":
        """Rebuild an answer from :meth:`to_dict` output."""
        return cls(oid=int(state["oid"]), probability=float(state["probability"]))


@dataclass
class KNNResult:
    """Result of a probabilistic k-NN query."""

    query: Point
    k: int
    answers: List[KNNAnswer] = field(default_factory=list)

    @property
    def answer_ids(self) -> List[int]:
        """Ids of the answer objects."""
        return [a.oid for a in self.answers]

    def top(self, count: int) -> List[KNNAnswer]:
        """The ``count`` most probable answers."""
        return sorted(self.answers, key=lambda a: (-a.probability, a.oid))[:count]

    def expected_in_top_k(self) -> float:
        """Sum of probabilities (should be close to ``k`` for exact answers)."""
        return sum(a.probability for a in self.answers)

    def to_dict(self) -> dict:
        """JSON-compatible state (inverse of :meth:`from_dict`)."""
        return {
            "type": "knn_result",
            "query": [self.query.x, self.query.y],
            "k": self.k,
            "answers": [answer.to_dict() for answer in self.answers],
        }

    @classmethod
    def from_dict(cls, state: dict) -> "KNNResult":
        """Rebuild a result from :meth:`to_dict` output."""
        return cls(
            query=Point(float(state["query"][0]), float(state["query"][1])),
            k=int(state["k"]),
            answers=[KNNAnswer.from_dict(entry) for entry in state.get("answers", [])],
        )


def kth_min_max_distance(
    objects: Sequence[UncertainObject], query: Point, k: int
) -> float:
    """The k-th smallest maximum distance from the query (the pruning bound)."""
    if k < 1:
        raise ValueError("k must be positive")
    if len(objects) < k:
        k = len(objects)
    max_distances = sorted(obj.max_distance(query) for obj in objects)
    return max_distances[k - 1]


def knn_answer_objects_brute_force(
    objects: Sequence[UncertainObject], query: Point, k: int
) -> List[int]:
    """Ground-truth k-PNN answer set by direct distance comparison."""
    if not objects:
        return []
    bound = kth_min_max_distance(objects, query, k)
    return sorted(
        obj.oid for obj in objects if obj.min_distance(query) <= bound + 1e-12
    )


class ProbabilisticKNN:
    """k-PNN query processor over an R-tree of uncertain objects.

    Args:
        tree: R-tree over the objects (used for bound computation and
            candidate retrieval).
        objects: the full objects, keyed by id (needed for pdf sampling).
    """

    def __init__(self, tree: RTree, objects: Sequence[UncertainObject]):
        self.tree = tree
        self.by_id: Dict[int, UncertainObject] = {obj.oid: obj for obj in objects}

    # ------------------------------------------------------------------ #
    # candidate retrieval
    # ------------------------------------------------------------------ #
    def _kth_max_distance_bound(self, query: Point, k: int) -> float:
        """Best-first traversal by *maximum* distance to find ``d_kminmax``."""
        found = self.kth_max_distance_values(query, k)
        return found[-1] if found else float("inf")

    def kth_max_distance_values(self, query: Point, k: int) -> List[float]:
        """The (up to) ``k`` smallest object maximum distances, ascending.

        This is the multiset the best-first traversal pops before stopping;
        the sharded engine merges these lists across shards, whose k-th
        smallest equals the single-tree ``d_kminmax`` exactly.
        """
        heap: List[tuple] = []
        counter = itertools.count()
        heapq.heappush(heap, (0.0, next(counter), False, self.tree.root))
        found: List[float] = []
        while heap and len(found) < k:
            key, _, is_object, item = heapq.heappop(heap)
            if is_object:
                found.append(key)
                continue
            node = item
            if node.is_leaf:
                for entry in self.tree._read_leaf(node):
                    # Use the object's true maximum distance (the MBC inscribed
                    # in the MBR), not the MBR corner distance, so the bound
                    # matches the answer-object semantics exactly.
                    max_dist = self.by_id[entry.oid].max_distance(query)
                    heapq.heappush(heap, (max_dist, next(counter), True, entry.oid))
            else:
                for entry in node.entries:
                    # A child's smallest possible "max distance" is its min
                    # distance; use it as an optimistic key.
                    heapq.heappush(
                        heap,
                        (
                            entry.mbr.min_distance_to_point(query),
                            next(counter),
                            False,
                            entry.child,
                        ),
                    )
        return found

    def retrieve_candidates(self, query: Point, k: int) -> List[int]:
        """Ids of objects with non-zero probability of being in the top ``k``."""
        if k < 1:
            raise ValueError("k must be positive")
        bound = self._kth_max_distance_bound(query, k)
        if bound == float("inf"):
            return []
        candidates = self.tree.circular_range_query(query, bound)
        return sorted(
            oid
            for oid in candidates
            if self.by_id[oid].min_distance(query) <= bound + 1e-12
        )

    # ------------------------------------------------------------------ #
    # full query
    # ------------------------------------------------------------------ #
    def query(
        self,
        query: Point,
        k: int,
        worlds: int = 2000,
        rng: Optional[np.random.Generator] = None,
    ) -> KNNResult:
        """Evaluate a k-PNN query with Monte-Carlo probability estimation."""
        candidate_ids = self.retrieve_candidates(query, k)
        candidates = [self.by_id[oid] for oid in candidate_ids]
        if not candidates:
            return KNNResult(query=query, k=k)
        if rng is None:
            rng = np.random.default_rng(0)
        answers = estimate_knn_probabilities(
            candidates, query, k, worlds=worlds, rng=rng
        )
        return KNNResult(query=query, k=k, answers=answers)


def estimate_knn_probabilities(
    candidates: Sequence[UncertainObject],
    query: Point,
    k: int,
    worlds: int,
    rng: np.random.Generator,
) -> List[KNNAnswer]:
    """Monte-Carlo top-k membership probabilities over ``candidates``.

    Samples one position per candidate per world (consuming ``rng`` in
    candidate-list order, so a fixed candidate list and seed reproduce the
    same probabilities everywhere -- the property the sharded engine's
    parity guarantee relies on) and counts how often each candidate ranks
    among the ``k`` nearest.
    """
    effective_k = min(k, len(candidates))
    query_xy = np.array([query.x, query.y])
    samples = np.stack(
        [obj.sample_positions(worlds, rng) for obj in candidates], axis=1
    )  # (worlds, candidates, 2)
    distances = np.linalg.norm(samples - query_xy, axis=2)
    ranks = np.argsort(distances, axis=1)[:, :effective_k]
    counts = np.zeros(len(candidates), dtype=float)
    for column in range(effective_k):
        counts += np.bincount(ranks[:, column], minlength=len(candidates))
    probabilities = counts / worlds

    answers = [
        KNNAnswer(oid=obj.oid, probability=float(p))
        for obj, p in zip(candidates, probabilities)
        if p > 0.0
    ]
    answers.sort(key=lambda a: (-a.probability, a.oid))
    return answers
