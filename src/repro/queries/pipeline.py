"""The shared PNN evaluation pipeline.

Every PNN processor in the library -- UV-index point query, R-tree
branch-and-prune, uniform-grid ring expansion, and the unified
:class:`~repro.engine.engine.QueryEngine` -- evaluates a query the same way:

1. retrieve candidate ``(oid, MBC)`` pairs from an index structure,
2. verify them with the ``d_minmax`` rule,
3. fetch the surviving objects (pdf retrieval, counted I/O),
4. compute qualification probabilities by numerical integration,

while recording the three time buckets of Figure 6(c) and the I/O split of
Figure 6(b).  This module implements that pipeline once; the processors only
supply the candidate-retrieval step, which is the part that actually differs
between index backends.
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional, Sequence, Tuple

from repro.geometry.circle import Circle
from repro.geometry.point import Point
from repro.queries.probability_kernel import (
    DEFAULT_PROB_KERNEL,
    RefinementStats,
    RingCache,
    compute_qualification_probabilities,
)
from repro.queries.result import PNNAnswer, PNNResult
from repro.queries.verifier import min_max_prune
from repro.storage.stats import IOStats, TimingBreakdown
from repro.uncertain.objects import UncertainObject

CandidateSource = Callable[[Point], Sequence[Tuple[int, Circle]]]
ObjectFetcher = Callable[[List[int]], List[UncertainObject]]


def evaluate_pnn(
    query: Point,
    retrieve_candidates: CandidateSource,
    fetch_objects: ObjectFetcher,
    io_counter: IOStats,
    compute_probabilities: bool = True,
    prob_kernel: str = DEFAULT_PROB_KERNEL,
    ring_cache: Optional[RingCache] = None,
    threshold: float = 0.0,
    top_k: Optional[int] = None,
) -> PNNResult:
    """Run the retrieve / verify / fetch / integrate pipeline for one query.

    Args:
        query: the query point.
        retrieve_candidates: index-specific candidate retrieval; every page it
            touches must be counted by ``io_counter``'s disk.
        fetch_objects: resolves answer-object ids to full objects (pdf
            retrieval); counted through the same disk when store-backed.
        io_counter: the live :class:`IOStats` of the disk under the index.
        compute_probabilities: when ``False``, skip the numerical integration
            (answer sets only, as in the pruning experiments).
        prob_kernel: refinement kernel -- ``"vectorized"`` (array-native,
            the default) or ``"scalar"`` (the reference implementation).
        ring_cache: optional cross-query cache of per-object ring profiles
            (used by the vectorized kernel).
        threshold: qualification-probability threshold ``tau``; answers with
            probability below it are dropped, and the kernel skips full
            integration for candidates provably below the bar.  The reported
            probabilities of the surviving answers are identical to
            post-filtering a full (``tau = 0``) evaluation.
        top_k: when given, keep only the ``top_k`` most probable answers
            (ties broken by object id), with the same early-termination and
            post-filter-equivalence guarantees.
    """
    if (threshold > 0.0 or top_k is not None) and not compute_probabilities:
        raise ValueError(
            "threshold / top_k filter on qualification probabilities and "
            "therefore require compute_probabilities=True"
        )
    timing = TimingBreakdown()
    io_before = io_counter.snapshot()

    start = time.perf_counter()
    candidates = list(retrieve_candidates(query))
    answer_ids = min_max_prune(query, candidates)
    timing.add("index", time.perf_counter() - start)
    index_io = io_counter.delta(io_before)

    start = time.perf_counter()
    answer_objects = fetch_objects(answer_ids)
    timing.add("object_retrieval", time.perf_counter() - start)

    start = time.perf_counter()
    refinement: Optional[RefinementStats] = None
    if compute_probabilities and answer_objects:
        refinement = RefinementStats()
        probabilities = compute_qualification_probabilities(
            answer_objects,
            query,
            kernel=prob_kernel,
            ring_cache=ring_cache,
            threshold=threshold,
            top_k=top_k,
            stats=refinement,
        )
    else:
        probabilities = {obj.oid: 0.0 for obj in answer_objects}
    timing.add("probability", time.perf_counter() - start)

    answers = [
        PNNAnswer(oid=oid, probability=probabilities.get(oid, 0.0))
        for oid in answer_ids
    ]
    answers.sort(key=lambda a: (-a.probability, a.oid))
    if threshold > 0.0:
        answers = [answer for answer in answers if answer.probability >= threshold]
    if top_k is not None:
        answers = answers[:top_k]
    return PNNResult(
        query=query,
        answers=answers,
        candidates_examined=len(candidates),
        io=io_counter.delta(io_before),
        index_io=index_io,
        timing=timing,
        threshold=threshold,
        top_k=top_k,
        refinement=refinement,
    )
