"""Qualification probabilities of PNN answer objects.

Given the answer objects ``A = {O_1, ..., O_m}`` of a PNN query at ``q``, the
qualification probability of ``O_i`` is

    P_i = integral over r of f_i(r) * prod_{j != i} (1 - F_j(r)) dr

where ``f_i`` / ``F_i`` are the pdf / cdf of the distance between ``q`` and
``O_i``.  The integral is evaluated numerically over a grid of distances
covering the union of the supports (the numerical-integration approach of
Cheng et al., TKDE'04, which the paper uses in its experiments).  A
Monte-Carlo estimator over sampled possible worlds (Kriegel et al.,
DASFAA'07) is provided as an independent implementation used for
cross-checking.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.geometry.point import Point
from repro.uncertain.distance_distribution import DistanceDistribution
from repro.uncertain.objects import UncertainObject
from repro.uncertain.sampling import estimate_nn_probabilities


def qualification_probabilities(
    objects: Sequence[UncertainObject],
    query: Point,
    steps: int = 120,
    rings: int = 48,
) -> Dict[int, float]:
    """Numerically integrate each candidate's probability of being the NN.

    This is the pure-Python *reference* implementation of the refinement
    step (``O(steps * m^2)`` scalar operations); production queries use the
    array-native kernel in :mod:`repro.queries.probability_kernel`, which
    computes the same probabilities to well within ``1e-9`` relative error.

    Args:
        objects: the answer objects (candidates that survived verification).
        query: the PNN query point.
        steps: number of integration steps over the relevant distance range.
        rings: radial resolution of each distance distribution.

    Returns:
        Mapping from object id to qualification probability.  Objects whose
        probability evaluates to zero (e.g. they were not actually answer
        objects) are still present with value ``0.0``; the caller may filter.
        Probabilities are normalised to sum to one when the raw integral
        deviates slightly due to discretisation.
    """
    if not objects:
        return {}
    if len(objects) == 1:
        return {objects[0].oid: 1.0}

    distributions = [DistanceDistribution(obj, query, rings=rings) for obj in objects]
    lower = min(dist.lower for dist in distributions)
    upper = min(dist.upper for dist in distributions)
    # Beyond the smallest distmax some object is certainly closer, so the
    # integrand vanishes; integrating to `upper` is sufficient.
    if upper <= lower:
        # A single object certainly dominates; it is the one whose maximum
        # distance equals the bound (oid tie-break for determinism).  The
        # oids are compared by value: `is` would fail for equal oids held by
        # distinct int objects (CPython only interns small ints).
        winner = min(objects, key=lambda o: (o.max_distance(query), o.oid))
        return {obj.oid: (1.0 if obj.oid == winner.oid else 0.0) for obj in objects}

    grid = np.linspace(lower, upper, steps + 1)
    cdfs = np.array([[dist.cdf(r) for r in grid] for dist in distributions])
    survivals = 1.0 - cdfs

    raw: List[float] = []
    for i, dist in enumerate(distributions):
        others = [j for j in range(len(distributions)) if j != i]
        # Probability that all other objects are farther than r, evaluated on
        # the cell midpoints, times the probability mass of O_i's distance in
        # each cell.
        prob = 0.0
        for k in range(steps):
            mass = cdfs[i, k + 1] - cdfs[i, k]
            if mass <= 0:
                continue
            surv = 1.0
            for j in others:
                surv *= 0.5 * (survivals[j, k] + survivals[j, k + 1])
            prob += mass * surv
        raw.append(prob)

    total = float(sum(raw))
    if total <= 0:
        # Degenerate discretisation; fall back to a uniform assignment over
        # objects whose minimum distance does not exceed the bound (shared
        # with the vectorized kernel so the parity contract cannot drift).
        from repro.queries.probability_kernel import _uniform_fallback

        return _uniform_fallback(objects, [dist.lower for dist in distributions], upper)
    return {obj.oid: float(value) / total for obj, value in zip(objects, raw)}


def qualification_probabilities_sampling(
    objects: Sequence[UncertainObject],
    query: Point,
    worlds: int = 4000,
    rng: Optional[np.random.Generator] = None,
) -> Dict[int, float]:
    """Monte-Carlo estimate of the qualification probabilities.

    A thin wrapper over :func:`repro.uncertain.sampling.estimate_nn_probabilities`
    so that callers can switch estimator without changing imports.
    """
    return estimate_nn_probabilities(list(objects), query, worlds=worlds, rng=rng)
