"""Qualification probabilities of PNN answer objects.

Given the answer objects ``A = {O_1, ..., O_m}`` of a PNN query at ``q``, the
qualification probability of ``O_i`` is

    P_i = integral over r of f_i(r) * prod_{j != i} (1 - F_j(r)) dr

where ``f_i`` / ``F_i`` are the pdf / cdf of the distance between ``q`` and
``O_i``.  The integral is evaluated numerically over a grid of distances
covering the union of the supports (the numerical-integration approach of
Cheng et al., TKDE'04, which the paper uses in its experiments).  A
Monte-Carlo estimator over sampled possible worlds (Kriegel et al.,
DASFAA'07) is provided as an independent implementation used for
cross-checking.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.geometry.point import Point
from repro.queries.probability_kernel import RefinementStats, _PruneBar
from repro.uncertain.distance_distribution import DistanceDistribution
from repro.uncertain.objects import UncertainObject
from repro.uncertain.sampling import estimate_nn_probabilities


def _reference_raw_integral(
    i: int, cdfs: np.ndarray, survivals: np.ndarray, steps: int
) -> float:
    """Candidate ``i``'s raw integral with the reference ``O(steps * m)`` loop.

    Probability that all other objects are farther than r, evaluated on the
    cell midpoints, times the probability mass of O_i's distance in each
    cell.  The arithmetic (and hence the bit pattern of the result) is the
    historical reference implementation's, whichever order candidates are
    integrated in.
    """
    others = [j for j in range(len(cdfs)) if j != i]
    prob = 0.0
    for k in range(steps):
        mass = cdfs[i, k + 1] - cdfs[i, k]
        if mass <= 0:
            continue
        surv = 1.0
        for j in others:
            surv *= 0.5 * (survivals[j, k] + survivals[j, k + 1])
        prob += mass * surv
    return prob


def _cheap_raw_integral(
    i: int,
    cdfs: np.ndarray,
    column_products: np.ndarray,
    zeros: np.ndarray,
    zero_count: np.ndarray,
    mid_survivals: np.ndarray,
) -> float:
    """Candidate ``i``'s raw integral from the shared column products.

    ``O(steps)`` instead of the reference loop's ``O(steps * m)``: the
    product over the *other* candidates' survivals is the all-candidate
    column product divided by this candidate's own survival (with explicit
    zero handling, mirroring the vectorized kernel).  Only used for
    candidates the prune bar already proved irrelevant, where the ~1e-16
    relative reassociation difference against the reference loop cannot
    affect the reported answers.
    """
    exclusive = np.where(
        (zero_count - zeros[i]) > 0,
        0.0,
        column_products / np.where(zeros[i], 1.0, mid_survivals[i]),
    )
    masses = cdfs[i, 1:] - cdfs[i, :-1]
    return float(np.sum(np.where(masses > 0.0, masses, 0.0) * exclusive))


def qualification_probabilities(
    objects: Sequence[UncertainObject],
    query: Point,
    steps: int = 120,
    rings: int = 48,
    threshold: float = 0.0,
    top_k: Optional[int] = None,
    stats: Optional["RefinementStats"] = None,
) -> Dict[int, float]:
    """Numerically integrate each candidate's probability of being the NN.

    This is the pure-Python *reference* implementation of the refinement
    step (``O(steps * m^2)`` scalar operations); production queries use the
    array-native kernel in :mod:`repro.queries.probability_kernel`, which
    computes the same probabilities to well within ``1e-9`` relative error.

    Args:
        objects: the answer objects (candidates that survived verification).
        query: the PNN query point.
        steps: number of integration steps over the relevant distance range.
        rings: radial resolution of each distance distribution.
        threshold / top_k: early-termination hints for threshold / top-k
            PNN.  Candidates whose probability upper bound (cdf mass inside
            the integration range) provably falls below the threshold or the
            running k-th probability skip the reference ``O(steps * m)``
            integration loop; their raw value is recovered from shared
            column products in ``O(steps)``, so reported probabilities match
            the full computation to within float reassociation error.  With
            the defaults the historical full loop runs unchanged.
        stats: optional :class:`~repro.queries.probability_kernel.RefinementStats`
            work counters, updated in place.

    Returns:
        Mapping from object id to qualification probability.  Objects whose
        probability evaluates to zero (e.g. they were not actually answer
        objects) are still present with value ``0.0``; the caller may filter.
        Probabilities are normalised to sum to one when the raw integral
        deviates slightly due to discretisation.
    """
    if not objects:
        return {}
    if stats is not None:
        stats.candidates = len(objects)
    if len(objects) == 1:
        if stats is not None:
            stats.trivial = 1
        return {objects[0].oid: 1.0}

    distributions = [DistanceDistribution(obj, query, rings=rings) for obj in objects]
    lower = min(dist.lower for dist in distributions)
    upper = min(dist.upper for dist in distributions)
    # Beyond the smallest distmax some object is certainly closer, so the
    # integrand vanishes; integrating to `upper` is sufficient.
    if upper <= lower:
        # A single object certainly dominates; it is the one whose maximum
        # distance equals the bound (oid tie-break for determinism).  The
        # oids are compared by value: `is` would fail for equal oids held by
        # distinct int objects (CPython only interns small ints).
        if stats is not None:
            stats.trivial = len(objects)
        winner = min(objects, key=lambda o: (o.max_distance(query), o.oid))
        return {obj.oid: (1.0 if obj.oid == winner.oid else 0.0) for obj in objects}

    grid = np.linspace(lower, upper, steps + 1)
    cdfs = np.array([[dist.cdf(r) for r in grid] for dist in distributions])
    survivals = 1.0 - cdfs

    if threshold <= 0.0 and top_k is None:
        raw = [
            _reference_raw_integral(i, cdfs, survivals, steps)
            for i in range(len(distributions))
        ]
        if stats is not None:
            stats.integrated = len(distributions)
    else:
        raw = _raw_with_early_termination_scalar(
            objects, cdfs, survivals, steps, threshold, top_k, stats
        )

    total = float(sum(raw))
    if total <= 0:
        # Degenerate discretisation; fall back to a uniform assignment over
        # objects whose minimum distance does not exceed the bound (shared
        # with the vectorized kernel so the parity contract cannot drift).
        from repro.queries.probability_kernel import _uniform_fallback

        return _uniform_fallback(objects, [dist.lower for dist in distributions], upper)
    return {obj.oid: float(value) / total for obj, value in zip(objects, raw)}


def _raw_with_early_termination_scalar(
    objects: Sequence[UncertainObject],
    cdfs: np.ndarray,
    survivals: np.ndarray,
    steps: int,
    threshold: float,
    top_k: Optional[int],
    stats: Optional[RefinementStats],
) -> List[float]:
    """Raw integrals with threshold / top-k early termination (scalar kernel).

    Candidates are visited in decreasing order of their raw upper bound (the
    cdf mass inside the integration range).  Clearing the
    :class:`~repro.queries.probability_kernel._PruneBar` runs the reference
    loop verbatim; failing it runs the ``O(steps)`` column-product shortcut.
    Every candidate still contributes its raw value to the normalisation
    total, which is what keeps the surviving probabilities equal to the full
    computation's.
    """
    count = len(cdfs)
    upper_bounds = cdfs[:, -1]
    order = sorted(range(count), key=lambda i: (-upper_bounds[i], objects[i].oid))
    bar = _PruneBar(threshold, top_k)
    raw = [0.0] * count
    column_products: Optional[np.ndarray] = None
    zeros: Optional[np.ndarray] = None
    zero_count: Optional[np.ndarray] = None
    mid_survivals: Optional[np.ndarray] = None
    for i in order:
        pruned_by = bar.classify(float(upper_bounds[i]))
        if pruned_by is None:
            value = _reference_raw_integral(i, cdfs, survivals, steps)
            if stats is not None:
                stats.integrated += 1
        else:
            if column_products is None:
                mid_survivals = 0.5 * (survivals[:, :-1] + survivals[:, 1:])
                zeros = mid_survivals <= 0.0
                zero_count = zeros.sum(axis=0)
                column_products = np.prod(
                    np.where(zeros, 1.0, mid_survivals), axis=0
                )
            value = _cheap_raw_integral(
                i, cdfs, column_products, zeros, zero_count, mid_survivals
            )
            if stats is not None:
                if pruned_by == "threshold":
                    stats.pruned_threshold += 1
                else:
                    stats.pruned_topk += 1
        raw[i] = value
        bar.observe(value)
    return raw


def qualification_probabilities_sampling(
    objects: Sequence[UncertainObject],
    query: Point,
    worlds: int = 4000,
    rng: Optional[np.random.Generator] = None,
) -> Dict[int, float]:
    """Monte-Carlo estimate of the qualification probabilities.

    A thin wrapper over :func:`repro.uncertain.sampling.estimate_nn_probabilities`
    so that callers can switch estimator without changing imports.
    """
    return estimate_nn_probabilities(list(objects), query, worlds=worlds, rng=rng)
