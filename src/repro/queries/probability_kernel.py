"""Vectorized qualification-probability kernel: the PNN refinement step.

The refinement step of a PNN query evaluates, for each answer object
``O_i``, the TKDE'04 integral the paper's Section VI-A cites (Cheng,
Kalashnikov, Prabhakar, *Querying Imprecise Data in Moving Object
Environments*, TKDE 2004):

    P_i = integral over r of f_i(r) * prod_{j != i} (1 - F_j(r)) dr

where ``f_i`` / ``F_i`` are the pdf / cdf of ``dist(q, X_i)``.  Discretised
over the grid ``r_0 < r_1 < ... < r_S`` spanning ``[min_i distmin_i,
min_i distmax_i]``, the scalar reference implementation
(:func:`repro.queries.probability.qualification_probabilities`) computes

    P_i ~= sum_k [F_i(r_{k+1}) - F_i(r_k)]           (the cell mass of O_i)
              * prod_{j != i} (1 - (F_j(r_k) + F_j(r_{k+1})) / 2)

with ``O(S * m^2)`` Python-level operations per query (``m`` answer
objects, ``S`` integration steps).  This module computes the same quantity
with a handful of numpy array operations:

* **Pre-pruning** -- candidates whose ``distmin`` exceeds the global minimum
  ``distmax`` contribute exactly zero (their cdf vanishes on the whole
  integration range, so their survival factor is exactly ``1``); they are
  assigned ``0.0`` before any distribution is built.  Survivors are put in
  canonical ``(distmin, oid)`` order so every floating-point reduction runs
  in a fixed order -- the kernel is bit-stable under permutation of the
  candidates.
* **Broadcasted CDF matrix** -- the ``(m, S+1)`` matrix ``F_j(r_k)`` comes
  from one broadcasted ring-coverage evaluation over ``(m, rings, S+1)``
  (see :func:`repro.uncertain.distance_distribution.coverage_array`)
  contracted against the per-object ring masses.
* **Log-survival sums** -- ``prod_{j != i}`` is replaced by
  ``exp(sum_j log S_j - log S_i)`` column sums with explicit zero handling,
  eliminating the inner ``O(m)`` loop.

Ring masses and midpoints depend only on each object's pdf -- not on the
query -- so a :class:`RingCache` shares them across every query that touches
the same object (the engine keeps one cache per dataset and invalidates it
on live updates).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.geometry.point import Point
from repro.uncertain.distance_distribution import coverage_array, ring_profile
from repro.uncertain.objects import UncertainObject

#: Registry of the selectable refinement kernels (``DiagramConfig.prob_kernel``).
PROB_KERNELS = ("vectorized", "scalar")
DEFAULT_PROB_KERNEL = "vectorized"


@dataclass
class RefinementStats:
    """Work counters of one refinement (qualification-probability) pass.

    The threshold / top-k early-termination machinery reports how much full
    integration it actually performed, so EXPLAIN output and the benchmark
    gates can measure refinement work independently of wall-clock jitter.

    Attributes:
        candidates: answer objects that entered the refinement step.
        integrated: candidates whose probability was computed by full
            (reference-arithmetic) integration.
        pruned_threshold: candidates short-circuited because their
            probability upper bound fell below the threshold bar.
        pruned_topk: candidates short-circuited because their upper bound
            fell below the running k-th best probability.
        trivial: candidates resolved without any integration at all --
            single-candidate queries, dominance short-circuits (one object's
            maximum distance under every other's minimum), and candidates
            the vectorized kernel drops up front because their cdf vanishes
            on the whole integration range.

    Every candidate lands in exactly one bucket, so
    ``integrated + pruned + trivial == candidates``.
    """

    candidates: int = 0
    integrated: int = 0
    pruned_threshold: int = 0
    pruned_topk: int = 0
    trivial: int = 0

    @property
    def pruned(self) -> int:
        """Candidates that skipped full integration via the prune bar."""
        return self.pruned_threshold + self.pruned_topk

    def merge(self, other: "RefinementStats") -> None:
        """Accumulate another pass's counters into this one."""
        self.candidates += other.candidates
        self.integrated += other.integrated
        self.pruned_threshold += other.pruned_threshold
        self.pruned_topk += other.pruned_topk
        self.trivial += other.trivial

    def to_dict(self) -> dict:
        """JSON-compatible state (inverse of :meth:`from_dict`)."""
        return {
            "candidates": self.candidates,
            "integrated": self.integrated,
            "pruned_threshold": self.pruned_threshold,
            "pruned_topk": self.pruned_topk,
            "trivial": self.trivial,
        }

    @classmethod
    def from_dict(cls, state: dict) -> "RefinementStats":
        """Rebuild counters from :meth:`to_dict` output."""
        return cls(
            candidates=int(state.get("candidates", 0)),
            integrated=int(state.get("integrated", 0)),
            pruned_threshold=int(state.get("pruned_threshold", 0)),
            pruned_topk=int(state.get("pruned_topk", 0)),
            trivial=int(state.get("trivial", 0)),
        )


class _PruneBar:
    """The running lower bar a candidate's raw upper bound must clear.

    Combines the two early-termination rules of threshold / top-k PNN on the
    *unnormalised* (raw-integral) scale, where both are sound: a candidate
    whose raw upper bound is strictly below ``threshold * T_lb`` (``T_lb`` a
    running lower bound of the final normalisation total) ends up strictly
    below the threshold after normalisation, and one strictly below the
    running k-th best raw value can never reach the top k.  Candidates that
    fail the bar still get their (tiny) raw value via a cheap
    column-product path, so the normalisation total -- and hence every
    surviving probability -- matches the full computation to within
    floating-point reassociation error.
    """

    def __init__(self, threshold: float, top_k: Optional[int]):
        self.threshold = threshold
        self.top_k = top_k
        self.total_lower_bound = 0.0
        self._best: List[float] = []  # min-heap of the top_k best raws

    def classify(self, upper_bound: float) -> Optional[str]:
        """``None`` to integrate fully, else which rule prunes the candidate."""
        if self.threshold > 0.0 and self.total_lower_bound > 0.0:
            if upper_bound < self.threshold * self.total_lower_bound:
                return "threshold"
        if self.top_k is not None and len(self._best) >= self.top_k:
            if upper_bound < self._best[0]:
                return "topk"
        return None

    def observe(self, raw: float) -> None:
        """Record a computed raw value (any candidate, full or cheap path)."""
        self.total_lower_bound = max(self.total_lower_bound, raw)
        if self.top_k is not None:
            if len(self._best) < self.top_k:
                heapq.heappush(self._best, raw)
            elif raw > self._best[0]:
                heapq.heapreplace(self._best, raw)


class RingCache:
    """Shares per-object ring profiles across queries.

    A ring profile (masses + midpoints of the radial integration rings) is a
    pure function of the object's pdf, so queries hitting the same candidate
    can reuse it.  Keys are ``(oid, rings)``; the owning engine invalidates
    an object's entries when it is inserted or deleted.
    """

    def __init__(self) -> None:
        self._profiles: Dict[Tuple[int, int], Tuple[np.ndarray, np.ndarray]] = {}
        self.hits = 0
        self.misses = 0

    def get(self, obj: UncertainObject, rings: int) -> Tuple[np.ndarray, np.ndarray]:
        """The ring profile of ``obj``, computed at most once per object."""
        key = (obj.oid, rings)
        profile = self._profiles.get(key)
        if profile is None:
            self.misses += 1
            profile = ring_profile(obj, rings)
            self._profiles[key] = profile
        else:
            self.hits += 1
        return profile

    def invalidate(self, oid: int) -> None:
        """Drop every cached profile of one object (live update support)."""
        for key in [key for key in self._profiles if key[0] == oid]:
            del self._profiles[key]

    def clear(self) -> None:
        self._profiles.clear()

    def __len__(self) -> int:
        return len(self._profiles)


def _uniform_fallback(
    objects: Sequence[UncertainObject], lowers_all: np.ndarray, upper: float
) -> Dict[int, float]:
    """Uniform split over eligible objects when every raw integral is zero.

    The degenerate-discretisation fallback shared by both kernels: mass is
    shared equally among objects whose minimum distance does not exceed the
    integration bound.  Unreachable through the vectorized kernel's normal
    flow (the minimum-``distmax`` object always keeps positive mass at the
    upper boundary) but kept for exact behavioural parity with the scalar
    reference, which calls this same helper.
    """
    eligible = [
        obj.oid for obj, low in zip(objects, lowers_all) if low <= upper + 1e-12
    ]
    if not eligible:
        eligible = [objects[0].oid]
    return {
        obj.oid: (1.0 / len(eligible) if obj.oid in eligible else 0.0)
        for obj in objects
    }


def qualification_probabilities_vectorized(
    objects: Sequence[UncertainObject],
    query: Point,
    steps: int = 120,
    rings: int = 48,
    ring_cache: Optional[RingCache] = None,
    threshold: float = 0.0,
    top_k: Optional[int] = None,
    stats: Optional[RefinementStats] = None,
) -> Dict[int, float]:
    """Array-native evaluation of all candidates' qualification probabilities.

    Produces the same mapping as the scalar reference
    (:func:`repro.queries.probability.qualification_probabilities`) -- same
    grid, same ring discretisation, same normalisation -- to within
    floating-point reassociation error (well below ``1e-9`` relative), while
    replacing the ``O(steps * m^2)`` Python loops with numpy array
    operations.  The result is independent of the order of ``objects``.

    Args:
        objects: the answer objects (candidates that survived verification).
        query: the PNN query point.
        steps: number of integration steps over the relevant distance range.
        rings: radial resolution of each distance distribution.
        ring_cache: optional cross-query cache of ring profiles.
        threshold / top_k: early-termination hints for threshold / top-k PNN.
            Candidates whose probability upper bound (their cdf mass inside
            the integration range) provably falls below the threshold or the
            running k-th probability skip full integration; their raw value
            comes from the shared column products instead, so every reported
            probability still equals the full computation's to within float
            reassociation error.  ``threshold=0.0`` with ``top_k=None`` (the
            default) runs the original full-matrix path unchanged.
        stats: optional work counters, updated in place.
    """
    if not objects:
        return {}
    if stats is not None:
        stats.candidates = len(objects)
    if len(objects) == 1:
        if stats is not None:
            stats.trivial = 1
        return {objects[0].oid: 1.0}

    lowers_all = np.array([obj.min_distance(query) for obj in objects])
    uppers_all = np.array([obj.max_distance(query) for obj in objects])
    lower = float(lowers_all.min())
    # Beyond the smallest distmax some object is certainly closer, so the
    # integrand vanishes; integrating to `upper` is sufficient.
    upper = float(uppers_all.min())
    if upper <= lower:
        # A single object certainly dominates; it is the one whose maximum
        # distance equals the bound (oid tie-break for determinism).
        if stats is not None:
            stats.trivial = len(objects)
        winner = min(objects, key=lambda o: (o.max_distance(query), o.oid))
        return {obj.oid: (1.0 if obj.oid == winner.oid else 0.0) for obj in objects}

    # Pre-pruning + canonical order: objects with distmin > upper have zero
    # cdf over [lower, upper] (survival factor exactly 1, own mass exactly
    # 0), so dropping them changes nothing; sorting the survivors by
    # (distmin, oid) fixes the reduction order regardless of input order.
    order = sorted(
        range(len(objects)), key=lambda i: (lowers_all[i], objects[i].oid)
    )
    kept = [i for i in order if lowers_all[i] <= upper]
    if stats is not None:
        stats.trivial = len(objects) - len(kept)

    profiles = [
        ring_cache.get(objects[i], rings)
        if ring_cache is not None
        else ring_profile(objects[i], rings)
        for i in kept
    ]
    masses = np.vstack([profile[0] for profile in profiles])       # (m, rings)
    mids = np.vstack([profile[1] for profile in profiles])         # (m, rings)
    dists = np.array([query.distance_to(objects[i].center) for i in kept])
    lowers = lowers_all[kept]
    uppers = uppers_all[kept]

    grid = np.linspace(lower, upper, steps + 1)                    # (S+1,)
    coverage = coverage_array(
        mids[:, :, None], dists[:, None, None], grid[None, None, :]
    )                                                              # (m, rings, S+1)
    cdfs = np.einsum("mk,mkg->mg", masses, coverage)               # (m, S+1)
    cdfs = np.minimum(1.0, np.maximum(0.0, cdfs))
    cdfs = np.where(grid[None, :] < lowers[:, None], 0.0, cdfs)
    cdfs = np.where(grid[None, :] >= uppers[:, None], 1.0, cdfs)

    survivals = 1.0 - cdfs
    mid_survivals = 0.5 * (survivals[:, :-1] + survivals[:, 1:])   # (m, S)
    cell_masses = cdfs[:, 1:] - cdfs[:, :-1]                       # (m, S)

    # prod_{j != i} via log-survival column sums.  Zeros are masked out of
    # the logs and tracked per column: the exclusive product of row i is
    # zero whenever any *other* row is zero in that column.
    zero = mid_survivals <= 0.0
    log_survivals = np.log(np.where(zero, 1.0, mid_survivals))
    column_log = log_survivals.sum(axis=0)                         # (S,)
    zero_count = zero.sum(axis=0)                                  # (S,)
    if threshold <= 0.0 and top_k is None:
        others_zero = zero_count[None, :] - zero
        exclusive = np.where(
            others_zero > 0, 0.0, np.exp(column_log[None, :] - log_survivals)
        )
        raw = np.sum(
            np.where(cell_masses > 0.0, cell_masses, 0.0) * exclusive, axis=1
        )
        if stats is not None:
            stats.integrated = len(kept)
    else:
        raw = _raw_with_early_termination(
            objects,
            kept,
            cdfs,
            mid_survivals,
            cell_masses,
            zero,
            log_survivals,
            column_log,
            zero_count,
            threshold,
            top_k,
            stats,
        )

    total = float(raw.sum())
    if total <= 0.0:
        return _uniform_fallback(objects, lowers_all, upper)

    result = {obj.oid: 0.0 for obj in objects}
    for row, i in enumerate(kept):
        result[objects[i].oid] = float(raw[row]) / total
    return result


def _raw_with_early_termination(
    objects: Sequence[UncertainObject],
    kept: Sequence[int],
    cdfs: np.ndarray,
    mid_survivals: np.ndarray,
    cell_masses: np.ndarray,
    zero: np.ndarray,
    log_survivals: np.ndarray,
    column_log: np.ndarray,
    zero_count: np.ndarray,
    threshold: float,
    top_k: Optional[int],
    stats: Optional[RefinementStats],
) -> np.ndarray:
    """Row-by-row raw integrals with threshold / top-k early termination.

    Rows are visited in decreasing order of their raw upper bound (the cdf
    mass inside the integration range, ``cdfs[:, -1]``).  A row that clears
    the :class:`_PruneBar` is integrated with exactly the arithmetic of the
    full-matrix path (``exp(column_log - log_survival)``), so its raw value
    is bit-identical; a pruned row's raw is recovered from the shared column
    product by one division per step -- still exact up to float
    reassociation, but without the per-row ``exp`` of full integration.
    Pruned rows always have survival bounded away from zero (their cdf never
    reaches the bar, which never exceeds one), so the division is safe.
    """
    upper_bounds = cdfs[:, -1]
    order = sorted(
        range(len(kept)), key=lambda r: (-upper_bounds[r], objects[kept[r]].oid)
    )
    bar = _PruneBar(threshold, top_k)
    raw = np.zeros(len(kept))
    exp_columns: Optional[np.ndarray] = None
    for row in order:
        pruned_by = bar.classify(float(upper_bounds[row]))
        if pruned_by is None:
            others_zero = zero_count - zero[row]
            exclusive = np.where(
                others_zero > 0, 0.0, np.exp(column_log - log_survivals[row])
            )
            if stats is not None:
                stats.integrated += 1
        else:
            if exp_columns is None:
                exp_columns = np.exp(column_log)
            others_zero = zero_count - zero[row]
            exclusive = np.where(
                others_zero > 0,
                0.0,
                exp_columns / np.where(zero[row], 1.0, mid_survivals[row]),
            )
            if stats is not None:
                if pruned_by == "threshold":
                    stats.pruned_threshold += 1
                else:
                    stats.pruned_topk += 1
        value = float(
            np.sum(
                np.where(cell_masses[row] > 0.0, cell_masses[row], 0.0) * exclusive
            )
        )
        raw[row] = value
        bar.observe(value)
    return raw


def compute_qualification_probabilities(
    objects: Sequence[UncertainObject],
    query: Point,
    kernel: str = DEFAULT_PROB_KERNEL,
    steps: int = 120,
    rings: int = 48,
    ring_cache: Optional[RingCache] = None,
    threshold: float = 0.0,
    top_k: Optional[int] = None,
    stats: Optional[RefinementStats] = None,
) -> Dict[int, float]:
    """Dispatch to the selected refinement kernel.

    ``"vectorized"`` (the default) runs the array-native kernel above;
    ``"scalar"`` runs the pure-Python reference implementation.  Both
    produce the same probabilities to well within ``1e-9`` relative error,
    and both honour the ``threshold`` / ``top_k`` early-termination hints
    (see :func:`qualification_probabilities_vectorized`).
    """
    if kernel == "scalar":
        from repro.queries.probability import qualification_probabilities

        return qualification_probabilities(
            objects,
            query,
            steps=steps,
            rings=rings,
            threshold=threshold,
            top_k=top_k,
            stats=stats,
        )
    if kernel == "vectorized":
        return qualification_probabilities_vectorized(
            objects,
            query,
            steps=steps,
            rings=rings,
            ring_cache=ring_cache,
            threshold=threshold,
            top_k=top_k,
            stats=stats,
        )
    raise ValueError(
        f"unknown probability kernel: {kernel!r} (known: {', '.join(PROB_KERNELS)})"
    )
