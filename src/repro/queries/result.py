"""Result containers for PNN and pattern queries."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.geometry.point import Point
from repro.queries.probability_kernel import RefinementStats
from repro.storage.stats import IOStats, TimingBreakdown


@dataclass(frozen=True)
class PNNAnswer:
    """One answer object of a PNN query."""

    oid: int
    probability: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0 + 1e-9:
            raise ValueError(f"probability out of range: {self.probability}")


@dataclass
class PNNResult:
    """Full result of a probabilistic nearest-neighbour query.

    Attributes:
        query: the query point.
        answers: answer objects with their qualification probabilities,
            sorted by decreasing probability.
        candidates_examined: number of objects fetched from the index before
            verification.
        io: total I/O performed while evaluating the query (index pages plus
            object retrieval).
        index_io: I/O spent on the index structure alone (leaf page lists for
            the UV-index, leaf nodes for the R-tree) -- the quantity plotted
            in Figure 6(b).
        timing: wall-clock breakdown (index traversal, object retrieval,
            probability computation) -- the components of Figure 6(c).
        threshold: the qualification-probability threshold ``tau`` the
            answers were filtered with (``0.0`` = unfiltered).
        top_k: the top-k cut applied to the answers (``None`` = all).
        refinement: work counters of the probability (refinement) step --
            how many candidates were fully integrated vs short-circuited by
            the threshold / top-k prune bar.  ``None`` when probabilities
            were not computed.
    """

    query: Point
    answers: List[PNNAnswer] = field(default_factory=list)
    candidates_examined: int = 0
    io: Optional[IOStats] = None
    index_io: Optional[IOStats] = None
    timing: Optional[TimingBreakdown] = None
    threshold: float = 0.0
    top_k: Optional[int] = None
    refinement: Optional[RefinementStats] = None

    @property
    def answer_ids(self) -> List[int]:
        """The ids of the answer objects."""
        return [answer.oid for answer in self.answers]

    @property
    def probabilities(self) -> Dict[int, float]:
        """Mapping from object id to qualification probability."""
        return {answer.oid: answer.probability for answer in self.answers}

    def top(self) -> Optional[PNNAnswer]:
        """The most probable nearest neighbour, or ``None`` for an empty result."""
        return self.answers[0] if self.answers else None

    def total_probability(self) -> float:
        """Sum of the qualification probabilities (should be close to one)."""
        return sum(answer.probability for answer in self.answers)

    def sorted_by_probability(self) -> List[PNNAnswer]:
        """Answers ordered by decreasing probability (ties broken by id)."""
        return sorted(self.answers, key=lambda a: (-a.probability, a.oid))
