"""Result containers for PNN and pattern queries.

Results mirror the descriptors' wire behaviour: every container round-trips
through JSON-compatible dicts (``to_dict`` / ``from_dict``), which is how the
:mod:`repro.serve` workers ship answers back over HTTP.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.geometry.point import Point
from repro.queries.probability_kernel import RefinementStats
from repro.storage.stats import IOStats, TimingBreakdown


@dataclass(frozen=True)
class PNNAnswer:
    """One answer object of a PNN query."""

    oid: int
    probability: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0 + 1e-9:
            raise ValueError(f"probability out of range: {self.probability}")

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible state (inverse of :meth:`from_dict`)."""
        return {"oid": self.oid, "probability": self.probability}

    @classmethod
    def from_dict(cls, state: Dict[str, Any]) -> "PNNAnswer":
        """Rebuild an answer from :meth:`to_dict` output (re-validated)."""
        return cls(oid=int(state["oid"]), probability=float(state["probability"]))


@dataclass
class PNNResult:
    """Full result of a probabilistic nearest-neighbour query.

    Attributes:
        query: the query point.
        answers: answer objects with their qualification probabilities,
            sorted by decreasing probability.
        candidates_examined: number of objects fetched from the index before
            verification.
        io: total I/O performed while evaluating the query (index pages plus
            object retrieval).
        index_io: I/O spent on the index structure alone (leaf page lists for
            the UV-index, leaf nodes for the R-tree) -- the quantity plotted
            in Figure 6(b).
        timing: wall-clock breakdown (index traversal, object retrieval,
            probability computation) -- the components of Figure 6(c).
        threshold: the qualification-probability threshold ``tau`` the
            answers were filtered with (``0.0`` = unfiltered).
        top_k: the top-k cut applied to the answers (``None`` = all).
        refinement: work counters of the probability (refinement) step --
            how many candidates were fully integrated vs short-circuited by
            the threshold / top-k prune bar.  ``None`` when probabilities
            were not computed.
    """

    query: Point
    answers: List[PNNAnswer] = field(default_factory=list)
    candidates_examined: int = 0
    io: Optional[IOStats] = None
    index_io: Optional[IOStats] = None
    timing: Optional[TimingBreakdown] = None
    threshold: float = 0.0
    top_k: Optional[int] = None
    refinement: Optional[RefinementStats] = None

    @property
    def answer_ids(self) -> List[int]:
        """The ids of the answer objects."""
        return [answer.oid for answer in self.answers]

    @property
    def probabilities(self) -> Dict[int, float]:
        """Mapping from object id to qualification probability."""
        return {answer.oid: answer.probability for answer in self.answers}

    def top(self) -> Optional[PNNAnswer]:
        """The most probable nearest neighbour, or ``None`` for an empty result."""
        return self.answers[0] if self.answers else None

    def total_probability(self) -> float:
        """Sum of the qualification probabilities (should be close to one)."""
        return sum(answer.probability for answer in self.answers)

    def sorted_by_probability(self) -> List[PNNAnswer]:
        """Answers ordered by decreasing probability (ties broken by id)."""
        return sorted(self.answers, key=lambda a: (-a.probability, a.oid))

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible state (inverse of :meth:`from_dict`)."""
        return {
            "type": "pnn_result",
            "query": [self.query.x, self.query.y],
            "answers": [answer.to_dict() for answer in self.answers],
            "candidates_examined": self.candidates_examined,
            "io": self.io.as_dict() if self.io is not None else None,
            "index_io": self.index_io.as_dict() if self.index_io is not None else None,
            "timing": self.timing.to_dict() if self.timing is not None else None,
            "threshold": self.threshold,
            "top_k": self.top_k,
            "refinement": (
                self.refinement.to_dict() if self.refinement is not None else None
            ),
        }

    @classmethod
    def from_dict(cls, state: Dict[str, Any]) -> "PNNResult":
        """Rebuild a result from :meth:`to_dict` output."""
        top_k = state.get("top_k")
        return cls(
            query=Point(float(state["query"][0]), float(state["query"][1])),
            answers=[PNNAnswer.from_dict(entry) for entry in state.get("answers", [])],
            candidates_examined=int(state.get("candidates_examined", 0)),
            io=IOStats.from_dict(state["io"]) if state.get("io") is not None else None,
            index_io=(
                IOStats.from_dict(state["index_io"])
                if state.get("index_io") is not None
                else None
            ),
            timing=(
                TimingBreakdown.from_dict(state["timing"])
                if state.get("timing") is not None
                else None
            ),
            threshold=float(state.get("threshold", 0.0)),
            top_k=int(top_k) if top_k is not None else None,
            refinement=(
                RefinementStats.from_dict(state["refinement"])
                if state.get("refinement") is not None
                else None
            ),
        )
