"""Typed, immutable query descriptors: the input half of the query API.

A descriptor says *what* to compute -- a query point, a probability
threshold, a ``k`` -- and nothing about *how*: backend choice, filter
strategy, and kernel selection belong to the
:class:`~repro.engine.planner.QueryPlanner`, which turns a descriptor into a
:class:`~repro.engine.planner.QueryPlan`.  Descriptors are frozen
dataclasses, so they can be built once, shared across threads, reused in
batches, and logged verbatim next to the plan that served them.

The four shapes mirror the paper's query taxonomy:

* :class:`PNNQuery` -- probabilistic nearest neighbour, optionally with a
  qualification-probability threshold ``tau`` (probability-threshold PNN)
  and/or a ``top_k`` cut (top-k PNN),
* :class:`KNNQuery` -- probabilistic k-NN over sampled possible worlds,
* :class:`RangeQuery` -- UV-partition retrieval inside a rectangle
  (Section V-C, query 2),
* :class:`BatchQuery` -- many PNN queries streamed through one shared read
  cache.

Every descriptor round-trips through plain JSON-compatible dicts
(:meth:`to_dict` / :meth:`from_dict`, with a ``"type"`` discriminator and
:func:`query_from_dict` as the dispatching decoder).  This is the wire
protocol of :mod:`repro.serve` -- a request body *is* a serialized
descriptor -- but it is equally useful for logging a workload next to the
plans that served it or replaying a recorded workload file.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, Optional, Sequence, Tuple, Union

from repro.geometry.point import Point
from repro.geometry.rectangle import Rect


def _point_state(point: Point) -> list:
    return [point.x, point.y]


def _point_from_state(state: Any) -> Point:
    if not isinstance(state, (list, tuple)) or len(state) != 2:
        raise ValueError(f"a point serializes as [x, y], got {state!r}")
    return Point(float(state[0]), float(state[1]))


@dataclass(frozen=True)
class PNNQuery:
    """A probabilistic nearest-neighbour query.

    Attributes:
        point: the query point.
        threshold: qualification-probability threshold ``tau`` in ``[0, 1]``;
            only answers with probability ``>= tau`` are reported, and the
            refinement step may skip full integration for candidates whose
            probability upper bound provably falls below the threshold.
            ``0.0`` (the default) reports every answer object.
        top_k: when given, only the ``top_k`` most probable answers are
            reported (ties broken by object id), again with refinement-level
            early termination against the running k-th probability.
        compute_probabilities: when ``False``, skip the numerical
            integration entirely and report answer sets only (as in the
            pruning experiments); incompatible with ``threshold``/``top_k``,
            which are defined on probabilities.
    """

    point: Point
    threshold: float = 0.0
    top_k: Optional[int] = None
    compute_probabilities: bool = True

    def __post_init__(self) -> None:
        if not 0.0 <= self.threshold <= 1.0:
            raise ValueError(
                f"threshold must be within [0, 1], got {self.threshold}"
            )
        if self.top_k is not None and self.top_k < 1:
            raise ValueError(f"top_k must be positive when given, got {self.top_k}")
        if not self.compute_probabilities and (self.threshold > 0.0 or self.top_k):
            raise ValueError(
                "threshold / top_k filter on qualification probabilities and "
                "therefore require compute_probabilities=True"
            )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible state (inverse of :meth:`from_dict`)."""
        return {
            "type": "pnn",
            "point": _point_state(self.point),
            "threshold": self.threshold,
            "top_k": self.top_k,
            "compute_probabilities": self.compute_probabilities,
        }

    @classmethod
    def from_dict(cls, state: Dict[str, Any]) -> "PNNQuery":
        """Rebuild a descriptor from :meth:`to_dict` output (re-validated)."""
        top_k = state.get("top_k")
        return cls(
            point=_point_from_state(state["point"]),
            threshold=float(state.get("threshold", 0.0)),
            top_k=int(top_k) if top_k is not None else None,
            compute_probabilities=bool(state.get("compute_probabilities", True)),
        )


@dataclass(frozen=True)
class KNNQuery:
    """A probabilistic k-nearest-neighbour query (Monte-Carlo estimation).

    Attributes:
        point: the query point.
        k: how many nearest neighbours the answers may rank among.
        worlds: number of sampled possible worlds for the estimator.
        seed: seed of the sampling generator; ``None`` uses the engine's
            deterministic default (seed 0), matching the legacy
            :meth:`~repro.engine.engine.QueryEngine.knn` behaviour.
    """

    point: Point
    k: int
    worlds: int = 2000
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError(f"k must be positive, got {self.k}")
        if self.worlds < 1:
            raise ValueError(f"worlds must be positive, got {self.worlds}")

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible state (inverse of :meth:`from_dict`)."""
        return {
            "type": "knn",
            "point": _point_state(self.point),
            "k": self.k,
            "worlds": self.worlds,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, state: Dict[str, Any]) -> "KNNQuery":
        """Rebuild a descriptor from :meth:`to_dict` output (re-validated)."""
        seed = state.get("seed")
        return cls(
            point=_point_from_state(state["point"]),
            k=int(state["k"]),
            worlds=int(state.get("worlds", 2000)),
            seed=int(seed) if seed is not None else None,
        )


@dataclass(frozen=True)
class RangeQuery:
    """UV-partition retrieval inside a rectangular region."""

    region: Rect

    def __post_init__(self) -> None:
        if self.region.xmax < self.region.xmin or self.region.ymax < self.region.ymin:
            raise ValueError(f"degenerate query region: {self.region}")

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible state (inverse of :meth:`from_dict`)."""
        region = self.region
        return {
            "type": "range",
            "region": [region.xmin, region.ymin, region.xmax, region.ymax],
        }

    @classmethod
    def from_dict(cls, state: Dict[str, Any]) -> "RangeQuery":
        """Rebuild a descriptor from :meth:`to_dict` output (re-validated)."""
        region = state["region"]
        if not isinstance(region, (list, tuple)) or len(region) != 4:
            raise ValueError(
                f"a region serializes as [xmin, ymin, xmax, ymax], got {region!r}"
            )
        return cls(region=Rect(*(float(value) for value in region)))


@dataclass(frozen=True)
class BatchQuery:
    """Many PNN queries evaluated through one shared read cache.

    Execution streams ``(query, result, plan)`` triples in input order (see
    :meth:`repro.engine.engine.QueryEngine.execute`), so arbitrarily large
    workloads can be consumed incrementally while leaf reads stay shared.

    ``queries`` accepts plain :class:`~repro.geometry.point.Point` objects
    for convenience; they are promoted to default :class:`PNNQuery`
    descriptors at construction time.
    """

    queries: Tuple[PNNQuery, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        promoted = []
        for query in self.queries:
            if isinstance(query, PNNQuery):
                promoted.append(query)
            elif isinstance(query, Point):
                promoted.append(PNNQuery(point=query))
            else:
                raise TypeError(
                    f"BatchQuery holds PNNQuery descriptors or Points, got {query!r}"
                )
        object.__setattr__(self, "queries", tuple(promoted))

    @classmethod
    def of(
        cls,
        points: Sequence[Union[Point, PNNQuery]],
        threshold: float = 0.0,
        top_k: Optional[int] = None,
        compute_probabilities: bool = True,
    ) -> "BatchQuery":
        """Build a batch over ``points`` with shared PNN parameters."""
        return cls(
            queries=tuple(
                query
                if isinstance(query, PNNQuery)
                else PNNQuery(
                    point=query,
                    threshold=threshold,
                    top_k=top_k,
                    compute_probabilities=compute_probabilities,
                )
                for query in points
            )
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible state (inverse of :meth:`from_dict`)."""
        return {
            "type": "batch",
            "queries": [query.to_dict() for query in self.queries],
        }

    @classmethod
    def from_dict(cls, state: Dict[str, Any]) -> "BatchQuery":
        """Rebuild a descriptor from :meth:`to_dict` output (re-validated)."""
        return cls(
            queries=tuple(
                PNNQuery.from_dict(entry) for entry in state.get("queries", [])
            )
        )

    def __len__(self) -> int:
        return len(self.queries)

    def __iter__(self) -> Iterator["PNNQuery"]:
        return iter(self.queries)


#: Every descriptor :meth:`QueryEngine.execute` understands.
Query = Union[PNNQuery, KNNQuery, RangeQuery, BatchQuery]

#: ``"type"`` discriminator -> descriptor class, for the wire decoder.
QUERY_TYPES: Dict[str, type] = {
    "pnn": PNNQuery,
    "knn": KNNQuery,
    "range": RangeQuery,
    "batch": BatchQuery,
}


def query_from_dict(state: Dict[str, Any]) -> Query:
    """Decode any descriptor dict produced by a ``to_dict`` method.

    The ``"type"`` key selects the descriptor class; everything else is
    validated by that class's ``from_dict`` (and re-validated by its
    ``__post_init__``), so a malformed payload raises ``ValueError`` /
    ``KeyError`` / ``TypeError`` rather than building a broken descriptor.
    """
    if not isinstance(state, dict):
        raise TypeError(f"a query serializes as a dict, got {type(state).__name__}")
    kind = state.get("type")
    try:
        cls = QUERY_TYPES[kind]
    except KeyError:
        raise ValueError(
            f"unknown query type {kind!r} "
            f"(known: {', '.join(sorted(QUERY_TYPES))})"
        ) from None
    return cls.from_dict(state)
