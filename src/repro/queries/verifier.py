"""The ``d_minmax`` verification filter.

Given a candidate set for a PNN query, compute ``d_minmax`` -- the smallest
*maximum* distance of any candidate from the query point -- and discard every
candidate whose *minimum* distance exceeds it.  Such an object can never be
the nearest neighbour because some other object is certainly closer
(Section V-A of the paper, after Cheng et al. TKDE'04).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.geometry.circle import Circle
from repro.geometry.point import Point


def d_minmax(query: Point, mbcs: Sequence[Circle]) -> float:
    """The minimum over candidates of their maximum distance from ``query``."""
    if not mbcs:
        raise ValueError("d_minmax of an empty candidate set is undefined")
    return min(circle.max_distance(query) for circle in mbcs)


def min_max_prune(
    query: Point, candidates: Sequence[Tuple[int, Circle]]
) -> List[int]:
    """Filter candidates with the ``d_minmax`` rule.

    Args:
        query: the PNN query point.
        candidates: ``(oid, minimum_bounding_circle)`` pairs as stored in the
            index leaves.

    Returns:
        The ids of objects that survive the filter, i.e. the answer objects
        (objects with non-zero qualification probability).  The order of the
        input is preserved.
    """
    if not candidates:
        return []
    bound = d_minmax(query, [circle for _, circle in candidates])
    tol = 1e-12
    return [
        oid
        for oid, circle in candidates
        if circle.min_distance(query) <= bound + tol
    ]
