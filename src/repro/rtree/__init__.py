"""R-tree substrate.

The paper compares the UV-index against the state of the art for PNN
evaluation over uncertain data: a packed R*-tree over the objects'
uncertainty regions queried with the branch-and-prune strategy of Cheng et
al. (TKDE'04).  This package implements that substrate from scratch:

* STR bulk loading (the "packed" construction used in the experiments),
* dynamic insertion with quadratic splits for completeness,
* window / circular range queries and best-first k-NN search (both are also
  used by the UV-diagram construction itself: seed selection issues a k-NN
  query and I-pruning issues a circular range query on this R-tree),
* the branch-and-prune PNN baseline with per-query I/O accounting.
"""

from repro.rtree.node import RTreeEntry, RTreeNode
from repro.rtree.tree import RTree
from repro.rtree.pnn import RTreePNN

__all__ = ["RTreeEntry", "RTreeNode", "RTree", "RTreePNN"]
