"""R-tree nodes and entries."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.geometry.rectangle import Rect


@dataclass
class RTreeEntry:
    """One slot of an R-tree node.

    Leaf entries reference an object (``oid``); internal entries reference a
    child node.  In both cases ``mbr`` is the minimum bounding rectangle of
    the referenced content.
    """

    mbr: Rect
    oid: Optional[int] = None
    child: Optional["RTreeNode"] = None

    def is_leaf_entry(self) -> bool:
        """Return ``True`` when this entry references an object."""
        return self.oid is not None


@dataclass
class RTreeNode:
    """An R-tree node.

    Leaf nodes live on simulated disk pages (``page_id``); internal nodes are
    memory resident, matching the experimental setup of the paper.
    """

    is_leaf: bool
    entries: List[RTreeEntry] = field(default_factory=list)
    page_id: Optional[int] = None
    level: int = 0

    def mbr(self) -> Rect:
        """Bounding rectangle of all entries.

        Raises:
            ValueError: for an empty node.
        """
        if not self.entries:
            raise ValueError("empty node has no MBR")
        rect = self.entries[0].mbr
        for entry in self.entries[1:]:
            rect = rect.union(entry.mbr)
        return rect

    def entry_count(self) -> int:
        """Number of entries stored in the node."""
        return len(self.entries)

    def is_full(self, capacity: int) -> bool:
        """Return ``True`` when the node holds ``capacity`` or more entries."""
        return len(self.entries) >= capacity
