"""Branch-and-prune PNN evaluation over the R-tree (the paper's baseline).

The strategy of Cheng et al. (TKDE'04): traverse the R-tree best-first by
MBR minimum distance while maintaining ``d_minmax`` -- the smallest maximum
distance of any object seen so far -- and prune every subtree or object whose
minimum distance exceeds the bound.  The surviving objects are the answer
objects; their qualification probabilities are then computed by numerical
integration.

The evaluator records the same three time buckets the paper reports in
Figure 6(c): index traversal, object (pdf) retrieval, and probability
computation, plus the leaf-page I/O of Figure 6(b); the shared pipeline
lives in :mod:`repro.queries.pipeline`.
"""

from __future__ import annotations

import heapq
import itertools
from typing import List, Optional, Tuple

from repro.geometry.circle import Circle
from repro.geometry.point import Point
from repro.queries.pipeline import evaluate_pnn
from repro.queries.probability_kernel import DEFAULT_PROB_KERNEL, RingCache
from repro.queries.result import PNNResult
from repro.rtree.tree import RTree
from repro.storage.object_store import ObjectStore
from repro.uncertain.objects import UncertainObject


def branch_and_prune_candidates(
    tree: RTree, query: Point, cache=None
) -> List[Tuple[int, Circle]]:
    """Answer-object candidates ``(oid, MBC)`` via branch-and-prune traversal.

    When ``cache`` (a :class:`repro.engine.backend.BatchReadCache`) is given,
    each leaf node's page is read -- and counted -- at most once per batch.
    """
    heap: List[Tuple[float, int, object]] = []
    counter = itertools.count()
    heapq.heappush(heap, (0.0, next(counter), tree.root))
    best_minmax = float("inf")
    candidates: List[Tuple[int, Circle, float]] = []

    while heap:
        min_dist, _, node = heapq.heappop(heap)
        if min_dist > best_minmax:
            break
        if node.is_leaf:
            if cache is None:
                entries = tree._read_leaf(node)
            else:
                entries = cache.get(
                    ("rtree-leaf", id(node)), lambda n=node: tree._read_leaf(n)
                )
            for entry in entries:
                mbc = _mbr_to_mbc(entry.mbr)
                entry_min = mbc.min_distance(query)
                entry_max = mbc.max_distance(query)
                best_minmax = min(best_minmax, entry_max)
                candidates.append((entry.oid, mbc, entry_min))
        else:
            for entry in node.entries:
                entry_min = entry.mbr.min_distance_to_point(query)
                if entry_min <= best_minmax:
                    heapq.heappush(heap, (entry_min, next(counter), entry.child))

    return [
        (oid, mbc)
        for oid, mbc, entry_min in candidates
        if entry_min <= best_minmax + 1e-12
    ]


class RTreePNN:
    """PNN query processor over an R-tree of uncertain objects.

    Args:
        tree: the R-tree indexing the objects' MBRs.
        object_store: disk-backed store of the full objects (for pdf
            retrieval).  When omitted, ``objects`` must be supplied and
            retrieval is free (useful in unit tests).
        objects: in-memory objects keyed by id (used when no store is given).
        prob_kernel: refinement kernel -- ``"vectorized"`` or ``"scalar"``.
        ring_cache: optional cross-query ring-profile cache (shared with the
            owning engine when embedded).
    """

    def __init__(
        self,
        tree: RTree,
        object_store: Optional[ObjectStore] = None,
        objects: Optional[List[UncertainObject]] = None,
        prob_kernel: str = DEFAULT_PROB_KERNEL,
        ring_cache: Optional[RingCache] = None,
    ):
        if object_store is None and objects is None:
            raise ValueError("either an object store or in-memory objects are required")
        self.tree = tree
        self.object_store = object_store
        self.prob_kernel = prob_kernel
        self.ring_cache = ring_cache
        self._objects_by_id = {obj.oid: obj for obj in objects} if objects else {}

    # ------------------------------------------------------------------ #
    # candidate retrieval (branch-and-prune)
    # ------------------------------------------------------------------ #
    def retrieve_candidates(self, query: Point) -> List[Tuple[int, Circle]]:
        """Answer-object candidates ``(oid, MBC)`` via branch-and-prune traversal."""
        return branch_and_prune_candidates(self.tree, query)

    # ------------------------------------------------------------------ #
    # full query
    # ------------------------------------------------------------------ #
    def query(
        self,
        query: Point,
        compute_probabilities: bool = True,
        threshold: float = 0.0,
        top_k: "int | None" = None,
    ) -> PNNResult:
        """Evaluate a PNN query and return answers with probabilities.

        ``threshold`` / ``top_k`` push early termination into the refinement
        step (probability-threshold and top-k PNN).
        """
        return evaluate_pnn(
            query,
            self.retrieve_candidates,
            self._fetch_objects,
            self.tree.disk.stats,
            compute_probabilities=compute_probabilities,
            prob_kernel=self.prob_kernel,
            ring_cache=self.ring_cache,
            threshold=threshold,
            top_k=top_k,
        )

    def _fetch_objects(self, oids: List[int]) -> List[UncertainObject]:
        if self.object_store is not None:
            return self.object_store.fetch_many(oids)
        return [self._objects_by_id[oid] for oid in oids]


def _mbr_to_mbc(mbr) -> Circle:
    """Recover the minimum bounding circle from the MBR of a circular region.

    Objects are circles, so their MBR is a square whose inscribed circle is
    exactly the uncertainty region.
    """
    center = mbr.center
    radius = min(mbr.width, mbr.height) / 2.0
    return Circle(center, radius)
