"""The R-tree proper: STR bulk loading, insertion, range and k-NN search.

The tree indexes the minimum bounding rectangles of the objects' uncertainty
regions.  Leaf nodes are backed by simulated disk pages; every time a query
descends into a leaf, one page read is counted against the associated
:class:`~repro.storage.disk.DiskManager`.  Internal nodes are memory resident
(the paper keeps all non-leaf nodes of both indexes in main memory).
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Callable, List, Optional, Sequence, Tuple

from repro.geometry.point import Point
from repro.geometry.rectangle import Rect
from repro.rtree.node import RTreeEntry, RTreeNode
from repro.storage.disk import DiskManager
from repro.uncertain.objects import UncertainObject


class RTree:
    """A disk-backed R-tree over uncertain objects.

    Args:
        disk: disk manager used for leaf pages and I/O accounting.  A private
            manager is created when omitted.
        fanout: maximum entries per node (the paper uses 100).
        fill_factor: target fill of leaves during bulk loading.
    """

    def __init__(
        self,
        disk: Optional[DiskManager] = None,
        fanout: int = 100,
        fill_factor: float = 1.0,
    ):
        if fanout < 4:
            raise ValueError("fanout must be at least 4")
        if not 0.3 <= fill_factor <= 1.0:
            raise ValueError("fill factor must be within [0.3, 1.0]")
        self.disk = disk if disk is not None else DiskManager()
        self.fanout = fanout
        self.fill_factor = fill_factor
        self.root: RTreeNode = RTreeNode(is_leaf=True)
        self._register_leaf(self.root)
        self.size = 0
        self.leaf_count = 1
        self.height = 1

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @staticmethod
    def bulk_load(
        objects: Sequence[UncertainObject],
        disk: Optional[DiskManager] = None,
        fanout: int = 100,
        fill_factor: float = 1.0,
    ) -> "RTree":
        """Build a packed R-tree with Sort-Tile-Recursive (STR) loading.

        This is the "packed R*-tree" configuration used in the paper's
        experiments.
        """
        tree = RTree(disk=disk, fanout=fanout, fill_factor=fill_factor)
        if not objects:
            return tree

        # The constructor registered a page for the bootstrap empty root;
        # packing replaces that root, so release its page instead of leaking
        # one page per bulk load (deletes rebuild the tree, so this would
        # otherwise grow the page-id space on every delete).
        if tree.root.page_id is not None:
            tree.disk.free_page(tree.root.page_id)
            tree.root.page_id = None

        leaf_capacity = max(2, int(tree.fanout * tree.fill_factor))
        entries = [RTreeEntry(mbr=obj.mbr(), oid=obj.oid) for obj in objects]
        leaves = tree._str_pack(entries, leaf_capacity, leaf=True)
        tree.leaf_count = len(leaves)
        level_nodes: List[RTreeNode] = leaves
        level = 0
        while len(level_nodes) > 1:
            level += 1
            upper_entries = [
                RTreeEntry(mbr=node.mbr(), child=node) for node in level_nodes
            ]
            level_nodes = tree._str_pack(upper_entries, leaf_capacity, leaf=False, level=level)
        tree.root = level_nodes[0]
        tree.size = len(objects)
        tree.height = level + 1
        return tree

    def _str_pack(
        self,
        entries: List[RTreeEntry],
        capacity: int,
        leaf: bool,
        level: int = 0,
    ) -> List[RTreeNode]:
        """Pack entries into nodes using one STR pass."""
        count = len(entries)
        node_count = math.ceil(count / capacity)
        slices = max(1, math.ceil(math.sqrt(node_count)))
        per_slice = slices * capacity

        def center_x(entry: RTreeEntry) -> float:
            return (entry.mbr.xmin + entry.mbr.xmax) / 2.0

        def center_y(entry: RTreeEntry) -> float:
            return (entry.mbr.ymin + entry.mbr.ymax) / 2.0

        sorted_by_x = sorted(entries, key=center_x)
        nodes: List[RTreeNode] = []
        for start in range(0, count, per_slice):
            vertical_slice = sorted(sorted_by_x[start:start + per_slice], key=center_y)
            for node_start in range(0, len(vertical_slice), capacity):
                chunk = vertical_slice[node_start:node_start + capacity]
                node = RTreeNode(is_leaf=leaf, entries=list(chunk), level=level)
                if leaf:
                    self._register_leaf(node)
                nodes.append(node)
        return nodes

    def _register_leaf(self, node: RTreeNode) -> None:
        page = self.disk.allocate_page(capacity=max(self.fanout, len(node.entries) or 1))
        node.page_id = page.page_id
        for entry in node.entries:
            page.add(entry)

    # ------------------------------------------------------------------ #
    # dynamic insertion (quadratic split)
    # ------------------------------------------------------------------ #
    def insert(self, obj: UncertainObject) -> None:
        """Insert one object (classic ChooseLeaf + quadratic split)."""
        entry = RTreeEntry(mbr=obj.mbr(), oid=obj.oid)
        split = self._insert_entry(self.root, entry)
        if split is not None:
            left, right = split
            new_root = RTreeNode(
                is_leaf=False,
                entries=[
                    RTreeEntry(mbr=left.mbr(), child=left),
                    RTreeEntry(mbr=right.mbr(), child=right),
                ],
                level=self.root.level + 1,
            )
            self.root = new_root
            self.height += 1
        self.size += 1

    def _insert_entry(
        self, node: RTreeNode, entry: RTreeEntry
    ) -> Optional[Tuple[RTreeNode, RTreeNode]]:
        if node.is_leaf:
            node.entries.append(entry)
            self._sync_leaf_page(node)
            if node.is_full(self.fanout + 1):
                return self._split_node(node)
            return None

        best = min(node.entries, key=lambda e: (e.mbr.enlargement(entry.mbr), e.mbr.area()))
        child_split = self._insert_entry(best.child, entry)
        best.mbr = best.child.mbr()
        if child_split is None:
            return None
        left, right = child_split
        node.entries.remove(best)
        node.entries.append(RTreeEntry(mbr=left.mbr(), child=left))
        node.entries.append(RTreeEntry(mbr=right.mbr(), child=right))
        if node.is_full(self.fanout + 1):
            return self._split_node(node)
        return None

    def _split_node(self, node: RTreeNode) -> Tuple[RTreeNode, RTreeNode]:
        """Quadratic split of an overfull node into two nodes."""
        entries = node.entries
        seed_a, seed_b = self._pick_seeds(entries)
        group_a = [entries[seed_a]]
        group_b = [entries[seed_b]]
        remaining = [e for i, e in enumerate(entries) if i not in (seed_a, seed_b)]
        min_fill = max(1, self.fanout // 3)

        while remaining:
            if len(group_a) + len(remaining) == min_fill:
                group_a.extend(remaining)
                break
            if len(group_b) + len(remaining) == min_fill:
                group_b.extend(remaining)
                break
            mbr_a = _entries_mbr(group_a)
            mbr_b = _entries_mbr(group_b)
            entry = max(
                remaining,
                key=lambda e: abs(mbr_a.enlargement(e.mbr) - mbr_b.enlargement(e.mbr)),
            )
            remaining.remove(entry)
            if mbr_a.enlargement(entry.mbr) <= mbr_b.enlargement(entry.mbr):
                group_a.append(entry)
            else:
                group_b.append(entry)

        left = RTreeNode(is_leaf=node.is_leaf, entries=group_a, level=node.level)
        right = RTreeNode(is_leaf=node.is_leaf, entries=group_b, level=node.level)
        if node.is_leaf:
            self._register_leaf(left)
            self._register_leaf(right)
            if node.page_id is not None:
                self.disk.free_page(node.page_id)
            self.leaf_count += 1
        return left, right

    @staticmethod
    def _pick_seeds(entries: List[RTreeEntry]) -> Tuple[int, int]:
        worst_pair = (0, 1)
        worst_waste = -math.inf
        for i, j in itertools.combinations(range(len(entries)), 2):
            union = entries[i].mbr.union(entries[j].mbr)
            waste = union.area() - entries[i].mbr.area() - entries[j].mbr.area()
            if waste > worst_waste:
                worst_waste = waste
                worst_pair = (i, j)
        return worst_pair

    def _sync_leaf_page(self, node: RTreeNode) -> None:
        if node.page_id is None:
            self._register_leaf(node)
            return
        page = self.disk.peek_page(node.page_id)
        page.entries = list(node.entries)
        page.capacity = max(page.capacity, len(node.entries))

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def _read_leaf(self, node: RTreeNode) -> List[RTreeEntry]:
        """Fetch a leaf's entries through the disk manager (counts one I/O)."""
        if node.page_id is None:
            return list(node.entries)
        return list(self.disk.read_page(node.page_id).entries)

    def range_query(self, rect: Rect) -> List[int]:
        """Object ids whose MBRs intersect ``rect``."""
        results: List[int] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                for entry in self._read_leaf(node):
                    if entry.mbr.intersects(rect):
                        results.append(entry.oid)
            else:
                for entry in node.entries:
                    if entry.mbr.intersects(rect):
                        stack.append(entry.child)
        return results

    def circular_range_query(
        self,
        center: Point,
        radius: float,
        center_filter: Optional[Callable[[int, Rect], bool]] = None,
    ) -> List[int]:
        """Object ids whose MBRs intersect the disk ``Cir(center, radius)``.

        ``center_filter`` can post-filter individual leaf entries (I-pruning
        additionally requires the *centre* of the object to lie inside the
        circle, see Lemma 2).
        """
        results: List[int] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                for entry in self._read_leaf(node):
                    if entry.mbr.min_distance_to_point(center) <= radius:
                        if center_filter is None or center_filter(entry.oid, entry.mbr):
                            results.append(entry.oid)
            else:
                for entry in node.entries:
                    if entry.mbr.min_distance_to_point(center) <= radius:
                        stack.append(entry.child)
        return results

    def knn(self, query: Point, k: int) -> List[Tuple[int, float]]:
        """Best-first k-nearest-neighbour search by MBR minimum distance.

        Returns ``(oid, min_distance)`` pairs ordered by distance.  The
        UV-diagram's seed selection (Section IV-B) issues this query with the
        object's centre as the query point.
        """
        if k <= 0:
            return []
        heap: List[Tuple[float, int, bool, object]] = []
        counter = itertools.count()
        heapq.heappush(heap, (0.0, next(counter), False, self.root))
        results: List[Tuple[int, float]] = []
        while heap and len(results) < k:
            dist, _, is_object, item = heapq.heappop(heap)
            if is_object:
                results.append((item, dist))
                continue
            node: RTreeNode = item
            if node.is_leaf:
                for entry in self._read_leaf(node):
                    heapq.heappush(
                        heap,
                        (
                            entry.mbr.min_distance_to_point(query),
                            next(counter),
                            True,
                            entry.oid,
                        ),
                    )
            else:
                for entry in node.entries:
                    heapq.heappush(
                        heap,
                        (
                            entry.mbr.min_distance_to_point(query),
                            next(counter),
                            False,
                            entry.child,
                        ),
                    )
        return results

    # ------------------------------------------------------------------ #
    # persistence (diagram snapshots)
    # ------------------------------------------------------------------ #
    def snapshot_state(self) -> dict:
        """JSON-ready structure of the tree (node graph + leaf page ids).

        Leaf entries are recorded inline as well as living on disk pages, so
        a restored tree keeps its in-memory mirror consistent with the pages
        (insertion and ``_sync_leaf_page`` rely on that mirror).
        """
        return {
            "fanout": self.fanout,
            "fill_factor": self.fill_factor,
            "size": self.size,
            "leaf_count": self.leaf_count,
            "height": self.height,
            "root": _rtree_node_state(self.root),
        }

    @classmethod
    def from_snapshot(cls, state: dict, disk: DiskManager) -> "RTree":
        """Rebuild a tree over already-persisted leaf pages (no allocation)."""
        tree = cls.__new__(cls)
        tree.disk = disk
        tree.fanout = state["fanout"]
        tree.fill_factor = state["fill_factor"]
        tree.size = state["size"]
        tree.leaf_count = state["leaf_count"]
        tree.height = state["height"]
        tree.root = _rtree_node_from_state(state["root"])
        return tree

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def all_object_ids(self) -> List[int]:
        """Every object id stored in the tree (order unspecified)."""
        ids: List[int] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                ids.extend(entry.oid for entry in node.entries)
            else:
                stack.extend(entry.child for entry in node.entries)
        return ids

    def node_count(self) -> Tuple[int, int]:
        """Return ``(internal_nodes, leaf_nodes)``."""
        internal = 0
        leaves = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                leaves += 1
            else:
                internal += 1
                stack.extend(entry.child for entry in node.entries)
        return internal, leaves


def _entries_mbr(entries: List[RTreeEntry]) -> Rect:
    rect = entries[0].mbr
    for entry in entries[1:]:
        rect = rect.union(entry.mbr)
    return rect


# ---------------------------------------------------------------------- #
# snapshot plumbing
# ---------------------------------------------------------------------- #
def _rtree_node_state(node: RTreeNode) -> dict:
    from repro.storage.codec import rect_state

    state: dict = {"leaf": node.is_leaf, "level": node.level, "page": node.page_id}
    if node.is_leaf:
        state["entries"] = [
            {"mbr": rect_state(entry.mbr), "oid": entry.oid} for entry in node.entries
        ]
    else:
        state["entries"] = [
            {"mbr": rect_state(entry.mbr), "child": _rtree_node_state(entry.child)}
            for entry in node.entries
        ]
    return state


def _rtree_node_from_state(state: dict) -> RTreeNode:
    from repro.storage.codec import rect_from_state

    node = RTreeNode(is_leaf=state["leaf"], level=state["level"], page_id=state["page"])
    if node.is_leaf:
        node.entries = [
            RTreeEntry(mbr=rect_from_state(entry["mbr"]), oid=entry["oid"])
            for entry in state["entries"]
        ]
    else:
        node.entries = [
            RTreeEntry(mbr=rect_from_state(entry["mbr"]),
                       child=_rtree_node_from_state(entry["child"]))
            for entry in state["entries"]
        ]
    return node
