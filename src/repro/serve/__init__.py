"""repro.serve -- a concurrent multi-worker query service over mmap snapshots.

A supervisor spawns N worker processes that each open the same snapshot
read-only (with the mmap store they share one set of physical pages), and
fronts them with an HTTP/JSON API whose request bodies are exactly the
serialized query descriptors of :mod:`repro.queries.spec`.

Quick start::

    from repro.serve import ServeConfig, QueryService

    with QueryService(ServeConfig(snapshot_path="uv.snap", workers=4)) as svc:
        print(svc.url)   # POST /query, POST /explain, GET /health, GET /stats
"""

from repro.serve.config import ServeConfig
from repro.serve.router import (
    LatencyHistogram,
    QueueFullError,
    RateLimitedError,
    RequestTimeoutError,
    Router,
    RouterError,
    ServiceDrainingError,
    TokenBucket,
)
from repro.serve.service import QueryService, serve_forever, wait_for_health
from repro.serve.worker import WorkerRuntime

__all__ = [
    "LatencyHistogram",
    "QueryService",
    "QueueFullError",
    "RateLimitedError",
    "RequestTimeoutError",
    "Router",
    "RouterError",
    "ServeConfig",
    "ServiceDrainingError",
    "TokenBucket",
    "WorkerRuntime",
    "serve_forever",
    "wait_for_health",
]
