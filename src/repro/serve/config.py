"""Typed configuration of the serving layer.

One frozen dataclass describes everything the supervisor needs: where the
snapshot lives and how workers open it, how the router bounds its queues,
and how clients are admitted.  Like :class:`~repro.engine.config.DiagramConfig`
it validates eagerly, round-trips through plain dicts (workers are separate
processes and receive their configuration serialized), and supports
field-wise :meth:`replace`.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Any, Dict, Optional

from repro.storage.pagestore import STORE_KINDS


@dataclass(frozen=True)
class ServeConfig:
    """Configuration of a :class:`~repro.serve.service.QueryService`.

    Attributes:
        snapshot_path: what every worker opens -- either a snapshot file
            (written by :meth:`repro.QueryEngine.save`) or a live deployment
            directory (``repro build --save-dir``), which resolves through
            its ``MANIFEST`` to the current snapshot generation.
        workers: worker processes; each opens the snapshot read-only.
        host / port: HTTP bind address (``port=0`` picks a free port; the
            service exposes the actual one after startup).
        store: page-store kind the workers serve from -- ``"mmap"`` (the
            default: N processes share one set of physical pages) or
            ``"file"`` / ``"memory"``.
        queue_depth: per-worker bound on dispatched-but-unanswered requests;
            when every worker is at the bound new requests are rejected with
            HTTP 429 (admission control) instead of building an unbounded
            backlog.
        request_timeout: seconds a request may wait for its worker before
            the client gets HTTP 504 (the late worker response is dropped).
        rate_limit: sustained per-client requests/second admitted by the
            token bucket; ``0.0`` disables rate limiting.
        rate_burst: bucket capacity -- how many requests a client may burst
            above the sustained rate.
        drain_timeout: seconds :meth:`~repro.serve.service.QueryService.stop`
            waits for in-flight requests before shutting workers down.
        read_latency: simulated seconds per counted page read inside each
            worker (models cold-storage serving; the load benchmark uses it
            to make the workload I/O-bound the way the paper's disk is).
        buffer_pages: buffer-pool override for the workers' engines;
            ``None`` keeps the snapshot's saved configuration.
        respawn_delay: seconds the monitor waits between respawn attempts of
            a crashed worker (backstop against a crash loop).
        reload_poll: seconds between manifest checks when serving a live
            deployment directory; when a checkpoint flips the manifest the
            supervisor rolls the new generation across the fleet one worker
            at a time (no restart, no dropped requests).  ``0.0`` disables
            the watcher (reloads can still be triggered via
            :meth:`~repro.serve.service.QueryService.reload`).
        hang_timeout: seconds a dispatched request may sit unanswered before
            its worker is declared hung and killed + respawned (the hang
            counterpart of crash detection).  ``0.0`` disables hang
            detection; when enabled it should comfortably exceed the slowest
            legitimate query.
    """

    snapshot_path: str = ""
    workers: int = 2
    host: str = "127.0.0.1"
    port: int = 0
    store: str = "mmap"
    queue_depth: int = 8
    request_timeout: float = 30.0
    rate_limit: float = 0.0
    rate_burst: int = 20
    drain_timeout: float = 10.0
    read_latency: float = 0.0
    buffer_pages: Optional[int] = None
    respawn_delay: float = 0.25
    reload_poll: float = 0.0
    hang_timeout: float = 0.0

    def __post_init__(self) -> None:
        if not self.snapshot_path:
            raise ValueError("ServeConfig needs a snapshot_path to serve")
        if self.workers < 1:
            raise ValueError(f"workers must be positive, got {self.workers}")
        if self.store not in STORE_KINDS:
            raise ValueError(
                f"unknown store kind {self.store!r} "
                f"(known: {', '.join(STORE_KINDS)})"
            )
        if self.queue_depth < 1:
            raise ValueError(f"queue_depth must be positive, got {self.queue_depth}")
        if self.request_timeout <= 0:
            raise ValueError("request_timeout must be positive")
        if self.rate_limit < 0:
            raise ValueError("rate_limit must be non-negative")
        if self.rate_burst < 1:
            raise ValueError(f"rate_burst must be positive, got {self.rate_burst}")
        if self.drain_timeout < 0:
            raise ValueError("drain_timeout must be non-negative")
        if self.read_latency < 0:
            raise ValueError("read_latency must be non-negative")
        if self.buffer_pages is not None and self.buffer_pages < 0:
            raise ValueError("buffer_pages must be non-negative when given")
        if self.respawn_delay < 0:
            raise ValueError("respawn_delay must be non-negative")
        if self.reload_poll < 0:
            raise ValueError("reload_poll must be non-negative")
        if self.hang_timeout < 0:
            raise ValueError("hang_timeout must be non-negative")

    def replace(self, **overrides: Any) -> "ServeConfig":
        """A copy with the given fields replaced (and re-validated)."""
        known = {f.name for f in fields(self)}
        unknown = sorted(set(overrides) - known)
        if unknown:
            raise ValueError(
                f"unknown ServeConfig field(s): {', '.join(unknown)}"
            )
        return replace(self, **overrides)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible state (what worker processes receive)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, state: Dict[str, Any]) -> "ServeConfig":
        """Rebuild (and re-validate) a config from :meth:`to_dict` output."""
        known = {f.name for f in fields(cls)}
        return cls(**{key: value for key, value in state.items() if key in known})
