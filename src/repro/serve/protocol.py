"""The wire protocol between HTTP clients, the router, and the workers.

A request body is a serialized query descriptor (see
:func:`repro.queries.spec.query_from_dict` -- the ``"type"`` key selects
``pnn`` / ``knn`` / ``range`` / ``batch``).  The router wraps it in a
:class:`Request` envelope, a worker executes it and answers with a
:class:`Response` envelope whose payload is the result's ``to_dict`` form.

Everything crossing a process boundary here is a plain dict of JSON-scalar
values, so the same encoding serves both the HTTP surface and the
supervisor<->worker queues.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

#: Operations a worker understands.
OP_QUERY = "query"
OP_EXPLAIN = "explain"
OP_STATS = "stats"
OP_PING = "ping"
#: Supervisor-only op: re-resolve the live manifest and, if it names a new
#: snapshot generation, reopen it (the hot-reload path after a checkpoint).
OP_RELOAD = "reload"

#: Error kinds a response can carry (mapped to HTTP status codes).
ERROR_BAD_REQUEST = "bad-request"      # -> 400
ERROR_UNSUPPORTED = "unsupported"      # -> 400 (backend cannot run the query)
ERROR_INTERNAL = "internal"            # -> 500


@dataclass(frozen=True)
class Request:
    """One unit of work dispatched to a worker.

    Attributes:
        request_id: router-assigned id; responses echo it so the pump thread
            can match them to waiting handlers (and drop late duplicates).
        op: one of the ``OP_*`` operations.
        payload: the serialized query descriptor for ``query`` / ``explain``;
            ignored by ``stats`` / ``ping``.
    """

    request_id: int
    op: str
    payload: Optional[Dict[str, Any]] = None

    def to_tuple(self) -> Tuple[Any, ...]:
        return (self.request_id, self.op, self.payload)

    @classmethod
    def from_tuple(cls, raw: Tuple[Any, ...]) -> "Request":
        return cls(request_id=raw[0], op=raw[1], payload=raw[2])


@dataclass(frozen=True)
class Response:
    """A worker's answer to one :class:`Request`.

    Attributes:
        request_id: echo of the request id.
        ok: ``False`` when the worker caught an error instead of a result.
        payload: result dict when ``ok``, else ``{"error": kind,
            "message": text}``.
        worker_id: which worker answered (surfaced in ``/stats`` and useful
            when diagnosing a crash drill).
        seconds: worker-side execution time (queueing excluded), feeding the
            per-query-type latency histograms.
        query_kind: ``"pnn"`` / ``"knn"`` / ``"range"`` / ``"batch"`` /
            ``"explain"`` / ``"stats"`` -- the histogram bucket.
    """

    request_id: int
    ok: bool
    payload: Dict[str, Any]
    worker_id: int
    seconds: float = 0.0
    query_kind: str = "unknown"

    def to_tuple(self) -> Tuple[Any, ...]:
        return (
            self.request_id, self.ok, self.payload,
            self.worker_id, self.seconds, self.query_kind,
        )

    @classmethod
    def from_tuple(cls, raw: Tuple[Any, ...]) -> "Response":
        return cls(
            request_id=raw[0], ok=raw[1], payload=raw[2],
            worker_id=raw[3], seconds=raw[4], query_kind=raw[5],
        )


def error_payload(kind: str, message: str) -> Dict[str, Any]:
    """The payload of a failed response."""
    return {"error": kind, "message": message}


def error_status(kind: str) -> int:
    """HTTP status code for an error kind."""
    if kind in (ERROR_BAD_REQUEST, ERROR_UNSUPPORTED):
        return 400
    return 500
