"""The request router: bounded dispatch to a fleet of worker processes.

The router owns everything between "an HTTP handler parsed a request" and
"a worker's response came back":

* **worker lifecycle** -- spawn the fleet, detect crashed workers, respawn
  them, and resubmit the in-flight requests the crash orphaned (queries are
  read-only, so re-execution is safe);
* **admission control** -- each worker has a bounded budget of
  dispatched-but-unanswered requests (``queue_depth``); when every worker is
  at its bound, new work is rejected immediately
  (:class:`QueueFullError` -> HTTP 429) instead of growing an unbounded
  backlog;
* **per-client rate limits** -- a token bucket per client id
  (:class:`RateLimitedError` -> HTTP 429);
* **per-request timeouts** -- a request that waits longer than its deadline
  raises :class:`RequestTimeoutError` (-> HTTP 504) and the late worker
  response is dropped on arrival;
* **observability** -- per-query-type latency histograms plus counters for
  every admission decision, feeding the ``/stats`` endpoint.

* **hot reload** -- :meth:`Router.reload_workers` rolls the fleet onto a
  new snapshot generation one worker at a time (pinned dispatch, exempt
  from admission control), so a checkpoint flip never drops requests.

Workers are spawned (not forked): respawning must be safe while the
supervisor's HTTP threads hold arbitrary locks, and a forked child would
inherit those locks mid-flight.

Invariants this module is held to (machine-checked by ``repro.lint``):
every attribute named in ``_GUARDED_BY`` is touched only under its lock --
methods documented as "caller holds the lock" are the audited exemption
(*lock-discipline*); work handed to worker processes is importable by
qualified name, never a lambda or closure, because children are spawned
and re-import their targets (*picklable-work*); and everything crossing
the process boundary round-trips through ``to_dict``/``from_dict``
(*wire-complete*).
"""

from __future__ import annotations

import bisect
import itertools
import multiprocessing
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.serve.config import ServeConfig
from repro.serve.protocol import OP_RELOAD, Request, Response
from repro.serve.worker import SHUTDOWN, worker_main


class RouterError(RuntimeError):
    """Base error of the routing layer."""


class QueueFullError(RouterError):
    """Every worker is at its in-flight budget (admission control)."""


class RateLimitedError(RouterError):
    """The client exhausted its token bucket."""


class RequestTimeoutError(RouterError):
    """The request missed its deadline; any late response is dropped."""


class ServiceDrainingError(RouterError):
    """The service is draining and admits no new work."""


class TokenBucket:
    """A classic token bucket: ``rate`` tokens/second, ``burst`` capacity."""

    def __init__(self, rate: float, burst: int):
        self.rate = rate
        self.burst = float(burst)
        self.tokens = float(burst)
        self.last = time.monotonic()

    def allow(self) -> bool:
        """Take one token if available (refilling lazily)."""
        now = time.monotonic()
        self.tokens = min(self.burst, self.tokens + (now - self.last) * self.rate)
        self.last = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


class LatencyHistogram:
    """Log-bucketed latency histogram with cheap percentile estimates.

    Buckets span 50 microseconds to about a minute with ~24% resolution,
    which is plenty for p50/p99 serving dashboards while costing O(1) per
    record and a fixed few hundred bytes of memory.
    """

    _BOUNDS: List[float] = [50e-6 * (1.22 ** i) for i in range(64)]

    def __init__(self) -> None:
        self._counts = [0] * (len(self._BOUNDS) + 1)
        self.count = 0
        self.total = 0.0
        self.max = 0.0
        self._lock = threading.Lock()

    def record(self, seconds: float) -> None:
        index = bisect.bisect_left(self._BOUNDS, seconds)
        with self._lock:
            self._counts[index] += 1
            self.count += 1
            self.total += seconds
            if seconds > self.max:
                self.max = seconds

    def percentile(self, fraction: float) -> float:
        """Upper bound of the bucket holding the ``fraction`` quantile."""
        with self._lock:
            if self.count == 0:
                return 0.0
            target = fraction * self.count
            seen = 0
            for index, bucket in enumerate(self._counts):
                seen += bucket
                if seen >= target:
                    if index < len(self._BOUNDS):
                        return self._BOUNDS[index]
                    return self.max
            return self.max

    def to_dict(self) -> Dict[str, float]:
        with self._lock:
            count, total, peak = self.count, self.total, self.max
        return {
            "count": count,
            "mean_ms": (total / count * 1000.0) if count else 0.0,
            "p50_ms": self.percentile(0.50) * 1000.0,
            "p99_ms": self.percentile(0.99) * 1000.0,
            "max_ms": peak * 1000.0,
        }


@dataclass
class _Pending:
    """Book-keeping of one dispatched request while its answer is pending."""

    request: Request
    worker_id: int
    event: threading.Event = field(default_factory=threading.Event)
    response: Optional[Response] = None
    retries: int = 0
    enqueued_at: float = field(default_factory=time.monotonic)


class _WorkerHandle:
    """One slot of the fleet: the live process plus its routing state."""

    def __init__(self, worker_id: int):
        self.worker_id = worker_id
        self.process = None
        self.request_queue = None
        self.inflight: set = set()
        self.ready = False
        self.failed = False          # startup failed; do not respawn
        self.startup_error = ""
        self.respawns = 0
        self.started_at = 0.0

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid if self.process is not None else None


class Router:
    """Dispatches requests over a supervised fleet of worker processes."""

    #: Shared-state lock discipline, enforced by ``repro lint``
    #: (rule ``lock-discipline``): every access to these attributes must sit
    #: inside ``with self.<lock>`` -- or in a helper documented with
    #: "caller holds the lock".  ``_accepting``/``_running`` are deliberately
    #: absent: they are single-writer booleans read racily by design.
    _GUARDED_BY = {
        "_pending": "_lock",
        "counters": "_lock",
        "_buckets": "_bucket_lock",
        "histograms": "_histogram_lock",
    }

    def __init__(self, config: ServeConfig):
        self.config = config
        # Spawned children import the library fresh: forking a process whose
        # HTTP threads may hold arbitrary locks is not respawn-safe.
        self._ctx = multiprocessing.get_context("spawn")
        self._workers: List[_WorkerHandle] = [
            _WorkerHandle(worker_id) for worker_id in range(config.workers)
        ]
        self._response_queue = None
        self._lock = threading.Lock()
        self._pending: Dict[int, _Pending] = {}
        self._ids = itertools.count(1)
        self._accepting = False
        self._running = False
        self._pump_thread: Optional[threading.Thread] = None
        self._monitor_thread: Optional[threading.Thread] = None
        self._buckets: Dict[str, TokenBucket] = {}
        self._bucket_lock = threading.Lock()
        self.histograms: Dict[str, LatencyHistogram] = {}
        self._histogram_lock = threading.Lock()
        self.counters = {
            "accepted": 0,
            "completed": 0,
            "errors": 0,
            "rejected_queue_full": 0,
            "rejected_rate_limited": 0,
            "rejected_draining": 0,
            "timeouts": 0,
            "retried_after_crash": 0,
            "late_responses_dropped": 0,
            "respawns": 0,
            "hung_workers_killed": 0,
            "reloads": 0,
        }
        self.started_at = 0.0

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def start(self, ready_timeout: float = 60.0) -> None:
        """Spawn the fleet and wait until every worker answered startup."""
        if self._running:
            raise RouterError("router already started")
        self._response_queue = self._ctx.Queue()
        self._running = True
        self._accepting = True
        self.started_at = time.monotonic()
        for handle in self._workers:
            self._spawn(handle)
        self._pump_thread = threading.Thread(
            target=self._pump, name="serve-response-pump", daemon=True
        )
        self._pump_thread.start()
        deadline = time.monotonic() + ready_timeout
        for handle in self._workers:
            while not handle.ready and not handle.failed:
                if time.monotonic() > deadline:
                    self.stop(drain=False)
                    raise RouterError(
                        f"worker {handle.worker_id} did not become ready "
                        f"within {ready_timeout:.0f}s"
                    )
                time.sleep(0.01)
            if handle.failed:
                self.stop(drain=False)
                raise RouterError(
                    f"worker {handle.worker_id} failed to start "
                    f"(see its startup response)"
                )
        self._monitor_thread = threading.Thread(
            target=self._monitor, name="serve-worker-monitor", daemon=True
        )
        self._monitor_thread.start()

    def _spawn(self, handle: _WorkerHandle) -> None:
        """(Re)start one worker slot on a fresh request queue."""
        handle.request_queue = self._ctx.Queue()
        handle.ready = False
        handle.started_at = time.monotonic()
        handle.process = self._ctx.Process(
            target=worker_main,
            args=(
                handle.worker_id,
                self.config.to_dict(),
                handle.request_queue,
                self._response_queue,
            ),
            name=f"repro-serve-worker-{handle.worker_id}",
            daemon=True,
        )
        handle.process.start()

    # ------------------------------------------------------------------ #
    # dispatch
    # ------------------------------------------------------------------ #
    def dispatch(
        self,
        op: str,
        payload: Optional[Dict[str, Any]] = None,
        client_id: str = "anonymous",
        timeout: Optional[float] = None,
        worker_id: Optional[int] = None,
    ) -> Response:
        """Route one request to the least-loaded worker and await the answer.

        Args:
            worker_id: pin the request to one specific worker slot.  This is
                the supervisor's path (rolling reloads): a pinned request
                bypasses rate limiting and the in-flight budget because it
                must reach exactly that worker, never a sibling.

        Raises:
            ServiceDrainingError: the service no longer admits work.
            RateLimitedError: the client's token bucket is empty.
            QueueFullError: every worker is at its in-flight budget.
            RequestTimeoutError: no response within the deadline.
        """
        if not self._accepting:
            with self._lock:
                self.counters["rejected_draining"] += 1
            raise ServiceDrainingError("service is draining; retry elsewhere")
        if (
            worker_id is None
            and self.config.rate_limit > 0.0
            and not self._admit_client(client_id)
        ):
            with self._lock:
                self.counters["rejected_rate_limited"] += 1
            raise RateLimitedError(
                f"client {client_id!r} exceeded "
                f"{self.config.rate_limit:g} requests/s "
                f"(burst {self.config.rate_burst})"
            )

        request_id = next(self._ids)
        request = Request(request_id=request_id, op=op, payload=payload)
        with self._lock:
            if worker_id is not None:
                handle = self._pin_worker(worker_id)
            else:
                handle = self._select_worker()
            if handle is None:
                self.counters["rejected_queue_full"] += 1
                raise QueueFullError(
                    f"all {len(self._workers)} workers are at their "
                    f"in-flight budget of {self.config.queue_depth}"
                )
            pending = _Pending(request=request, worker_id=handle.worker_id)
            self._pending[request_id] = pending
            handle.inflight.add(request_id)
            self.counters["accepted"] += 1
            # Enqueue under the lock: the monitor swaps (and closes) a dead
            # worker's queue under the same lock, so a dispatch can never
            # race a respawn onto a closed queue.  Queues are unbounded --
            # the put cannot block; the bound is the in-flight budget above.
            handle.request_queue.put(request.to_tuple())

        wait = timeout if timeout is not None else self.config.request_timeout
        if pending.event.wait(wait):
            return pending.response
        with self._lock:
            # The pump may have answered between the wait expiring and this
            # lock: honour the response if it won the race.
            if pending.response is not None:
                return pending.response
            self._pending.pop(request_id, None)
            self._forget_inflight(request_id)
            self.counters["timeouts"] += 1
        raise RequestTimeoutError(
            f"request {request_id} timed out after {wait:g}s"
        )

    def _admit_client(self, client_id: str) -> bool:
        with self._bucket_lock:
            bucket = self._buckets.get(client_id)
            if bucket is None:
                if len(self._buckets) > 10_000:
                    # Defensive cap: a client-id flood must not grow memory
                    # without bound.  Dropping all buckets briefly refills
                    # everyone -- acceptable for a limiter, not a quota.
                    self._buckets.clear()
                bucket = TokenBucket(self.config.rate_limit, self.config.rate_burst)
                self._buckets[client_id] = bucket
            return bucket.allow()

    def _select_worker(self) -> Optional[_WorkerHandle]:
        """Least-loaded live worker under its budget (caller holds the lock)."""
        best = None
        for handle in self._workers:
            if handle.failed or handle.process is None:
                continue
            if len(handle.inflight) >= self.config.queue_depth:
                continue
            if best is None or len(handle.inflight) < len(best.inflight):
                best = handle
        return best

    def _pin_worker(self, worker_id: int) -> _WorkerHandle:
        """The named live worker slot (caller holds the lock)."""
        for handle in self._workers:
            if handle.worker_id == worker_id:
                if handle.failed or handle.process is None:
                    raise RouterError(f"worker {worker_id} is not available")
                return handle
        raise RouterError(f"no worker slot {worker_id}")

    def _forget_inflight(self, request_id: int) -> None:
        for handle in self._workers:
            handle.inflight.discard(request_id)

    # ------------------------------------------------------------------ #
    # hot reload (new snapshot generations)
    # ------------------------------------------------------------------ #
    def reload_workers(self, timeout: Optional[float] = None) -> List[Response]:
        """Roll an ``OP_RELOAD`` across the fleet, one worker at a time.

        Serialising the reloads is what keeps the fleet serving throughout a
        generation flip: while one worker reopens the new snapshot, every
        sibling keeps answering queries, and requests already queued behind
        the reloading worker are merely delayed (FIFO), never dropped.
        Returns the per-worker responses (a failed reload leaves that worker
        on its old generation and is visible in its response).
        """
        responses: List[Response] = []
        for handle in list(self._workers):
            if handle.failed or handle.process is None:
                continue
            response = self.dispatch(
                OP_RELOAD, worker_id=handle.worker_id, timeout=timeout
            )
            responses.append(response)
            if response.ok and response.payload.get("reloaded"):
                with self._lock:
                    self.counters["reloads"] += 1
        return responses

    # ------------------------------------------------------------------ #
    # response pump
    # ------------------------------------------------------------------ #
    def _pump(self) -> None:
        import queue as queue_module

        while self._running:
            try:
                raw = self._response_queue.get(timeout=0.1)
            except queue_module.Empty:
                continue
            except (EOFError, OSError):
                break
            response = Response.from_tuple(raw)
            if response.request_id == -1:
                self._handle_startup(response)
                continue
            with self._lock:
                pending = self._pending.pop(response.request_id, None)
                self._forget_inflight(response.request_id)
                if pending is None:
                    self.counters["late_responses_dropped"] += 1
                    continue
                self.counters["completed"] += 1
                if not response.ok:
                    self.counters["errors"] += 1
            self._histogram(response.query_kind).record(response.seconds)
            pending.response = response
            pending.event.set()

    def _handle_startup(self, response: Response) -> None:
        for handle in self._workers:
            if handle.worker_id == response.worker_id:
                if response.ok:
                    handle.ready = True
                else:
                    handle.failed = True
                    handle.startup_error = response.payload.get("message", "")
                return

    def _histogram(self, kind: str) -> LatencyHistogram:
        with self._histogram_lock:
            histogram = self.histograms.get(kind)
            if histogram is None:
                histogram = self.histograms[kind] = LatencyHistogram()
            return histogram

    # ------------------------------------------------------------------ #
    # crash / hang detection, respawn
    # ------------------------------------------------------------------ #
    def _monitor(self) -> None:
        interval = max(0.05, self.config.respawn_delay / 2.0)
        if self.config.hang_timeout > 0:
            # A hang must be noticed within a fraction of its deadline.
            interval = min(interval, max(0.05, self.config.hang_timeout / 4.0))
        while self._running:
            time.sleep(interval)
            if not self._running:
                break
            for handle in self._workers:
                if handle.failed or handle.process is None:
                    continue
                if handle.process.is_alive():
                    if self._hang_detected(handle):
                        self._kill_hung(handle)
                    continue
                if not self._accepting and not handle.inflight:
                    continue  # draining; dead workers stay down
                self._respawn(handle)

    def _hang_detected(self, handle: _WorkerHandle) -> bool:
        """Whether a dispatched request has outlived the hang deadline.

        Crash detection sees a dead process; a *hung* worker is alive but
        silent, so the only observable signal is a request that has waited
        longer than any legitimate execution could.  ``hang_timeout`` draws
        that line; zero disables the check.
        """
        limit = self.config.hang_timeout
        if limit <= 0:
            return False
        now = time.monotonic()
        with self._lock:
            for request_id in handle.inflight:
                pending = self._pending.get(request_id)
                if pending is not None and now - pending.enqueued_at > limit:
                    return True
        return False

    def _kill_hung(self, handle: _WorkerHandle) -> None:
        """Kill a hung worker, then reuse the crash path to respawn it.

        Killing converts "alive but silent" into the state the respawn
        machinery already handles: the orphaned in-flight requests are
        resubmitted (queries are read-only, so re-execution is safe) and a
        late answer from the killed process can never arrive.
        """
        process = handle.process
        if process is not None and process.is_alive():
            process.terminate()
            process.join(timeout=2.0)
            if process.is_alive():  # pragma: no cover - stuck in a syscall
                process.kill()
                process.join(timeout=1.0)
        with self._lock:
            self.counters["hung_workers_killed"] += 1
        self._respawn(handle)

    def _respawn(self, handle: _WorkerHandle) -> None:
        """Restart a crashed worker and resubmit its orphaned requests.

        The old request queue dies with the crash (requests it still held
        are exactly the orphaned in-flight set); the replacement worker gets
        a fresh queue, so every orphan is re-executed exactly once --
        queries are read-only, which is what makes the retry sound.
        """
        with self._lock:
            # One lock hold covers orphan collection, the queue swap, and
            # the resubmits: every concurrent dispatch either lands before
            # (and is collected here as an orphan) or after (and goes to the
            # replacement's fresh queue).  Nothing can fall in between.
            orphaned = sorted(handle.inflight)
            handle.inflight.clear()
            self.counters["respawns"] += 1
            handle.respawns += 1
            old_queue = handle.request_queue
            self._spawn(handle)
            for request_id in orphaned:
                pending = self._pending.get(request_id)
                if pending is None:
                    continue
                target = self._select_worker() or handle
                pending.worker_id = target.worker_id
                pending.retries += 1
                # Restart the hang clock: a retried orphan measured from its
                # original enqueue would trip hang detection immediately and
                # kill the replacement worker in a loop.
                pending.enqueued_at = time.monotonic()
                target.inflight.add(request_id)
                target.request_queue.put(pending.request.to_tuple())
                self.counters["retried_after_crash"] += 1
        if old_queue is not None:
            old_queue.cancel_join_thread()
            old_queue.close()

    # ------------------------------------------------------------------ #
    # drain / stop
    # ------------------------------------------------------------------ #
    def drain(self, timeout: Optional[float] = None) -> bool:
        """Stop admitting work and wait for in-flight requests to finish.

        Returns ``True`` when the backlog fully drained within the timeout.
        """
        self._accepting = False
        deadline = time.monotonic() + (
            timeout if timeout is not None else self.config.drain_timeout
        )
        while time.monotonic() < deadline:
            with self._lock:
                if not self._pending:
                    return True
            time.sleep(0.02)
        with self._lock:
            return not self._pending

    def stop(self, drain: bool = True) -> bool:
        """Drain (optionally), shut workers down, stop the service threads."""
        drained = self.drain() if drain else False
        self._accepting = False
        for handle in self._workers:
            if handle.alive and handle.request_queue is not None:
                try:
                    handle.request_queue.put(SHUTDOWN)
                except (ValueError, OSError):
                    pass
        for handle in self._workers:
            if handle.process is not None:
                handle.process.join(timeout=5.0)
                if handle.process.is_alive():
                    handle.process.terminate()
                    handle.process.join(timeout=1.0)
        self._running = False
        if self._pump_thread is not None:
            self._pump_thread.join(timeout=2.0)
        if self._monitor_thread is not None:
            self._monitor_thread.join(timeout=2.0)
        if self._response_queue is not None:
            self._response_queue.cancel_join_thread()
            self._response_queue.close()
        for handle in self._workers:
            if handle.request_queue is not None:
                handle.request_queue.cancel_join_thread()
                handle.request_queue.close()
        return drained

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def accepting(self) -> bool:
        return self._accepting

    def workers_alive(self) -> int:
        return sum(1 for handle in self._workers if handle.alive)

    def worker_pids(self) -> List[Optional[int]]:
        """Live pids by worker slot (the fault-drill hook of the benchmark)."""
        return [handle.pid for handle in self._workers]

    def stats(self) -> Dict[str, Any]:
        """Router-side statistics for the ``/stats`` endpoint."""
        with self._lock:
            counters = dict(self.counters)
            pending = len(self._pending)
            workers = [
                {
                    "worker_id": handle.worker_id,
                    "pid": handle.pid,
                    "alive": handle.alive,
                    "ready": handle.ready,
                    "inflight": len(handle.inflight),
                    "respawns": handle.respawns,
                }
                for handle in self._workers
            ]
        with self._histogram_lock:
            histograms = {
                kind: histogram.to_dict()
                for kind, histogram in self.histograms.items()
            }
        uptime = time.monotonic() - self.started_at if self.started_at else 0.0
        return {
            "accepting": self._accepting,
            "uptime_seconds": uptime,
            "workers": workers,
            "pending_requests": pending,
            "queue_depth": self.config.queue_depth,
            "rate_limit": self.config.rate_limit,
            "counters": counters,
            "latency": histograms,
        }
