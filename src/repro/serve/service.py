"""The HTTP/JSON front door: ``QueryService`` ties router + workers together.

Endpoints (all JSON):

* ``POST /query``   -- body is a serialized query descriptor
  (``{"type": "pnn", "point": [x, y], ...}``); the response is the result's
  ``to_dict`` form.
* ``POST /explain`` -- same body; the response carries the plan, estimated
  vs. actual page reads, per-stage timings, and the result (EXPLAIN ANALYZE
  over the wire).
* ``GET /health``   -- liveness/readiness: worker fleet state, 200 while
  serving, 503 while draining or with no live workers.
* ``GET /stats``    -- router counters, per-query-type latency histograms
  (p50/p99), admission/rate-limit rejections, and one worker's engine-side
  view (planner statistics, buffer-pool hit ratio).

Admission failures use the conventional codes: 429 with a ``Retry-After``
header for queue-full and rate-limited requests, 504 for per-request
timeouts, 503 while draining.  Clients are identified for rate limiting by
the ``X-Client-Id`` header when present, else by peer address.
"""

from __future__ import annotations

import json
import socket
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional

from repro.serve.config import ServeConfig
from repro.serve.protocol import OP_EXPLAIN, OP_QUERY, OP_STATS, error_status
from repro.serve.router import (
    QueueFullError,
    RateLimitedError,
    RequestTimeoutError,
    Router,
    ServiceDrainingError,
)

#: Request bodies above this size are rejected up front (64 MiB would only
#: ever be a mistake or an attack; real batch payloads are far smaller).
MAX_BODY_BYTES = 8 * 1024 * 1024


class _Handler(BaseHTTPRequestHandler):
    """One HTTP connection; routing state lives on ``self.server``."""

    protocol_version = "HTTP/1.1"  # keep-alive: load clients reuse sockets
    server: "_Server"

    # -- helpers --------------------------------------------------------- #
    def _send_json(self, status: int, payload: Dict[str, Any],
                   headers: Optional[Dict[str, str]] = None) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _client_id(self) -> str:
        explicit = self.headers.get("X-Client-Id")
        if explicit:
            return explicit
        return self.client_address[0] if self.client_address else "unknown"

    def _read_body(self) -> Optional[Dict[str, Any]]:
        length = int(self.headers.get("Content-Length", 0) or 0)
        if length <= 0:
            self._send_json(400, {"error": "bad-request",
                                  "message": "a JSON request body is required"})
            return None
        if length > MAX_BODY_BYTES:
            self._send_json(413, {"error": "bad-request",
                                  "message": "request body too large"})
            return None
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            self._send_json(400, {"error": "bad-request",
                                  "message": f"invalid JSON body: {exc}"})
            return None
        if not isinstance(payload, dict):
            self._send_json(400, {"error": "bad-request",
                                  "message": "the request body must be a JSON object"})
            return None
        return payload

    def _dispatch(self, op: str, payload: Optional[Dict[str, Any]]) -> None:
        router = self.server.router
        timeout = None
        header_timeout = self.headers.get("X-Request-Timeout")
        if header_timeout:
            try:
                timeout = max(0.001, float(header_timeout))
            except ValueError:
                self._send_json(400, {"error": "bad-request",
                                      "message": "X-Request-Timeout must be a number"})
                return
        try:
            response = router.dispatch(
                op, payload, client_id=self._client_id(), timeout=timeout
            )
        except ServiceDrainingError as exc:
            self._send_json(503, {"error": "draining", "message": str(exc)})
            return
        except RateLimitedError as exc:
            self._send_json(429, {"error": "rate-limited", "message": str(exc)},
                            headers={"Retry-After": "1"})
            return
        except QueueFullError as exc:
            self._send_json(429, {"error": "busy", "message": str(exc)},
                            headers={"Retry-After": "1"})
            return
        except RequestTimeoutError as exc:
            self._send_json(504, {"error": "timeout", "message": str(exc)})
            return
        if response.ok:
            self._send_json(200, response.payload)
        else:
            kind = response.payload.get("error", "internal")
            self._send_json(error_status(kind), response.payload)

    # -- verbs ----------------------------------------------------------- #
    def do_POST(self) -> None:  # noqa: N802 - http.server API
        if self.path == "/query":
            op = OP_QUERY
        elif self.path == "/explain":
            op = OP_EXPLAIN
        else:
            self._send_json(404, {"error": "not-found",
                                  "message": f"unknown endpoint {self.path}"})
            return
        payload = self._read_body()
        if payload is None:
            return
        self._dispatch(op, payload)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        if self.path == "/health":
            self._send_json(*self.server.service.health())
        elif self.path == "/stats":
            self._send_json(200, self.server.service.stats())
        else:
            self._send_json(404, {"error": "not-found",
                                  "message": f"unknown endpoint {self.path}"})

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # the /stats counters are the access log


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, handler, router: Router, service: "QueryService"):
        super().__init__(address, handler)
        self.router = router
        self.service = service


class QueryService:
    """A concurrent multi-worker query service over one mmap snapshot.

    Usage::

        config = ServeConfig(snapshot_path="uv.snap", workers=4, port=0)
        service = QueryService(config)
        service.start()                       # spawns workers, binds HTTP
        print(service.url)                    # http://127.0.0.1:<port>
        ...
        service.stop()                        # drain, shut workers down

    Also usable as a context manager (``with QueryService(config) as svc:``).
    """

    def __init__(self, config: ServeConfig):
        self.config = config
        self.router = Router(config)
        self._server: Optional[_Server] = None
        self._thread: Optional[threading.Thread] = None
        self._started = False
        self._watch_stop = threading.Event()
        self._watch_thread: Optional[threading.Thread] = None
        self._generation: Optional[int] = None
        self._last_reload_error: Optional[str] = None
        self._sharded = False
        self._shard_token: Optional[tuple] = None

    # -- lifecycle ------------------------------------------------------- #
    def start(self, ready_timeout: float = 60.0) -> "QueryService":
        """Spawn the worker fleet, bind the HTTP server, begin serving."""
        if self._started:
            raise RuntimeError("service already started")
        self.router.start(ready_timeout=ready_timeout)
        try:
            self._server = _Server(
                (self.config.host, self.config.port), _Handler,
                self.router, self,
            )
        except OSError:
            self.router.stop(drain=False)
            raise
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="serve-http",
            daemon=True,
        )
        self._thread.start()
        self._started = True
        self._start_watcher()
        return self

    def stop(self, drain: bool = True) -> bool:
        """Stop serving: drain in-flight work (optionally), shut down workers.

        Returns ``True`` when the drain completed within the configured
        timeout (always ``False`` with ``drain=False``).
        """
        self._watch_stop.set()
        if self._watch_thread is not None:
            self._watch_thread.join(timeout=2.0)
            self._watch_thread = None
        drained = self.router.stop(drain=drain)
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
        self._started = False
        return drained

    # -- hot reload (snapshot generations) ------------------------------- #
    def reload(self) -> int:
        """Roll the current manifest generation across the fleet.

        Returns the number of workers that actually swapped to a new
        snapshot (``0`` when every worker was already current).  Safe to
        call whether or not the watcher is running.

        ``generation`` only advances to a generation *every* live worker
        confirmed: if one worker's reload fails (it keeps serving its old
        snapshot), the supervisor's view stays behind the manifest and the
        watcher retries the roll on its next poll instead of stranding
        that worker on a stale, possibly pruned generation.
        """
        responses = self.router.reload_workers()
        swapped = 0
        confirmed: List[int] = []
        all_ok = bool(responses)
        failure: Optional[str] = None
        for response in responses:
            if not response.ok:
                all_ok = False
                failure = str(response.payload.get("message",
                                                   response.payload))
                continue
            if response.payload.get("reloaded"):
                swapped += 1
            generation = response.payload.get("generation")
            if generation is None:
                all_ok = False
            else:
                confirmed.append(generation)
        if all_ok:
            self._generation = min(confirmed)
            self._last_reload_error = None
        elif failure is not None:
            # Typically a worker that verified the new generation, found it
            # corrupt, and kept serving the old one; /stats surfaces this so
            # an operator sees *why* the fleet is pinned behind the manifest.
            self._last_reload_error = failure
        return swapped

    @property
    def generation(self) -> Optional[int]:
        """Last snapshot generation the supervisor observed (``None`` for
        plain snapshot files or before the first manifest read)."""
        return self._generation

    def _sharded_token(self) -> Optional[tuple]:
        """(epoch, per-shard generations) of a sharded deployment, or
        ``None`` mid-flip -- the watcher's change-detection token."""
        from repro.engine.snapshot import resolve_snapshot
        from repro.shard import read_shard_deployment

        try:
            deployment = read_shard_deployment(self.config.snapshot_path)
            generations = tuple(
                resolve_snapshot(path)[1] or 0
                for path in deployment.shard_paths(self.config.snapshot_path)
            )
        except (OSError, ValueError):
            return None
        return (deployment.epoch, generations)

    def _start_watcher(self) -> None:
        from repro.engine.snapshot import is_live_directory, read_manifest
        from repro.shard import is_sharded_directory

        self._sharded = is_sharded_directory(self.config.snapshot_path)
        if self._sharded:
            token = self._sharded_token()
            self._shard_token = token
            self._generation = token[0] if token else None
        elif is_live_directory(self.config.snapshot_path):
            self._generation = read_manifest(self.config.snapshot_path).generation
        else:
            return
        if self.config.reload_poll <= 0:
            return
        self._watch_stop.clear()
        self._watch_thread = threading.Thread(
            target=self._watch_manifest, name="serve-manifest-watch", daemon=True
        )
        self._watch_thread.start()

    def _watch_manifest(self) -> None:
        """Poll the manifest; roll reloads when a checkpoint flips it."""
        from repro.engine.snapshot import read_manifest

        while not self._watch_stop.wait(self.config.reload_poll):
            if self._sharded:
                token = self._sharded_token()
                if token is None or token == self._shard_token:
                    continue  # flip in progress, read error, or no change
                try:
                    self.reload()
                    self._shard_token = token
                except Exception:  # noqa: BLE001 - the watcher must survive
                    continue
                continue
            try:
                manifest = read_manifest(self.config.snapshot_path)
            except (OSError, ValueError):
                continue  # flip in progress or transient read error
            if manifest.generation == self._generation:
                continue
            try:
                # reload() advances self._generation only when every live
                # worker confirms the new generation; on a partial failure
                # it stays behind the manifest and this loop retries.
                self.reload()
            except Exception:  # noqa: BLE001 - the watcher must survive
                continue

    def __enter__(self) -> "QueryService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- endpoints ------------------------------------------------------- #
    def health(self):
        """Status tuple ``(http_status, payload)`` of the ``/health`` endpoint."""
        alive = self.router.workers_alive()
        total = self.config.workers
        if not self.router.accepting:
            status, code = "draining", 503
        elif alive == 0:
            status, code = "down", 503
        elif alive < total:
            status, code = "degraded", 200
        else:
            status, code = "ok", 200
        return code, {
            "status": status,
            "workers_alive": alive,
            "workers_total": total,
            "snapshot": self.config.snapshot_path,
            "store": self.config.store,
        }

    def stats(self) -> Dict[str, Any]:
        """The ``/stats`` payload: router view plus one worker's engine view."""
        payload = {
            "service": {
                "snapshot": self.config.snapshot_path,
                "store": self.config.store,
                "workers": self.config.workers,
                "request_timeout": self.config.request_timeout,
                "generation": self._generation,
                "reload_poll": self.config.reload_poll,
            },
            "router": self.router.stats(),
            "durability": self._durability_stats(),
        }
        try:
            response = self.router.dispatch(OP_STATS, timeout=5.0)
            payload["engine"] = response.payload if response.ok else None
        except Exception:  # noqa: BLE001 - stats must not 500 on a busy fleet
            payload["engine"] = None
        return payload

    def _durability_stats(self) -> Dict[str, Any]:
        """Manifest, quarantine, and checkpointer state for ``/stats``.

        Everything here degrades to ``None`` rather than failing: the
        endpoint must answer even mid-checkpoint-flip or over a plain
        snapshot file (which has no manifest at all).
        """
        from repro.engine.snapshot import (
            is_live_directory,
            list_quarantined,
            read_manifest,
        )
        from repro.wal.checkpoint import read_checkpoint_status

        import os

        from repro.shard import is_sharded_directory, read_shard_deployment

        stats: Dict[str, Any] = {
            "live_directory": False,
            "sharded": False,
            "last_reload_error": self._last_reload_error,
        }
        if is_sharded_directory(self.config.snapshot_path):
            # A sharded deployment's durability state is the union of its
            # shard directories' states (each is a PR 8 live deployment).
            stats["sharded"] = True
            try:
                deployment = read_shard_deployment(self.config.snapshot_path)
            except (OSError, ValueError):
                stats["shard_map"] = None
                return stats
            stats["epoch"] = deployment.epoch
            stats["shard_map"] = deployment.shard_map.to_dict()
            shards: List[Dict[str, Any]] = []
            for name in deployment.shard_dirs:
                shard_path = os.path.join(self.config.snapshot_path, name)
                entry: Dict[str, Any] = {
                    "directory": name,
                    "live_directory": is_live_directory(shard_path),
                }
                if entry["live_directory"]:
                    try:
                        entry["manifest"] = read_manifest(shard_path).to_dict()
                    except (OSError, ValueError):
                        entry["manifest"] = None
                    entry["quarantined"] = list_quarantined(shard_path)
                    entry["checkpoint"] = read_checkpoint_status(shard_path)
                shards.append(entry)
            stats["shards"] = shards
            return stats
        if not is_live_directory(self.config.snapshot_path):
            return stats
        stats["live_directory"] = True
        try:
            manifest = read_manifest(self.config.snapshot_path)
            stats["manifest"] = manifest.to_dict()
        except (OSError, ValueError):
            stats["manifest"] = None
        stats["quarantined"] = list_quarantined(self.config.snapshot_path)
        stats["checkpoint"] = read_checkpoint_status(self.config.snapshot_path)
        return stats

    # -- addresses ------------------------------------------------------- #
    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` to the actual one)."""
        if self._server is None:
            raise RuntimeError("service is not started")
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        """Base URL of the running service."""
        return f"http://{self.config.host}:{self.port}"


def serve_forever(config: ServeConfig, banner=print) -> int:
    """Blocking entry point of ``repro serve``: run until SIGINT/SIGTERM.

    Installs signal handlers for a graceful drain (stop accepting, finish
    in-flight work, shut workers down) and returns the process exit code.
    """
    import signal

    service = QueryService(config)
    service.start()
    stop_event = threading.Event()

    def _request_stop(signum, frame):  # noqa: ARG001 - signal API
        stop_event.set()

    previous = {}
    for signum in (signal.SIGINT, signal.SIGTERM):
        previous[signum] = signal.signal(signum, _request_stop)
    try:
        banner(f"serving {config.snapshot_path} on {service.url} "
               f"({config.workers} workers, {config.store} store)")
        banner("endpoints: POST /query, POST /explain, GET /health, GET /stats")
        stop_event.wait()
        banner("draining ...")
        drained = service.stop(drain=True)
        banner("shutdown complete" if drained
               else "shutdown complete (drain timed out)")
        return 0
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)


def wait_for_health(url: str, timeout: float = 30.0) -> bool:
    """Poll ``GET /health`` until it answers 200 (helper for scripts/tests)."""
    import http.client
    import time
    from urllib.parse import urlsplit

    parts = urlsplit(url)
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            connection = http.client.HTTPConnection(
                parts.hostname, parts.port, timeout=2.0
            )
            try:
                connection.request("GET", "/health")
                if connection.getresponse().status == 200:
                    return True
            finally:
                connection.close()
        except (OSError, socket.timeout, http.client.HTTPException):
            pass
        time.sleep(0.05)
    return False
