"""The worker process: one read-only engine, one request loop.

Each worker ``QueryEngine.open()``-s the shared snapshot with
``readonly=True`` (mmap store by default, so N workers share one set of
physical pages) and then loops: take a :class:`~repro.serve.protocol.Request`
from its queue, execute it, put a :class:`~repro.serve.protocol.Response` on
the shared response queue.  Workers hold no routing state -- crash recovery
is entirely the router's job, which is what makes kill -9 on a worker a
recoverable event.

The module is imported fresh in each spawned process, so everything the
worker needs arrives through :func:`worker_main`'s picklable arguments.
"""

from __future__ import annotations

import os
import signal
import time
from typing import Any, Dict

from repro.serve.protocol import (
    ERROR_BAD_REQUEST,
    ERROR_INTERNAL,
    ERROR_UNSUPPORTED,
    OP_EXPLAIN,
    OP_PING,
    OP_QUERY,
    OP_RELOAD,
    OP_STATS,
    Request,
    Response,
    error_payload,
)

#: Queue sentinel that asks a worker to exit its loop (graceful drain).
SHUTDOWN = None


def _encode_result(result) -> Dict[str, Any]:
    """Serialize whatever ``QueryEngine.execute`` returned."""
    from repro.engine.engine import BatchStream
    from repro.shard.engine import ShardedBatchStream

    if isinstance(result, (BatchStream, ShardedBatchStream)):
        # Materialise the stream worker-side: the shared read cache only
        # lives for the stream's duration anyway, and the wire carries the
        # per-query results plus the cache counters the stream accumulated.
        results = [item.to_dict() for _, item, _ in result]
        return {
            "type": "batch_result",
            "results": results,
            "cache_hits": result.cache.hits,
            "cache_misses": result.cache.misses,
        }
    return result.to_dict()


def _encode_plan(plan) -> Dict[str, Any]:
    return {
        "kind": plan.kind,
        "backend": plan.backend,
        "strategy": plan.strategy,
        "prob_kernel": plan.prob_kernel,
        "threshold": plan.threshold,
        "top_k": plan.top_k,
        "estimated_page_reads": plan.estimated_page_reads,
        "estimated_candidates": plan.estimated_candidates,
        "estimated_cost": plan.estimated_cost,
        "buffer_pool": plan.buffer_pool,
        "notes": list(plan.notes),
        "describe": plan.describe(),
    }


def _encode_explain(report) -> Dict[str, Any]:
    result = report.result
    if isinstance(result, list):  # a materialised BatchQuery stream
        encoded = {
            "type": "batch_result",
            "results": [item.to_dict() for _, item, _ in result],
        }
    else:
        encoded = result.to_dict()
    return {
        "type": "explain",
        "plan": _encode_plan(report.plan),
        "estimated_page_reads": report.estimated_page_reads,
        "actual_page_reads": report.actual_page_reads,
        "io": report.io.as_dict(),
        "seconds": report.seconds,
        "timings": report.timings.to_dict(),
        "describe": report.describe(),
        "result": encoded,
    }


class WorkerRuntime:
    """The worker side of the protocol, separated from process plumbing.

    Owning the op dispatch in a class makes the full request/response cycle
    testable in-process (no forked children) -- the serving tests and the
    router share exactly the code real workers run.

    ``injector`` carries an optional chaos-drill fault injector (see
    :mod:`repro.faults`); real deployments leave it ``None`` and spawned
    workers pick one up from the ``REPRO_FAULT_PLAN`` environment variable
    via :func:`worker_main`.  It instruments the ``worker.request`` op with
    ``crash`` (hard process exit, exactly like a segfault) and ``hang``
    (stop replying), the two failure modes the router's monitor must detect.
    """

    def __init__(self, worker_id: int, config, injector=None):
        from repro.engine.snapshot import resolve_snapshot
        from repro.shard import is_sharded_directory

        self.worker_id = worker_id
        self.config = config
        self.injector = injector
        self.sharded = is_sharded_directory(config.snapshot_path)
        if self.sharded:
            # A sharded deployment opens as a scatter-gather router over
            # every shard's current generation; the worker's "generation"
            # is the deployment epoch and reloads track per-shard
            # generations alongside it.
            self.snapshot_file = config.snapshot_path
            self.engine = self._open_sharded()
            self.generation = self.engine.epoch
            self._shard_generations = tuple(self.engine.generations)
        else:
            # A live deployment directory resolves through its manifest to
            # the current generation's snapshot file; a plain snapshot
            # resolves to itself with no generation.
            self.snapshot_file, self.generation = resolve_snapshot(
                config.snapshot_path
            )
            self.engine = self._open(self.snapshot_file)
        self.requests_handled = 0
        self.reloads = 0

    def _open(self, snapshot_file: str, verify: bool = False):
        from repro.engine.engine import QueryEngine

        return QueryEngine.open(
            snapshot_file,
            store=self.config.store,
            buffer_pages=self.config.buffer_pages,
            read_latency=self.config.read_latency,
            readonly=True,
            verify=verify,
        )

    def _open_sharded(self, verify: bool = False):
        from repro.shard import ShardedQueryEngine

        return ShardedQueryEngine.open(
            self.config.snapshot_path,
            store=self.config.store,
            buffer_pages=self.config.buffer_pages,
            read_latency=self.config.read_latency,
            verify=verify,
        )

    def _reload(self) -> Dict[str, Any]:
        """Reopen the snapshot when the manifest names a newer generation.

        The new engine is fully opened -- and, on a reload, *verified*
        end-to-end -- before the old one is swapped out, so a corrupt or
        half-written new generation leaves the worker serving the old one;
        the error travels back to the supervisor as an internal-error
        response instead.  (Startup opens skip verification: cold-start
        latency matters there and a lazily surfacing fault still raises a
        structured error.)
        """
        from repro.engine.snapshot import resolve_snapshot

        if self.sharded:
            return self._reload_sharded()
        snapshot_file, generation = resolve_snapshot(self.config.snapshot_path)
        if snapshot_file == self.snapshot_file and generation == self.generation:
            return {
                "reloaded": False,
                "generation": generation,
                "objects": len(self.engine),
            }
        engine = self._open(snapshot_file, verify=True)
        self.engine = engine
        self.snapshot_file = snapshot_file
        self.generation = generation
        self.reloads += 1
        return {
            "reloaded": True,
            "generation": generation,
            "objects": len(engine),
        }

    def _reload_sharded(self) -> Dict[str, Any]:
        """Swap in a new epoch or per-shard generations if the SHARDMAP or
        any shard manifest moved on (same swap-only-on-success contract as
        the single-snapshot path)."""
        from repro.engine.snapshot import resolve_snapshot
        from repro.shard import read_shard_deployment

        deployment = read_shard_deployment(self.config.snapshot_path)
        generations = tuple(
            resolve_snapshot(path)[1] or 0
            for path in deployment.shard_paths(self.config.snapshot_path)
        )
        if (
            deployment.epoch == self.generation
            and generations == self._shard_generations
        ):
            return {
                "reloaded": False,
                "generation": self.generation,
                "objects": len(self.engine),
            }
        engine = self._open_sharded(verify=True)
        self.engine = engine
        self.generation = engine.epoch
        self._shard_generations = tuple(engine.generations)
        self.reloads += 1
        return {
            "reloaded": True,
            "generation": self.generation,
            "objects": len(engine),
        }

    def handle(self, request: Request) -> Response:
        """Execute one request, never letting an exception escape."""
        from repro.engine.backend import UnsupportedQueryError
        from repro.queries.spec import query_from_dict

        if self.injector is not None:
            fault = self.injector.fire("worker.request")
            if fault is not None:
                if fault.kind == "crash":
                    # A drill-scheduled hard death: no cleanup, no response
                    # -- indistinguishable from a segfault to the router.
                    os._exit(17)
                elif fault.kind == "hang":
                    time.sleep(fault.arg)

        start = time.perf_counter()
        kind = "unknown"
        try:
            if request.op == OP_PING:
                kind = "ping"
                payload: Dict[str, Any] = {"pid": os.getpid(), "ok": True}
            elif request.op == OP_STATS:
                kind = "stats"
                payload = self.stats()
            elif request.op == OP_RELOAD:
                kind = "reload"
                payload = self._reload()
            elif request.op in (OP_QUERY, OP_EXPLAIN):
                query = query_from_dict(request.payload)
                kind = request.payload.get("type", "unknown")
                if request.op == OP_EXPLAIN:
                    kind = "explain"
                    payload = _encode_explain(self.engine.explain(query))
                else:
                    payload = _encode_result(self.engine.execute(query))
            else:
                raise ValueError(f"unknown worker op {request.op!r}")
            ok = True
        except (ValueError, TypeError, KeyError) as exc:
            ok, payload = False, error_payload(ERROR_BAD_REQUEST, str(exc))
        except UnsupportedQueryError as exc:
            ok, payload = False, error_payload(ERROR_UNSUPPORTED, str(exc))
        except Exception as exc:  # noqa: BLE001 - the loop must survive
            ok, payload = False, error_payload(
                ERROR_INTERNAL, f"{type(exc).__name__}: {exc}"
            )
        self.requests_handled += 1
        return Response(
            request_id=request.request_id,
            ok=ok,
            payload=payload,
            worker_id=self.worker_id,
            seconds=time.perf_counter() - start,
            query_kind=kind,
        )

    def stats(self) -> Dict[str, Any]:
        """Engine-side statistics surfaced by the ``/stats`` endpoint."""
        engine = self.engine
        io = engine.io_stats()
        backend = getattr(engine, "backend_name", None)
        if backend is None:
            backend = engine.backend.name
        payload = {
            "worker_id": self.worker_id,
            "pid": os.getpid(),
            "backend": backend,
            "objects": len(engine),
            "readonly": engine.readonly,
            "generation": self.generation,
            "reloads": self.reloads,
            "requests_handled": self.requests_handled,
            "io": io.as_dict(),
            "buffer_pool_hit_ratio": io.cache_hit_ratio,
            "index_statistics": dict(engine.statistics()),
        }
        if self.sharded:
            # The fleet has one planner per shard; report the home (first)
            # shard's model plus the shard layout instead of a single view.
            payload["shards"] = len(engine.engines)
            payload["epoch"] = engine.epoch
            payload["shard_generations"] = list(engine.generations)
            payload["planner_statistics"] = dict(
                engine.engines[0].planner.backend_statistics()
            )
        else:
            payload["planner_statistics"] = dict(
                engine.planner.backend_statistics()
            )
        return payload


def worker_main(worker_id: int, config_state: Dict[str, Any],
                request_queue, response_queue) -> None:
    """Process entry point: open the snapshot, serve requests until sentinel.

    Startup failures (bad snapshot path, corrupt file) are reported as one
    response with request id -1 so the supervisor can fail fast instead of
    hanging on a silent child exit.
    """
    from repro.faults.plan import injector_from_env
    from repro.serve.config import ServeConfig

    # The supervisor owns Ctrl-C/termination policy; workers only ever exit
    # through the queue sentinel or a crash.
    signal.signal(signal.SIGINT, signal.SIG_IGN)

    try:
        runtime = WorkerRuntime(worker_id, ServeConfig.from_dict(config_state),
                                injector=injector_from_env())
    except Exception as exc:  # noqa: BLE001 - must be reported, not raised
        response_queue.put(Response(
            request_id=-1,
            ok=False,
            payload=error_payload(
                ERROR_INTERNAL, f"worker startup failed: {exc}"
            ),
            worker_id=worker_id,
            query_kind="startup",
        ).to_tuple())
        return

    response_queue.put(Response(
        request_id=-1,
        ok=True,
        payload={"started": True, "pid": os.getpid()},
        worker_id=worker_id,
        query_kind="startup",
    ).to_tuple())

    while True:
        raw = request_queue.get()
        if raw is SHUTDOWN:
            break
        response_queue.put(runtime.handle(Request.from_tuple(raw)).to_tuple())
