"""Spatially-sharded deployments: shard map, builder, scatter-gather engine.

The single-snapshot :class:`~repro.engine.engine.QueryEngine` hits a
one-machine memory/CPU ceiling.  This package removes it by promoting the
build-time ``spatial_tile`` work partition to a first-class deployment
shape:

* :class:`~repro.shard.map.ShardMap` -- a frozen, wire-serializable spatial
  partition of the domain with per-shard possible-region bounds and
  statistics (embedded in every shard snapshot header and in the
  deployment-level ``SHARDMAP`` manifest),
* :class:`~repro.shard.builder.ShardedBuilder` -- builds and saves one
  generation-numbered live deployment directory per shard,
* :class:`~repro.shard.engine.ShardedQueryEngine` -- the scatter-gather
  router: same ``execute`` / ``explain`` descriptor surface, routes each
  query to only the shards whose bound can affect the answer, merges
  candidates, and runs one refinement so answers are bit-identical to the
  single-snapshot engine,
* :mod:`~repro.shard.rebalance` -- splits / merges shards from observed
  per-shard statistics into a new deployment epoch.
"""

from repro.shard.deployment import (
    SHARDMAP_NAME,
    ShardDeployment,
    is_sharded_directory,
    read_shard_deployment,
    write_shard_deployment,
)
from repro.shard.builder import ShardedBuilder, build_sharded_deployment
from repro.shard.engine import ShardedQueryEngine
from repro.shard.map import ShardInfo, ShardMap, build_shard_map
from repro.shard.rebalance import RebalancePlan, plan_rebalance, rebalance

__all__ = [
    "SHARDMAP_NAME",
    "ShardDeployment",
    "ShardInfo",
    "ShardMap",
    "ShardedBuilder",
    "ShardedQueryEngine",
    "RebalancePlan",
    "build_shard_map",
    "build_sharded_deployment",
    "is_sharded_directory",
    "plan_rebalance",
    "read_shard_deployment",
    "rebalance",
    "write_shard_deployment",
]
