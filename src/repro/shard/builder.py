"""Build a sharded deployment: one live directory per spatial shard.

The builder derives a balanced :class:`~repro.shard.map.ShardMap`, builds
one :class:`~repro.engine.engine.QueryEngine` per shard over the objects
assigned to its tile (sharing one ``ConstructionScheduler`` across every
build, so ``workers=N`` parallelises each shard's cell-computation phase),
stamps the shard map into every snapshot header, and lays each shard out as
a PR 8 live deployment directory (generation 1 + empty WAL + ``MANIFEST``)
via ``save_generation``.  The deployment-level ``SHARDMAP`` manifest is
written last -- it is the commit point; a crash mid-build leaves no
readable deployment.

For UV backends the builder additionally builds the *global* reference
index once and records its leaf skeleton (regions + entry counts in
traversal order) in the manifest.  Per-shard UV indexes are built over the
shard's own objects -- their cells are supersets of the global ones, which
preserves the candidate-superset property PNN correctness rests on -- while
range queries are answered from the global skeleton so partition output
stays bit-identical to the single-snapshot engine.
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.engine.config import DiagramConfig
from repro.engine.engine import QueryEngine
from repro.geometry.rectangle import Rect
from repro.shard.deployment import (
    ShardDeployment,
    SkeletonEntry,
    shard_dir_name,
    write_shard_deployment,
)
from repro.shard.map import ShardMap, assign_objects, build_shard_map
from repro.uncertain.objects import UncertainObject

#: Backends whose range queries are answered from a global UV-index skeleton.
UV_BACKENDS = ("ic", "icr", "basic")


def extract_uv_skeleton(engine: QueryEngine) -> Tuple[SkeletonEntry, ...]:
    """The (leaf region, entry count) skeleton of an engine's UV index.

    Entries are emitted in ``UVIndex.leaves()`` traversal order, which is
    the order ``leaves_in`` yields any subset in -- so filtering the
    skeleton by region intersection reproduces a live index's partition
    listing exactly.
    """
    index = getattr(engine.backend, "index", None)
    if index is None:
        raise ValueError(
            f"backend {engine.backend.name!r} has no UV index to skeletonise"
        )
    return tuple((leaf.region, leaf.entry_count()) for leaf in index.leaves())


class ShardedBuilder:
    """Builds every shard of a deployment from one global object list.

    Args:
        objects: the full dataset, in canonical (storage) order.
        domain: the domain rectangle shared by every shard.
        config: engine configuration applied to every shard build; the page
            store is forced to ``"memory"`` during construction (each shard
            persists through its own snapshot file afterwards).
        shards: requested shard count (clamped so no shard is empty).
        scheduler: optional shared ``ConstructionScheduler``; derived from
            ``config.workers`` when omitted.
    """

    def __init__(
        self,
        objects: Sequence[UncertainObject],
        domain: Rect,
        config: Optional[DiagramConfig] = None,
        shards: int = 4,
        scheduler: Any = None,
    ) -> None:
        if shards < 1:
            raise ValueError(f"shards must be positive, got {shards}")
        self.objects = list(objects)
        if not self.objects:
            raise ValueError("cannot build a sharded deployment over no objects")
        self.domain = domain
        self.config = config if config is not None else DiagramConfig()
        self.shards = shards
        if scheduler is None and self.config.workers > 1:
            from repro.parallel import ConstructionScheduler

            scheduler = ConstructionScheduler.from_config(self.config)
        self.scheduler = scheduler
        self._build_config = self.config.replace(store="memory", store_path=None)

    def build(self, directory: str, epoch: int = 1) -> ShardDeployment:
        """Build shard engines and lay out ``directory`` as epoch ``epoch``."""
        shard_map = build_shard_map(self.objects, self.domain, self.shards)
        skeleton: Optional[Tuple[SkeletonEntry, ...]] = None
        if self.config.backend in UV_BACKENDS:
            reference = QueryEngine.build(
                self.objects,
                self.domain,
                self._build_config,
                scheduler=self.scheduler,
            )
            skeleton = extract_uv_skeleton(reference)
        assignments = assign_objects(
            self.objects, [shard.tile for shard in shard_map.shards]
        )
        os.makedirs(directory, exist_ok=True)
        dir_names: List[str] = []
        for shard in shard_map.shards:
            name = shard_dir_name(epoch, shard.shard_id)
            engine = QueryEngine.build(
                assignments[shard.shard_id],
                self.domain,
                self._build_config,
                scheduler=self.scheduler,
            )
            engine.shard_info = shard_header(shard_map, shard.shard_id, epoch)
            engine.save_generation(os.path.join(directory, name))
            dir_names.append(name)
        deployment = ShardDeployment(
            epoch=epoch,
            backend=self.config.backend,
            shard_map=shard_map,
            shard_dirs=tuple(dir_names),
            uv_skeleton=skeleton,
        )
        write_shard_deployment(directory, deployment)
        return deployment


def shard_header(shard_map: ShardMap, shard_id: int, epoch: int) -> Dict[str, Any]:
    """The shard-map header embedded in a shard snapshot's metadata."""
    return {
        "shard_id": shard_id,
        "epoch": epoch,
        "shard_map": shard_map.to_dict(),
    }


def build_sharded_deployment(
    objects: Sequence[UncertainObject],
    domain: Rect,
    directory: str,
    config: Optional[DiagramConfig] = None,
    shards: int = 4,
    epoch: int = 1,
    scheduler: Any = None,
) -> ShardDeployment:
    """Convenience wrapper: build and persist a sharded deployment."""
    builder = ShardedBuilder(
        objects, domain, config=config, shards=shards, scheduler=scheduler
    )
    return builder.build(directory, epoch=epoch)
