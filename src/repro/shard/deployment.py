"""The ``SHARDMAP`` deployment manifest: one file naming every shard.

A sharded deployment is a directory holding one PR 8 live deployment
directory per shard (each with its own ``MANIFEST``, generation snapshots,
and write-ahead log) plus a single ``SHARDMAP`` file -- the commit point of
builds and rebalances.  The manifest records the epoch, the shard map, the
shard directory names, and (for UV backends) the *skeleton* of the global
reference index: the leaf regions and entry counts of the single-snapshot
UV-index in traversal order, which lets the sharded engine answer range
queries bit-identically to the single-snapshot engine without materialising
a global index at query time.

Like the per-generation ``MANIFEST``, the ``SHARDMAP`` is installed
atomically (temp file + fsync + rename + directory fsync), so a crashed
rebalance leaves the previous epoch intact.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.geometry.rectangle import Rect
from repro.shard.map import ShardMap

#: Name of the deployment manifest inside a sharded directory.
SHARDMAP_NAME = "SHARDMAP"

#: Format version of the deployment manifest.
SHARD_DEPLOYMENT_FORMAT = 1

#: One skeleton entry: the leaf region and its entry count.
SkeletonEntry = Tuple[Rect, int]


@dataclass(frozen=True)
class ShardDeployment:
    """Validated contents of a ``SHARDMAP`` manifest.

    Attributes:
        epoch: monotonically increasing deployment epoch; a rebalance builds
            epoch ``N+1`` next to epoch ``N`` and flips the manifest.
        backend: registry key the shards were built with.
        shard_map: the spatial partition (see :class:`~repro.shard.map.ShardMap`).
        shard_dirs: per-shard live deployment directory names, relative to
            the deployment root, ordered by shard id.
        uv_skeleton: global UV-index leaf skeleton (region, entry count) in
            traversal order; ``None`` for backends without a UV index.
    """

    epoch: int
    backend: str
    shard_map: ShardMap
    shard_dirs: Tuple[str, ...]
    uv_skeleton: Optional[Tuple[SkeletonEntry, ...]] = None

    def __post_init__(self) -> None:
        if self.epoch < 1:
            raise ValueError(f"epoch must be positive, got {self.epoch}")
        if not self.backend:
            raise ValueError("a deployment manifest needs a backend name")
        object.__setattr__(self, "shard_dirs", tuple(self.shard_dirs))
        if len(self.shard_dirs) != len(self.shard_map):
            raise ValueError(
                f"{len(self.shard_dirs)} shard directories for "
                f"{len(self.shard_map)} shards"
            )
        if len(set(self.shard_dirs)) != len(self.shard_dirs):
            raise ValueError("shard directories must be distinct")
        for name in self.shard_dirs:
            if not name or os.path.isabs(name) or os.sep in name:
                raise ValueError(
                    f"shard directories are simple relative names, got {name!r}"
                )
        if self.uv_skeleton is not None:
            object.__setattr__(self, "uv_skeleton", tuple(self.uv_skeleton))

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible state (inverse of :meth:`from_dict`)."""
        skeleton: Optional[List[List[float]]] = None
        if self.uv_skeleton is not None:
            skeleton = [
                [region.xmin, region.ymin, region.xmax, region.ymax, count]
                for region, count in self.uv_skeleton
            ]
        return {
            "shard_deployment_format": SHARD_DEPLOYMENT_FORMAT,
            "epoch": self.epoch,
            "backend": self.backend,
            "shard_map": self.shard_map.to_dict(),
            "shard_dirs": list(self.shard_dirs),
            "uv_skeleton": skeleton,
        }

    @classmethod
    def from_dict(cls, state: Dict[str, Any]) -> "ShardDeployment":
        """Rebuild (and re-validate) a manifest from :meth:`to_dict` output."""
        version = int(state.get("shard_deployment_format", SHARD_DEPLOYMENT_FORMAT))
        if version != SHARD_DEPLOYMENT_FORMAT:
            raise ValueError(
                f"unsupported shard deployment format {version} "
                f"(this build reads format {SHARD_DEPLOYMENT_FORMAT})"
            )
        skeleton_state = state.get("uv_skeleton")
        skeleton: Optional[Tuple[SkeletonEntry, ...]] = None
        if skeleton_state is not None:
            entries: List[SkeletonEntry] = []
            for entry in skeleton_state:
                if not isinstance(entry, (list, tuple)) or len(entry) != 5:
                    raise ValueError(
                        "a skeleton entry serializes as "
                        f"[xmin, ymin, xmax, ymax, count], got {entry!r}"
                    )
                region = Rect(*(float(value) for value in entry[:4]))
                entries.append((region, int(entry[4])))
            skeleton = tuple(entries)
        return cls(
            epoch=int(state["epoch"]),
            backend=str(state["backend"]),
            shard_map=ShardMap.from_dict(state["shard_map"]),
            shard_dirs=tuple(str(name) for name in state.get("shard_dirs", [])),
            uv_skeleton=skeleton,
        )

    def shard_paths(self, directory: str) -> List[str]:
        """Absolute per-shard deployment directories under ``directory``."""
        return [os.path.join(directory, name) for name in self.shard_dirs]


def shard_dir_name(epoch: int, shard_id: int) -> str:
    """Canonical shard directory name (epoch-scoped, sortable)."""
    return f"shard-{epoch:03d}-{shard_id:04d}"


def is_sharded_directory(path: str) -> bool:
    """``True`` when ``path`` is a sharded deployment (has a ``SHARDMAP``)."""
    return os.path.isdir(path) and os.path.exists(os.path.join(path, SHARDMAP_NAME))


def read_shard_deployment(directory: str) -> ShardDeployment:
    """Load and validate the ``SHARDMAP`` manifest of ``directory``."""
    manifest_path = os.path.join(directory, SHARDMAP_NAME)
    try:
        with open(manifest_path, "r", encoding="utf-8") as handle:
            state = json.load(handle)
    except FileNotFoundError:
        raise FileNotFoundError(
            f"{directory} is not a sharded deployment (no {SHARDMAP_NAME})"
        ) from None
    except json.JSONDecodeError as exc:
        raise ValueError(f"corrupt {SHARDMAP_NAME} in {directory}: {exc}") from exc
    return ShardDeployment.from_dict(state)


def write_shard_deployment(directory: str, deployment: ShardDeployment) -> str:
    """Atomically install ``deployment`` as the directory's ``SHARDMAP``.

    Same discipline as the per-generation manifest: write to a temp file,
    fsync it, rename over the target, fsync the directory -- a crash leaves
    either the old or the new manifest, never a torn one.
    """
    os.makedirs(directory, exist_ok=True)
    target = os.path.join(directory, SHARDMAP_NAME)
    temp = target + ".tmp"
    payload = json.dumps(deployment.to_dict(), indent=2, sort_keys=True)
    with open(temp, "w", encoding="utf-8") as handle:
        handle.write(payload)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temp, target)
    directory_fd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(directory_fd)
    finally:
        os.close(directory_fd)
    return target
