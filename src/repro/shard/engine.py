"""The scatter-gather router: one query surface over many shard engines.

:class:`ShardedQueryEngine` opens every shard of a deployment (read-only
snapshots or live WAL-attached directories) and exposes the exact
``execute`` / ``explain`` descriptor surface of the single-snapshot
:class:`~repro.engine.engine.QueryEngine`.  Queries are routed with the
shard map's possible-region bounds:

* **PNN** -- shards are probed in ascending ``min_distance(q, bound)``
  order; after the first probe the running ``d_minmax`` bound (the PR 5
  tau-pruning bound at shard granularity) cuts off every shard whose bound
  provably cannot hold an answer.  The merged candidate union is a superset
  of the single-snapshot candidate set that contains every object with
  ``min_distance <= d_minmax``, so one shared
  :func:`~repro.queries.pipeline.evaluate_pnn` refinement over the union
  reproduces the global answers -- ids, probabilities, and ordering --
  bit-identically.
* **KNN** -- the global ``d_kminmax`` bound is the k-th smallest of the
  merged per-shard k-smallest maximum distances (the same multiset the
  single engine's best-first traversal consumes); candidates and the
  Monte-Carlo estimation then run over the identical sorted candidate list
  with the identical generator, so probabilities match exactly.
* **Range** -- UV backends answer from the deployment's global leaf
  skeleton, the grid merges per-shard distinct counts over the shared cell
  geometry, and other backends union candidate ids; each path reproduces
  the single-snapshot partition listing value-for-value.

Routing decisions never change answers -- only which shards pay page reads
-- and the ``bench_sharded`` benchmark gates that the routed path reads at
least 2x fewer candidate pages than scattering to every shard.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.pattern import PartitionInfo, PartitionQueryResult
from repro.engine.backend import BatchReadCache
from repro.engine.config import DiagramConfig
from repro.engine.engine import QueryEngine
from repro.engine.planner import (
    STRATEGY_SCATTER_GATHER,
    ExplainReport,
    QueryPlan,
)
from repro.engine.snapshot import resolve_snapshot
from repro.geometry.circle import Circle
from repro.geometry.point import Point
from repro.geometry.rectangle import Rect
from repro.queries.knn import (
    KNNResult,
    ProbabilisticKNN,
    estimate_knn_probabilities,
)
from repro.queries.pipeline import evaluate_pnn
from repro.queries.probability_kernel import RingCache
from repro.queries.result import PNNResult
from repro.queries.spec import BatchQuery, KNNQuery, PNNQuery, Query, RangeQuery
from repro.shard.deployment import (
    ShardDeployment,
    read_shard_deployment,
)
from repro.storage.stats import IOStats, TimingBreakdown
from repro.uncertain.objects import UncertainObject
from repro.wal.checkpoint import CheckpointResult, Checkpointer

#: Backends whose range queries are answered from the global UV skeleton.
_UV_BACKENDS = ("ic", "icr", "basic")

#: Distance tolerance used by the shared verification pipeline; the routing
#: margin must exceed it so routed-away shards provably cannot contribute.
_PRUNE_TOLERANCE = 1e-12


class FleetIO:
    """An aggregate :class:`IOStats` view over every shard's disk.

    Duck-types the ``snapshot()`` / ``delta()`` surface the shared PNN
    pipeline uses for its I/O accounting, summing the counted I/O of all
    shard disks so sharded results report fleet-wide page reads.
    """

    def __init__(self, engines: Sequence[QueryEngine]) -> None:
        self._engines = engines

    def current(self) -> IOStats:
        """Summed counters across every shard disk."""
        total = IOStats()
        for engine in self._engines:
            stats = engine.disk.stats
            total.page_reads += stats.page_reads
            total.page_writes += stats.page_writes
            total.pages_allocated += stats.pages_allocated
            total.cache_hits += stats.cache_hits
            total.cache_misses += stats.cache_misses
        return total

    def snapshot(self) -> IOStats:
        """Independent copy of the summed counters (pipeline protocol)."""
        return self.current()

    def delta(self, before: IOStats) -> IOStats:
        """Summed counters accumulated since ``before`` (pipeline protocol)."""
        return self.current().delta(before)


class ShardBatchCaches:
    """Per-shard read caches of one batch, plus the aggregate counters.

    Cache keys identify index granules *within one shard's disk*, so a
    single shared cache would collide across shards; each shard gets its own
    :class:`BatchReadCache` and this wrapper reports the summed hit/miss
    counters the CLI and benchmarks read.
    """

    def __init__(self, shards: int) -> None:
        self.per_shard: List[BatchReadCache] = [BatchReadCache() for _ in range(shards)]

    @property
    def hits(self) -> int:
        return sum(cache.hits for cache in self.per_shard)

    @property
    def misses(self) -> int:
        return sum(cache.misses for cache in self.per_shard)

    def __len__(self) -> int:
        return sum(len(cache) for cache in self.per_shard)


class ShardedBatchStream:
    """Streaming batch evaluation with per-shard shared read caches.

    Mirrors the single-engine ``BatchStream`` contract: yields
    ``(query, result, plan)`` triples in input order, exposes the aggregate
    ``cache`` and total ``page_reads``, and refuses to continue when any
    shard's structure changes mid-stream.
    """

    def __init__(self, engine: "ShardedQueryEngine", batch: BatchQuery) -> None:
        self._engine = engine
        self._queries = list(batch)
        self._position = 0
        self._page_reads = 0
        self._versions = tuple(e.structure_version for e in engine.engines)
        self.cache = ShardBatchCaches(len(engine.engines))

    @property
    def page_reads(self) -> int:
        """Counted page reads consumed by the stream so far."""
        return self._page_reads

    def __len__(self) -> int:
        return len(self._queries)

    def __iter__(self) -> "ShardedBatchStream":
        return self

    def __next__(self) -> Tuple[PNNQuery, PNNResult, QueryPlan]:
        if self._position >= len(self._queries):
            raise StopIteration
        current = tuple(e.structure_version for e in self._engine.engines)
        if current != self._versions:
            raise RuntimeError(
                "sharded deployment changed while a batch stream was open; "
                "restart the batch to see a consistent diagram"
            )
        query = self._queries[self._position]
        self._position += 1
        plan = self._engine._plan(query)
        result = self._engine._execute_pnn(query, caches=self.cache.per_shard)
        if result.io is not None:
            self._page_reads += result.io.page_reads
        return query, result, plan


class ShardedQueryEngine:
    """Scatter-gather query engine over a sharded deployment.

    Open read-only over snapshots with :meth:`open` (serving) or writable
    with :meth:`open_live` (per-shard WAL attach; inserts and deletes are
    routed to the owning shard and are individually durable exactly like
    single-engine live updates).
    """

    def __init__(
        self,
        directory: str,
        deployment: ShardDeployment,
        engines: Sequence[QueryEngine],
        live: bool,
    ) -> None:
        if len(engines) != len(deployment.shard_map):
            raise ValueError(
                f"{len(engines)} shard engines for "
                f"{len(deployment.shard_map)} shards"
            )
        self.directory = directory
        self.deployment = deployment
        self.engines = list(engines)
        self.live = live
        self.shard_map = deployment.shard_map
        domain = self.shard_map.domain
        self._margin = max(
            1e-9, 1e-9 * max(domain.xmax - domain.xmin, domain.ymax - domain.ymin)
        )
        # Live routing bounds: start from the manifest's possible-region
        # bounds, widen on insert, never shrink on delete (stale-wide bounds
        # cost page reads, never answers).
        self._bounds: List[Rect] = [shard.bound for shard in self.shard_map.shards]
        self._owner: Dict[int, int] = {}
        for index, engine in enumerate(self.engines):
            for obj in engine.objects:
                self._owner[obj.oid] = index
        self._ring_cache = RingCache()
        self.fleet_io = FleetIO(self.engines)
        self.config: DiagramConfig = self.engines[0].config

    # ------------------------------------------------------------------ #
    # opening
    # ------------------------------------------------------------------ #
    @classmethod
    def open(
        cls,
        directory: str,
        store: str = "file",
        buffer_pages: Optional[int] = None,
        read_latency: float = 0.0,
        verify: bool = False,
    ) -> "ShardedQueryEngine":
        """Open every shard snapshot read-only (cold-start serving)."""
        deployment = read_shard_deployment(directory)
        engines = []
        for path in deployment.shard_paths(directory):
            snapshot_file, generation = resolve_snapshot(path)
            engine = QueryEngine.open(
                snapshot_file,
                store=store,
                buffer_pages=buffer_pages,
                read_latency=read_latency,
                readonly=True,
                verify=verify,
            )
            # A read-only open of a plain snapshot file does not know its
            # generation; stamp the manifest's so reload change-detection
            # and /stats report the served generation accurately.
            engine._generation = generation or 0
            engines.append(engine)
        return cls(directory, deployment, engines, live=False)

    @classmethod
    def open_live(
        cls,
        directory: str,
        store: str = "file",
        buffer_pages: Optional[int] = None,
        read_latency: float = 0.0,
        fsync: str = "always",
        verify: bool = False,
    ) -> "ShardedQueryEngine":
        """Open every shard as a live deployment (recovery + WAL attach)."""
        deployment = read_shard_deployment(directory)
        engines = []
        for path in deployment.shard_paths(directory):
            engines.append(
                QueryEngine.open_live(
                    path,
                    store=store,
                    buffer_pages=buffer_pages,
                    read_latency=read_latency,
                    fsync=fsync,
                    verify=verify,
                )
            )
        return cls(directory, deployment, engines, live=True)

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def epoch(self) -> int:
        """Deployment epoch of the shard map this engine serves."""
        return self.deployment.epoch

    @property
    def domain(self) -> Rect:
        """The domain rectangle shared by every shard."""
        return self.shard_map.domain

    @property
    def backend_name(self) -> str:
        """Registry key the shards were built with."""
        return self.deployment.backend

    @property
    def readonly(self) -> bool:
        """``True`` when every shard was opened read-only."""
        return not self.live

    @property
    def index(self) -> None:
        """No single UV-index exists fleet-wide (rendering needs one shard)."""
        return None

    @property
    def pending_wal_records(self) -> int:
        """Un-checkpointed WAL records summed across every shard."""
        return sum(engine.pending_wal_records for engine in self.engines)

    def __len__(self) -> int:
        return sum(len(engine) for engine in self.engines)

    @property
    def generations(self) -> List[int]:
        """Current snapshot generation of every shard, by shard id."""
        return [engine.generation or 0 for engine in self.engines]

    def io_stats(self) -> IOStats:
        """Summed counted I/O across every shard disk."""
        return self.fleet_io.current()

    def statistics(self) -> Dict[str, Any]:
        """Fleet statistics: per-shard object counts, bounds, generations."""
        return {
            "epoch": self.epoch,
            "backend": self.backend_name,
            "shards": len(self.engines),
            "objects": len(self),
            "per_shard": [
                {
                    "shard_id": shard.shard_id,
                    "objects": len(self.engines[shard.shard_id]),
                    "generation": self.engines[shard.shard_id].generation,
                    "tile": [
                        shard.tile.xmin,
                        shard.tile.ymin,
                        shard.tile.xmax,
                        shard.tile.ymax,
                    ],
                }
                for shard in self.shard_map.shards
            ],
        }

    # ------------------------------------------------------------------ #
    # the descriptor surface
    # ------------------------------------------------------------------ #
    def execute(
        self,
        query: Query,
        *,
        rng: Optional[np.random.Generator] = None,
        scatter_all: bool = False,
    ) -> Any:
        """Evaluate a query descriptor (same surface as ``QueryEngine``).

        ``scatter_all=True`` disables bound-based routing and probes every
        shard -- answers are identical either way; the flag exists so tests
        and the routing benchmark can measure what pruning saves.
        """
        if isinstance(query, PNNQuery):
            return self._execute_pnn(query, scatter_all=scatter_all)
        if isinstance(query, BatchQuery):
            return ShardedBatchStream(self, query)
        if isinstance(query, KNNQuery):
            if rng is None and query.seed is not None:
                rng = np.random.default_rng(query.seed)
            return self._execute_knn(query, rng=rng, scatter_all=scatter_all)
        if isinstance(query, RangeQuery):
            return self._execute_range(query, scatter_all=scatter_all)
        raise TypeError(f"unknown query descriptor: {query!r}")

    def explain(self, query: Query) -> ExplainReport:
        """EXPLAIN ANALYZE over the fleet: routed plan plus actual I/O."""
        plan = self._plan(query)
        before = self.fleet_io.snapshot()
        timings = TimingBreakdown()
        start = time.perf_counter()
        result: Any = self.execute(query)
        if isinstance(result, ShardedBatchStream):
            triples = [(item, answer, item_plan) for item, answer, item_plan in result]
            for _, answer, _ in triples:
                if answer.timing is not None:
                    timings.merge(answer.timing)
            result = triples
        elif isinstance(result, PNNResult) and result.timing is not None:
            timings.merge(result.timing)
        seconds = time.perf_counter() - start
        io = self.fleet_io.delta(before)
        return ExplainReport(
            query=query,
            plan=plan,
            result=result,
            io=io,
            seconds=seconds,
            timings=timings,
        )

    # ------------------------------------------------------------------ #
    # routing
    # ------------------------------------------------------------------ #
    def _shard_order(self, point: Point) -> List[Tuple[float, int]]:
        """Shards in ascending bound-distance order (id breaks ties)."""
        return sorted(
            (self._bounds[index].min_distance_to_point(point), index)
            for index in range(len(self.engines))
        )

    def _scatter_candidates(
        self,
        point: Point,
        caches: Optional[Sequence[BatchReadCache]] = None,
        scatter_all: bool = False,
        probed: Optional[List[int]] = None,
    ) -> List[Tuple[int, Circle]]:
        """The routed candidate union for a PNN query at ``point``.

        Probes shards in ascending ``min_distance(q, bound)`` order and
        stops once the next shard's bound distance exceeds the running
        ``d_minmax`` bound of the candidates gathered so far (plus the
        routing margin).  Every object with
        ``min_distance <= d_minmax + tolerance`` lives in a probed shard,
        so verification over the union equals single-snapshot verification.
        """
        merged: List[Tuple[int, Circle]] = []
        d_minmax = float("inf")
        for distance, index in self._shard_order(point):
            if not scatter_all and merged and distance > d_minmax + self._margin:
                break
            cache = caches[index] if caches is not None else None
            candidates = self.engines[index].backend.candidates(point, cache=cache)
            if probed is not None:
                probed.append(index)
            for oid, mbc in candidates:
                upper = mbc.max_distance(point)
                if upper < d_minmax:
                    d_minmax = upper
            merged.extend(candidates)
        return merged

    def _fetch_objects(self, oids: List[int]) -> List[UncertainObject]:
        """Fetch answer objects from their owning shards (counted I/O)."""
        by_shard: Dict[int, List[int]] = {}
        for oid in oids:
            if oid not in self._owner:
                raise KeyError(f"object {oid} is not in any shard")
            by_shard.setdefault(self._owner[oid], []).append(oid)
        fetched: Dict[int, UncertainObject] = {}
        for shard_id in sorted(by_shard):
            for obj in self.engines[shard_id].object_store.fetch_many(
                by_shard[shard_id]
            ):
                fetched[obj.oid] = obj
        return [fetched[oid] for oid in oids]

    # ------------------------------------------------------------------ #
    # execution per descriptor family
    # ------------------------------------------------------------------ #
    def _execute_pnn(
        self,
        query: PNNQuery,
        caches: Optional[Sequence[BatchReadCache]] = None,
        scatter_all: bool = False,
    ) -> PNNResult:
        def retrieve(point: Point) -> List[Tuple[int, Circle]]:
            return self._scatter_candidates(
                point, caches=caches, scatter_all=scatter_all
            )

        return evaluate_pnn(
            query.point,
            retrieve,
            self._fetch_objects,
            self.fleet_io,
            compute_probabilities=query.compute_probabilities,
            prob_kernel=self.config.prob_kernel,
            ring_cache=self._ring_cache,
            threshold=query.threshold,
            top_k=query.top_k,
        )

    def _execute_knn(
        self,
        query: KNNQuery,
        rng: Optional[np.random.Generator],
        scatter_all: bool = False,
    ) -> KNNResult:
        point, k = query.point, query.k
        processors = [
            ProbabilisticKNN(engine.rtree, engine.objects) for engine in self.engines
        ]
        order = self._shard_order(point)
        # Phase 1: the global d_kminmax bound.  Each shard's k smallest
        # maximum distances form the same multiset the single engine's
        # best-first traversal pops, so the merged k-th smallest is exact.
        values: List[float] = []
        for distance, index in order:
            if (
                not scatter_all
                and len(values) >= k
                and distance > values[k - 1] + self._margin
            ):
                break
            if len(self.engines[index]) == 0:
                continue
            values.extend(processors[index].kth_max_distance_values(point, k))
            values.sort()
        if not values:
            return KNNResult(query=point, k=k)
        bound = values[k - 1] if len(values) >= k else values[-1]
        # Phase 2: the candidate union under the global bound.  MBR-disk
        # intersection is an object-local predicate, so per-shard circular
        # range queries union to exactly the single-tree result.
        candidate_ids: List[int] = []
        for distance, index in order:
            if not scatter_all and distance > bound + self._margin:
                break
            if len(self.engines[index]) == 0:
                continue
            processor = processors[index]
            for oid in processor.tree.circular_range_query(point, bound):
                if processor.by_id[oid].min_distance(point) <= bound + _PRUNE_TOLERANCE:
                    candidate_ids.append(oid)
        candidate_ids.sort()
        candidates = [
            processors[self._owner[oid]].by_id[oid] for oid in candidate_ids
        ]
        if not candidates:
            return KNNResult(query=point, k=k)
        if rng is None:
            rng = np.random.default_rng(0)
        answers = estimate_knn_probabilities(
            candidates, point, k, worlds=query.worlds, rng=rng
        )
        return KNNResult(query=point, k=k, answers=answers)

    def _execute_range(
        self, query: RangeQuery, scatter_all: bool = False
    ) -> PartitionQueryResult:
        start = time.perf_counter()
        before = self.fleet_io.snapshot()
        if self.backend_name in _UV_BACKENDS:
            partitions = self._range_from_skeleton(query.region)
        elif self.backend_name == "grid":
            partitions = self._range_grid(query.region, scatter_all=scatter_all)
        else:
            partitions = self._range_generic(query.region, scatter_all=scatter_all)
        return PartitionQueryResult(
            partitions=partitions,
            io=self.fleet_io.delta(before),
            seconds=time.perf_counter() - start,
        )

    def _range_from_skeleton(self, region: Rect) -> List[PartitionInfo]:
        """UV partitions from the deployment's global leaf skeleton.

        The skeleton stores the reference index's leaves in traversal
        order, so intersection-filtering reproduces ``leaves_in`` exactly;
        counts and densities are the build-time reference values (a
        rebalance refreshes them for the new epoch).
        """
        skeleton = self.deployment.uv_skeleton
        if skeleton is None:
            raise RuntimeError(
                f"deployment at {self.directory} has no UV skeleton; "
                "was it built with a UV backend?"
            )
        partitions: List[PartitionInfo] = []
        for leaf_region, count in skeleton:
            if not leaf_region.intersects(region):
                continue
            area = leaf_region.area()
            partitions.append(
                PartitionInfo(
                    region=leaf_region,
                    object_count=count,
                    density=count / area if area > 0 else 0.0,
                )
            )
        return partitions

    def _range_grid(
        self, region: Rect, scatter_all: bool = False
    ) -> List[PartitionInfo]:
        """Merged grid partitions: shared cell geometry, summed counts."""
        grid = getattr(self.engines[0].backend, "grid")
        low = grid.cell_of(Point(region.xmin, region.ymin))
        high = grid.cell_of(Point(region.xmax, region.ymax))
        low_rect = grid.cell_rect(low)
        high_rect = grid.cell_rect(high)
        covered = Rect(low_rect.xmin, low_rect.ymin, high_rect.xmax, high_rect.ymax)
        probed = [
            index
            for index in range(len(self.engines))
            if scatter_all or self._bounds[index].intersects(covered)
        ] or [0]
        listings = [
            self.engines[index].backend.partitions_in(region).partitions
            for index in probed
        ]
        base = listings[0]
        for other in listings[1:]:
            if len(other) != len(base):
                raise RuntimeError(
                    "shard grids disagree on cell geometry; the deployment "
                    "was built with mismatched configurations"
                )
        partitions: List[PartitionInfo] = []
        for position, info in enumerate(base):
            count = sum(listing[position].object_count for listing in listings)
            area = info.region.area()
            partitions.append(
                PartitionInfo(
                    region=info.region,
                    object_count=count,
                    density=count / area if area > 0 else 0.0,
                )
            )
        return partitions

    def _range_generic(
        self, region: Rect, scatter_all: bool = False
    ) -> List[PartitionInfo]:
        """Generic single-partition summary: union of shard candidate ids."""
        oids = set()
        for index in range(len(self.engines)):
            if not scatter_all and not self._bounds[index].intersects(region):
                continue
            for oid, _ in self.engines[index].backend.range_candidates(region):
                oids.add(oid)
        area = region.area()
        return [
            PartitionInfo(
                region=region,
                object_count=len(oids),
                density=len(oids) / area if area > 0 else 0.0,
            )
        ]

    # ------------------------------------------------------------------ #
    # planning / EXPLAIN
    # ------------------------------------------------------------------ #
    def _plan(self, query: Query) -> QueryPlan:
        """A scatter-gather plan annotated with per-shard estimates."""
        notes: List[str] = [
            f"scatter-gather over {len(self.engines)} shards (epoch {self.epoch})"
        ]
        kind = "batch"
        threshold = 0.0
        top_k: Optional[int] = None
        prob_kernel = self.config.prob_kernel
        estimated_reads = 0.0
        estimated_candidates = 0.0
        estimated_cost = 0.0
        if isinstance(query, (PNNQuery, KNNQuery)):
            kind = "pnn" if isinstance(query, PNNQuery) else "knn"
            if isinstance(query, PNNQuery):
                threshold = query.threshold
                top_k = query.top_k
                if not query.compute_probabilities:
                    prob_kernel = "none"
            else:
                prob_kernel = "monte-carlo"
            order = self._shard_order(query.point)
            home = order[0][1]
            home_plan = self.engines[home].planner.plan(query)
            estimated_reads = home_plan.estimated_page_reads
            estimated_candidates = home_plan.estimated_candidates
            estimated_cost = home_plan.estimated_cost
            for distance, index in order:
                shard = self.shard_map.shards[index]
                notes.append(
                    f"shard {index}: bound mindist {distance:.3f}, "
                    f"{len(self.engines[index])} objects, "
                    f"max radius {shard.max_radius:.3f}"
                )
            notes.append(
                f"home shard {home} estimates {estimated_reads:.1f} page reads"
            )
        elif isinstance(query, RangeQuery):
            kind = "range"
            prob_kernel = "none"
            touched = [
                index
                for index in range(len(self.engines))
                if self._bounds[index].intersects(query.region)
            ]
            notes.append(
                f"region intersects {len(touched)} of {len(self.engines)} "
                f"shard bounds"
            )
            if self.backend_name in _UV_BACKENDS and self.deployment.uv_skeleton:
                matching = sum(
                    1
                    for leaf_region, _ in self.deployment.uv_skeleton
                    if leaf_region.intersects(query.region)
                )
                estimated_candidates = float(matching)
                notes.append(
                    f"answered from the epoch skeleton: {matching} leaves, "
                    "0 page reads"
                )
            else:
                for index in touched:
                    shard_plan = self.engines[index].planner.plan(query)
                    estimated_reads += shard_plan.estimated_page_reads
                    estimated_candidates += shard_plan.estimated_candidates
                    estimated_cost += shard_plan.estimated_cost
        elif isinstance(query, BatchQuery):
            kind = "batch"
            notes.append(
                f"{len(query)} queries stream through per-shard read caches"
            )
            if len(query):
                first = self.engines[
                    self._shard_order(query.queries[0].point)[0][1]
                ].planner.plan(query.queries[0])
                estimated_reads = first.estimated_page_reads * len(query)
                estimated_candidates = first.estimated_candidates * len(query)
                estimated_cost = first.estimated_cost * len(query)
        return QueryPlan(
            kind=kind,
            backend=self.backend_name,
            strategy=STRATEGY_SCATTER_GATHER,
            prob_kernel=prob_kernel,
            threshold=threshold,
            top_k=top_k,
            estimated_page_reads=estimated_reads,
            estimated_candidates=estimated_candidates,
            estimated_cost=estimated_cost,
            buffer_pool="per-shard",
            notes=tuple(notes),
        )

    # ------------------------------------------------------------------ #
    # live updates and durability
    # ------------------------------------------------------------------ #
    def insert(self, obj: UncertainObject) -> Any:
        """Route an insert to the shard whose tile owns the object's center.

        The owning shard's engine validates, WAL-appends, and applies the
        update (individually durable under ``fsync="always"``); the routing
        bound is widened so the new object is always reachable.
        """
        shard_id = self.shard_map.shard_of_point(obj.center)
        outcome = self.engines[shard_id].insert(obj)
        self._owner[obj.oid] = shard_id
        self._bounds[shard_id] = self._bounds[shard_id].union(obj.mbr())
        self._ring_cache.invalidate(obj.oid)
        return outcome

    def delete(self, oid: int) -> Any:
        """Route a delete to the shard that owns ``oid``.

        Bounds are deliberately not shrunk -- a stale-wide bound costs page
        reads, never correctness.
        """
        if oid not in self._owner:
            raise KeyError(f"object {oid} is not in any shard")
        shard_id = self._owner[oid]
        outcome = self.engines[shard_id].delete(oid)
        del self._owner[oid]
        self._ring_cache.invalidate(oid)
        return outcome

    def checkpoint(
        self,
        force: bool = True,
        min_records: int = 0,
        workers: Optional[int] = None,
    ) -> List[Optional[CheckpointResult]]:
        """Run one checkpoint round across every shard (PR 8 per shard).

        Each shard folds its WAL tail into a new snapshot generation and
        truncates its log independently; a crash between shards leaves every
        shard in a consistent (old or new) generation.
        """
        if not self.live:
            raise RuntimeError("checkpointing needs a live deployment (open_live)")
        results: List[Optional[CheckpointResult]] = []
        for engine in self.engines:
            checkpointer = Checkpointer(
                engine, interval=3600.0, min_records=min_records, workers=workers
            )
            results.append(checkpointer.run_once(force=force))
        return results

    def close(self) -> None:
        """Detach and close every shard's write-ahead log."""
        for engine in self.engines:
            engine.close_wal()

    def __enter__(self) -> "ShardedQueryEngine":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
