"""The shard map: a frozen, wire-serializable spatial partition.

A :class:`ShardMap` carries everything a router needs to decide which
shards a query can touch without opening any of them:

* ``tile`` -- the shard's slice of the domain (tiles exactly partition the
  domain; objects are assigned by the location of their MBC center),
* ``bound`` -- the shard's *possible-region bound*: the union of the MBC
  bounding boxes of its objects.  Every candidate an index inside the shard
  can produce lies within this rectangle, so ``min_distance(q, bound)`` is
  a sound lower bound on any shard answer's distance -- the PR 5 tau-pruning
  argument lifted to shard granularity,
* per-shard statistics (object count, maximum MBC radius) for the planner
  and the rebalancer.

Both dataclasses are frozen and mutated only through their validated
constructors (machine-checked by the ``shard-map-coherence`` lint rule);
:meth:`ShardMap.to_dict` / :meth:`ShardMap.from_dict` are the wire format
used by snapshot headers and the ``SHARDMAP`` deployment manifest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Sequence, Tuple

from repro.geometry.point import Point
from repro.geometry.rectangle import Rect
from repro.uncertain.objects import UncertainObject

#: Format version of the ShardMap wire encoding.
SHARD_MAP_FORMAT = 1

#: Relative slack allowed when checking that tiles cover the domain.
_AREA_TOLERANCE = 1e-9


def _rect_state(rect: Rect) -> List[float]:
    return [rect.xmin, rect.ymin, rect.xmax, rect.ymax]


def _rect_from_state(state: Any, what: str) -> Rect:
    if not isinstance(state, (list, tuple)) or len(state) != 4:
        raise ValueError(
            f"{what} serializes as [xmin, ymin, xmax, ymax], got {state!r}"
        )
    return Rect(*(float(value) for value in state))


@dataclass(frozen=True)
class ShardInfo:
    """One shard's slice of the domain plus its routing bound and statistics.

    Attributes:
        shard_id: position in the map (``0 .. shards-1``).
        tile: the shard's slice of the domain; object assignment is by MBC
            center, ties on shared tile edges resolved to the lowest id.
        bound: union of the shard's object MBC bounding boxes -- the
            possible-region bound the router prunes with.  Always contained
            in no particular tile (an object's uncertainty region may hang
            over the tile edge).
        objects: number of objects assigned to the shard at build time.
        max_radius: largest object MBC radius in the shard.
    """

    shard_id: int
    tile: Rect
    bound: Rect
    objects: int
    max_radius: float

    def __post_init__(self) -> None:
        if self.shard_id < 0:
            raise ValueError(f"shard_id must be non-negative, got {self.shard_id}")
        if self.objects < 0:
            raise ValueError(f"objects must be non-negative, got {self.objects}")
        if self.max_radius < 0.0:
            raise ValueError(f"max_radius must be non-negative, got {self.max_radius}")

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible state (inverse of :meth:`from_dict`)."""
        return {
            "shard_id": self.shard_id,
            "tile": _rect_state(self.tile),
            "bound": _rect_state(self.bound),
            "objects": self.objects,
            "max_radius": self.max_radius,
        }

    @classmethod
    def from_dict(cls, state: Dict[str, Any]) -> "ShardInfo":
        """Rebuild (and re-validate) a shard entry from :meth:`to_dict` output."""
        return cls(
            shard_id=int(state["shard_id"]),
            tile=_rect_from_state(state["tile"], "a shard tile"),
            bound=_rect_from_state(state["bound"], "a shard bound"),
            objects=int(state["objects"]),
            max_radius=float(state["max_radius"]),
        )


@dataclass(frozen=True)
class ShardMap:
    """A validated spatial partition of the domain into shards.

    Attributes:
        domain: the domain rectangle the tiles partition.
        strategy: how the tiles were derived (``"kd_tile"`` for the built-in
            median-split builder).
        shards: the shard entries, ordered by ``shard_id``.
    """

    domain: Rect
    strategy: str
    shards: Tuple[ShardInfo, ...]

    def __post_init__(self) -> None:
        if not self.shards:
            raise ValueError("a ShardMap needs at least one shard")
        object.__setattr__(self, "shards", tuple(self.shards))
        for position, shard in enumerate(self.shards):
            if shard.shard_id != position:
                raise ValueError(
                    f"shard ids must be contiguous from 0; position {position} "
                    f"holds shard_id {shard.shard_id}"
                )
            tile = shard.tile
            if (
                tile.xmin < self.domain.xmin - _AREA_TOLERANCE
                or tile.ymin < self.domain.ymin - _AREA_TOLERANCE
                or tile.xmax > self.domain.xmax + _AREA_TOLERANCE
                or tile.ymax > self.domain.ymax + _AREA_TOLERANCE
            ):
                raise ValueError(
                    f"shard {position} tile {tile} escapes the domain {self.domain}"
                )
        covered = sum(shard.tile.area() for shard in self.shards)
        total = self.domain.area()
        if total > 0 and abs(covered - total) > _AREA_TOLERANCE * max(total, 1.0):
            raise ValueError(
                f"shard tiles cover area {covered!r}, domain has {total!r}; "
                "tiles must exactly partition the domain"
            )

    def __len__(self) -> int:
        return len(self.shards)

    def shard_of_point(self, point: Point) -> int:
        """The shard whose tile contains ``point`` (lowest id wins on edges)."""
        for shard in self.shards:
            if shard.tile.contains_point(point):
                return shard.shard_id
        raise ValueError(f"point {point} lies outside the domain {self.domain}")

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible state (inverse of :meth:`from_dict`)."""
        return {
            "shard_map_format": SHARD_MAP_FORMAT,
            "domain": _rect_state(self.domain),
            "strategy": self.strategy,
            "shards": [shard.to_dict() for shard in self.shards],
        }

    @classmethod
    def from_dict(cls, state: Dict[str, Any]) -> "ShardMap":
        """Rebuild (and re-validate) a shard map from :meth:`to_dict` output."""
        version = int(state.get("shard_map_format", SHARD_MAP_FORMAT))
        if version != SHARD_MAP_FORMAT:
            raise ValueError(
                f"unsupported shard map format {version} "
                f"(this build reads format {SHARD_MAP_FORMAT})"
            )
        return cls(
            domain=_rect_from_state(state["domain"], "a shard map domain"),
            strategy=str(state.get("strategy", "kd_tile")),
            shards=tuple(
                ShardInfo.from_dict(entry) for entry in state.get("shards", [])
            ),
        )


def _kd_tiles(
    items: List[Tuple[float, float, int]], tile: Rect, count: int
) -> List[Tuple[Rect, List[Tuple[float, float, int]]]]:
    """Recursive median split of ``items`` (x, y, oid) into ``count`` tiles.

    Splits the wider tile axis at the median object so sibling tiles hold
    floor/ceil halves of the objects -- deterministic for a fixed input
    order because ties sort by object id.
    """
    if count <= 1 or len(items) <= 1:
        return [(tile, items)]
    left_count = count // 2
    axis = 0 if (tile.xmax - tile.xmin) >= (tile.ymax - tile.ymin) else 1
    ordered = sorted(items, key=lambda item: (item[axis], item[2]))
    pivot = len(ordered) * left_count // count
    pivot = min(max(pivot, 1), len(ordered) - 1)
    cut = (ordered[pivot - 1][axis] + ordered[pivot][axis]) / 2.0
    if axis == 0:
        cut = min(max(cut, tile.xmin), tile.xmax)
        low_tile = Rect(tile.xmin, tile.ymin, cut, tile.ymax)
        high_tile = Rect(cut, tile.ymin, tile.xmax, tile.ymax)
    else:
        cut = min(max(cut, tile.ymin), tile.ymax)
        low_tile = Rect(tile.xmin, tile.ymin, tile.xmax, cut)
        high_tile = Rect(tile.xmin, cut, tile.xmax, tile.ymax)
    low_items = ordered[:pivot]
    high_items = ordered[pivot:]
    return _kd_tiles(low_items, low_tile, left_count) + _kd_tiles(
        high_items, high_tile, count - left_count
    )


def build_shard_map(
    objects: Sequence[UncertainObject], domain: Rect, shards: int
) -> ShardMap:
    """Derive a balanced ``ShardMap`` over ``objects`` with kd-median tiles.

    The requested shard count is clamped to the number of objects so no
    shard is ever empty; bounds and statistics are computed from the objects
    assigned to each tile (by MBC center, lowest shard id wins on edges).
    """
    if shards < 1:
        raise ValueError(f"shards must be positive, got {shards}")
    if not objects:
        raise ValueError("cannot derive a shard map over an empty dataset")
    shards = min(shards, len(objects))
    items = [(obj.center.x, obj.center.y, obj.oid) for obj in objects]
    tiles = [tile for tile, _ in _kd_tiles(items, domain, shards)]
    assignments = assign_objects(objects, tiles)
    infos = []
    for shard_id, assigned in enumerate(assignments):
        if not assigned:
            raise ValueError(
                f"kd tiling produced an empty shard {shard_id} "
                f"({len(objects)} objects over {shards} shards)"
            )
        boxes = [obj.mbr() for obj in assigned]
        bound = boxes[0]
        for box in boxes[1:]:
            bound = bound.union(box)
        infos.append(
            ShardInfo(
                shard_id=shard_id,
                tile=tiles[shard_id],
                bound=bound,
                objects=len(assigned),
                max_radius=max(obj.radius for obj in assigned),
            )
        )
    return ShardMap(domain=domain, strategy="kd_tile", shards=tuple(infos))


def assign_objects(
    objects: Sequence[UncertainObject], tiles: Sequence[Rect]
) -> List[List[UncertainObject]]:
    """Partition ``objects`` over ``tiles`` by MBC center (first tile wins)."""
    assignments: List[List[UncertainObject]] = [[] for _ in tiles]
    for obj in objects:
        for index, tile in enumerate(tiles):
            if tile.contains_point(obj.center):
                assignments[index].append(obj)
                break
        else:
            raise ValueError(
                f"object {obj.oid} at {obj.center} lies outside every shard tile"
            )
    return assignments
