"""Split / merge shards from observed statistics into a new epoch.

A deployment's load drifts as online updates land: inserts concentrate in
hot tiles, deletes hollow out cold ones.  The rebalancer reads every
shard's *live* object set (snapshot generation plus WAL tail, so no
acknowledged update is lost), decides a new shard count from the observed
skew, re-derives balanced kd tiles over the actual data, and builds the
next epoch next to the current one.  The atomic ``SHARDMAP`` flip is the
commit point -- readers see either the old epoch or the new one, never a
mix -- and the old epoch's directories are left behind for ``--prune`` to
reclaim once nothing serves them.
"""

from __future__ import annotations

import os
import shutil
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.engine.config import DiagramConfig
from repro.shard.builder import ShardedBuilder
from repro.shard.deployment import (
    ShardDeployment,
    read_shard_deployment,
)
from repro.shard.engine import ShardedQueryEngine
from repro.uncertain.objects import UncertainObject


@dataclass(frozen=True)
class RebalancePlan:
    """What a rebalance would do, derived from observed shard statistics.

    Attributes:
        epoch: the epoch the plan was derived from.
        next_epoch: the epoch a rebalance would build.
        shard_counts: live object count per shard, by shard id.
        target_shards: shard count of the next epoch.
        reasons: human-readable justification per decision.
    """

    epoch: int
    next_epoch: int
    shard_counts: Tuple[int, ...]
    target_shards: int
    reasons: Tuple[str, ...]

    @property
    def changes_layout(self) -> bool:
        """``True`` when the plan actually re-tiles the deployment."""
        return any("rebalance" in reason for reason in self.reasons)

    def describe(self) -> str:
        """Multi-line rendering for the CLI."""
        lines = [
            f"epoch {self.epoch} -> {self.next_epoch}: "
            f"{len(self.shard_counts)} shards -> {self.target_shards}",
            f"  per-shard objects: {list(self.shard_counts)}",
        ]
        for reason in self.reasons:
            lines.append(f"  {reason}")
        return "\n".join(lines)


def _observed_counts(engine: ShardedQueryEngine) -> Tuple[int, ...]:
    return tuple(len(shard) for shard in engine.engines)


def plan_rebalance(
    deployment: ShardDeployment,
    shard_counts: Tuple[int, ...],
    target_shards: Optional[int] = None,
    max_skew: float = 2.0,
) -> RebalancePlan:
    """Derive a rebalance plan from per-shard live object counts.

    Without an explicit ``target_shards``, a shard holding more than
    ``max_skew`` times the mean splits (raising the count) and a deployment
    whose largest shard is under ``1 / max_skew`` of the mean merges
    (lowering the count); balanced deployments keep their layout but still
    re-tile on request.
    """
    if max_skew <= 1.0:
        raise ValueError(f"max_skew must exceed 1.0, got {max_skew}")
    total = sum(shard_counts)
    current = len(shard_counts)
    mean = total / current if current else 0.0
    reasons: List[str] = []
    if target_shards is not None:
        if target_shards < 1:
            raise ValueError(f"target_shards must be positive, got {target_shards}")
        target = min(target_shards, max(total, 1))
        reasons.append(f"explicit target: rebalance to {target} shards")
    else:
        heaviest = max(shard_counts) if shard_counts else 0
        if mean > 0 and heaviest > max_skew * mean:
            target = min(current * 2, max(total, 1))
            reasons.append(
                f"shard skew: heaviest shard holds {heaviest} of {total} "
                f"objects (> {max_skew:.1f}x mean {mean:.1f}); "
                f"rebalance splits to {target} shards"
            )
        elif current > 1 and heaviest < mean / max_skew:
            target = max(1, current // 2)
            reasons.append(
                f"underloaded: heaviest shard holds {heaviest} "
                f"(< mean {mean:.1f} / {max_skew:.1f}); "
                f"rebalance merges to {target} shards"
            )
        else:
            target = current
            reasons.append(
                f"balanced: heaviest/mean = "
                f"{(max(shard_counts) / mean) if mean else 0.0:.2f}; "
                "layout kept (re-tiling refreshes bounds and statistics)"
            )
    return RebalancePlan(
        epoch=deployment.epoch,
        next_epoch=deployment.epoch + 1,
        shard_counts=shard_counts,
        target_shards=target,
        reasons=tuple(reasons),
    )


def rebalance(
    directory: str,
    target_shards: Optional[int] = None,
    max_skew: float = 2.0,
    config: Optional[DiagramConfig] = None,
    prune: bool = False,
    dry_run: bool = False,
) -> Tuple[RebalancePlan, Optional[ShardDeployment]]:
    """Re-tile ``directory`` into a new epoch from its live object sets.

    Args:
        directory: a sharded deployment (has a ``SHARDMAP``).
        target_shards: explicit shard count for the new epoch; derived from
            observed skew when omitted.
        max_skew: skew threshold driving the split / merge decision.
        config: engine configuration for the rebuilt shards; defaults to
            the configuration of the current shards.
        prune: remove the previous epoch's shard directories after the
            manifest flip.
        dry_run: stop after planning; nothing is built or flipped.

    Returns:
        The plan and the new deployment manifest (``None`` on dry runs).
    """
    deployment = read_shard_deployment(directory)
    engine = ShardedQueryEngine.open_live(directory)
    try:
        counts = _observed_counts(engine)
        plan = plan_rebalance(
            deployment, counts, target_shards=target_shards, max_skew=max_skew
        )
        if dry_run:
            return plan, None
        objects: List[UncertainObject] = []
        for shard_engine in engine.engines:
            objects.extend(shard_engine.objects)
        objects.sort(key=lambda obj: obj.oid)
        rebuild_config = config if config is not None else engine.config
    finally:
        engine.close()
    builder = ShardedBuilder(
        objects,
        deployment.shard_map.domain,
        config=rebuild_config,
        shards=plan.target_shards,
    )
    new_deployment = builder.build(directory, epoch=plan.next_epoch)
    if prune:
        for name in deployment.shard_dirs:
            if name in new_deployment.shard_dirs:
                continue
            shutil.rmtree(os.path.join(directory, name), ignore_errors=True)
    return plan, new_deployment
