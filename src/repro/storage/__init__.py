"""Disk storage with I/O accounting and pluggable persistence.

The paper compares the UV-index and the R-tree largely on their I/O
behaviour (Figure 6(b)): both indexes keep non-leaf structures in memory and
their leaf contents on 4 KB disk pages.  This package provides that setup
with a pluggable substrate: a :class:`~repro.storage.disk.DiskManager` hands
out fixed-size pages and counts every read/write on top of a
:class:`~repro.storage.pagestore.PageStore` -- the in-memory simulator, a
real file with fixed-size page slots, or a memory-mapped read-mostly view
for cold-start serving.  An optional
:class:`~repro.storage.buffer.BufferPool` adds LRU caching on the counted
read path so cache effects can be studied.
"""

from repro.storage.page import Page, PAGE_SIZE_BYTES, DEFAULT_ENTRY_SIZE_BYTES
from repro.storage.disk import DiskManager
from repro.storage.buffer import BufferPool
from repro.storage.stats import IOStats
from repro.storage.pagestore import (
    CorruptSnapshotError,
    DEFAULT_SLOT_BYTES,
    FilePageStore,
    MemoryPageStore,
    MmapPageStore,
    PageOverflowError,
    PageStore,
    PageStoreError,
    ReadOnlyStoreError,
    STORE_KINDS,
    create_page_store,
    open_page_store,
    verify_snapshot_file,
    write_snapshot_file,
)

__all__ = [
    "Page",
    "PAGE_SIZE_BYTES",
    "DEFAULT_ENTRY_SIZE_BYTES",
    "DEFAULT_SLOT_BYTES",
    "DiskManager",
    "BufferPool",
    "IOStats",
    "PageStore",
    "MemoryPageStore",
    "FilePageStore",
    "MmapPageStore",
    "PageStoreError",
    "PageOverflowError",
    "ReadOnlyStoreError",
    "CorruptSnapshotError",
    "STORE_KINDS",
    "create_page_store",
    "open_page_store",
    "verify_snapshot_file",
    "write_snapshot_file",
]
