"""Simulated disk storage with I/O accounting.

The paper compares the UV-index and the R-tree largely on their I/O
behaviour (Figure 6(b)): both indexes keep non-leaf structures in memory and
their leaf contents on 4 KB disk pages.  This package simulates that setup:
a :class:`~repro.storage.disk.DiskManager` hands out fixed-size pages, counts
every read/write, and an optional :class:`~repro.storage.buffer.BufferPool`
adds LRU caching so cache effects can be studied.
"""

from repro.storage.page import Page, PAGE_SIZE_BYTES, DEFAULT_ENTRY_SIZE_BYTES
from repro.storage.disk import DiskManager
from repro.storage.buffer import BufferPool
from repro.storage.stats import IOStats

__all__ = [
    "Page",
    "PAGE_SIZE_BYTES",
    "DEFAULT_ENTRY_SIZE_BYTES",
    "DiskManager",
    "BufferPool",
    "IOStats",
]
