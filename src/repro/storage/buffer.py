"""A small LRU buffer pool on top of the simulated disk.

The paper's experiments keep non-leaf nodes in memory and read leaf pages
from disk without caching; the buffer pool is therefore *optional* and is
used by the ablation benchmarks to show how a cache would change the I/O
comparison between the UV-index and the R-tree.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from repro.storage.disk import DiskManager
from repro.storage.page import Page


class BufferPool:
    """LRU page cache.

    Args:
        disk: the underlying disk manager.
        capacity: number of pages the pool can hold; zero disables caching
            entirely (every request becomes a disk read).
    """

    def __init__(self, disk: DiskManager, capacity: int = 64):
        if capacity < 0:
            raise ValueError("buffer pool capacity must be non-negative")
        self.disk = disk
        self.capacity = capacity
        self._frames: "OrderedDict[int, Page]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get_page(self, page_id: int) -> Page:
        """Fetch a page through the cache, counting a disk read only on miss."""
        if self.capacity > 0 and page_id in self._frames:
            self.hits += 1
            self._frames.move_to_end(page_id)
            return self._frames[page_id]
        self.misses += 1
        page = self.disk.read_page(page_id)
        if self.capacity > 0:
            self._frames[page_id] = page
            self._frames.move_to_end(page_id)
            while len(self._frames) > self.capacity:
                self._frames.popitem(last=False)
        return page

    def invalidate(self, page_id: Optional[int] = None) -> None:
        """Drop one page (or everything when ``page_id`` is ``None``) from the cache."""
        if page_id is None:
            self._frames.clear()
        else:
            self._frames.pop(page_id, None)

    @property
    def hit_ratio(self) -> float:
        """Fraction of requests served from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
