"""An LRU buffer pool over the simulated disk.

The paper's experiments keep non-leaf nodes in memory and read leaf pages
from disk without caching; the buffer pool is therefore *optional*.  It can
be used in two ways:

* **integrated** -- ``DiskManager(buffer_pages=N)`` puts the pool on the
  counted read path: :meth:`lookup` hits are served without an I/O,
  misses are counted and :meth:`admit`-ed.  ``write_page`` / ``free_page``
  invalidate the matching frame, keeping the pool coherent under splits and
  live updates.
* **standalone** -- :meth:`get_page` wraps a disk's ``read_page`` for the
  ablation benchmarks that study how a cache changes the I/O comparison
  between the UV-index and the R-tree.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, TYPE_CHECKING

from repro.storage.page import Page

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.storage.disk import DiskManager


class BufferPool:
    """LRU page cache.

    Args:
        disk: the underlying disk manager.
        capacity: number of pages the pool can hold; zero disables caching
            entirely (every request becomes a disk read).
    """

    def __init__(self, disk: "DiskManager", capacity: int = 64):
        if capacity < 0:
            raise ValueError("buffer pool capacity must be non-negative")
        self.disk = disk
        self.capacity = capacity
        self._frames: "OrderedDict[int, Page]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------ #
    # frame primitives (used by the integrated DiskManager read path)
    # ------------------------------------------------------------------ #
    def lookup(self, page_id: int) -> Optional[Page]:
        """The cached frame for ``page_id`` (bumping LRU and hit count), or ``None``."""
        if self.capacity > 0 and page_id in self._frames:
            self.hits += 1
            self._frames.move_to_end(page_id)
            return self._frames[page_id]
        return None

    def admit(self, page_id: int, page: Page, count_miss: bool = True) -> None:
        """Insert a frame, evicting the least recently used beyond capacity."""
        if count_miss:
            self.misses += 1
        if self.capacity <= 0:
            return
        self._frames[page_id] = page
        self._frames.move_to_end(page_id)
        while len(self._frames) > self.capacity:
            self._frames.popitem(last=False)

    # ------------------------------------------------------------------ #
    # standalone wrapper
    # ------------------------------------------------------------------ #
    def get_page(self, page_id: int) -> Page:
        """Fetch a page through the cache, counting a disk read only on miss."""
        cached = self.lookup(page_id)
        if cached is not None:
            return cached
        page = self.disk.read_page(page_id)
        self.admit(page_id, page)
        return page

    def invalidate(self, page_id: Optional[int] = None) -> None:
        """Drop one page (or everything when ``page_id`` is ``None``) from the cache."""
        if page_id is None:
            self._frames.clear()
        else:
            self._frames.pop(page_id, None)

    def __len__(self) -> int:
        return len(self._frames)

    @property
    def hit_ratio(self) -> float:
        """Fraction of requests served from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
