"""Binary codec for disk-page payloads.

The persistent page stores (:mod:`repro.storage.pagestore`) keep page
contents as bytes; this module translates between the entry objects the
indexes put on pages and a compact binary form.  Four entry families get a
typed fast path -- UV-index leaf entries, R-tree leaf entries, grid-cell
``(oid, MBC)`` tuples, and full uncertain objects with their pdfs -- and
anything else falls back to a pickled blob, so third-party page contents
survive a save/open round trip as well.

All floats travel as IEEE-754 doubles (``struct`` format ``d``), which makes
decoding bit-exact: an engine reopened from a snapshot answers queries with
the same probabilities as the engine that was saved.
"""

from __future__ import annotations

import pickle
import struct
from typing import Any, List

from repro.geometry.circle import Circle
from repro.geometry.point import Point
from repro.geometry.rectangle import Rect
from repro.storage.page import Page
from repro.uncertain.objects import UncertainObject
from repro.uncertain.pdf import (
    HistogramPdf,
    TruncatedGaussianPdf,
    UncertaintyPdf,
    UniformPdf,
)

# Entry tags -------------------------------------------------------------- #
_TAG_PICKLE = 0
_TAG_UV_ENTRY = 1        # <oid, cx, cy, r>
_TAG_RTREE_LEAF = 2      # <oid, xmin, ymin, xmax, ymax>
_TAG_GRID_TUPLE = 3      # <oid, cx, cy, r>
_TAG_OBJECT = 4          # <oid, cx, cy, r, pdf>

# Pdf tags (payload of _TAG_OBJECT) --------------------------------------- #
_PDF_UNIFORM = 1
_PDF_GAUSSIAN = 2        # + sigma
_PDF_HISTOGRAM = 3       # + bar count + masses

_U64 = struct.Struct("<q")
_CIRCLE = struct.Struct("<3d")
_RECT = struct.Struct("<4d")
_LEN = struct.Struct("<I")
_DOUBLE = struct.Struct("<d")
_U16 = struct.Struct("<H")


def encode_entry(entry: Any) -> bytes:
    """Encode one page entry, preferring the typed layouts over pickle."""
    from repro.core.uv_index import UVIndexEntry
    from repro.rtree.node import RTreeEntry

    if isinstance(entry, UVIndexEntry):
        return bytes([_TAG_UV_ENTRY]) + _U64.pack(entry.oid) + _pack_circle(entry.mbc)
    if isinstance(entry, RTreeEntry) and entry.oid is not None and entry.child is None:
        return (
            bytes([_TAG_RTREE_LEAF])
            + _U64.pack(entry.oid)
            + _RECT.pack(entry.mbr.xmin, entry.mbr.ymin, entry.mbr.xmax, entry.mbr.ymax)
        )
    if (
        isinstance(entry, tuple)
        and len(entry) == 2
        and isinstance(entry[0], int)
        and isinstance(entry[1], Circle)
    ):
        return bytes([_TAG_GRID_TUPLE]) + _U64.pack(entry[0]) + _pack_circle(entry[1])
    if isinstance(entry, UncertainObject):
        pdf_blob = _encode_pdf(entry.pdf)
        if pdf_blob is not None:
            return (
                bytes([_TAG_OBJECT])
                + _U64.pack(entry.oid)
                + _pack_circle(entry.region)
                + pdf_blob
            )
    return bytes([_TAG_PICKLE]) + pickle.dumps(entry, protocol=pickle.HIGHEST_PROTOCOL)


def decode_entry(blob: bytes) -> Any:
    """Inverse of :func:`encode_entry`."""
    from repro.core.uv_index import UVIndexEntry
    from repro.rtree.node import RTreeEntry

    tag = blob[0]
    body = blob[1:]
    if tag == _TAG_PICKLE:
        return pickle.loads(body)
    if tag == _TAG_UV_ENTRY:
        (oid,) = _U64.unpack_from(body, 0)
        return UVIndexEntry(oid=oid, mbc=_unpack_circle(body, _U64.size))
    if tag == _TAG_RTREE_LEAF:
        (oid,) = _U64.unpack_from(body, 0)
        xmin, ymin, xmax, ymax = _RECT.unpack_from(body, _U64.size)
        return RTreeEntry(mbr=Rect(xmin, ymin, xmax, ymax), oid=oid)
    if tag == _TAG_GRID_TUPLE:
        (oid,) = _U64.unpack_from(body, 0)
        return (oid, _unpack_circle(body, _U64.size))
    if tag == _TAG_OBJECT:
        (oid,) = _U64.unpack_from(body, 0)
        region = _unpack_circle(body, _U64.size)
        pdf = _decode_pdf(body, _U64.size + _CIRCLE.size, region.radius)
        return UncertainObject(oid, region, pdf)
    raise ValueError(f"unknown page-entry tag: {tag}")


def encode_page(page: Page) -> bytes:
    """Serialize a whole page: entry count followed by length-prefixed entries."""
    parts = [_LEN.pack(len(page.entries))]
    for entry in page.entries:
        blob = encode_entry(entry)
        parts.append(_LEN.pack(len(blob)))
        parts.append(blob)
    return b"".join(parts)


def decode_page(page_id: int, capacity: int, payload: bytes) -> Page:
    """Rebuild a :class:`Page` from :func:`encode_page` output."""
    (count,) = _LEN.unpack_from(payload, 0)
    offset = _LEN.size
    entries: List[Any] = []
    for _ in range(count):
        (length,) = _LEN.unpack_from(payload, offset)
        offset += _LEN.size
        entries.append(decode_entry(payload[offset:offset + length]))
        offset += length
    return Page(page_id=page_id, capacity=capacity, entries=entries)


# ---------------------------------------------------------------------- #
# JSON snapshot helpers (shared by every structure that serializes rects)
# ---------------------------------------------------------------------- #
def rect_state(rect: Rect) -> List[float]:
    """A rectangle as the canonical ``[xmin, ymin, xmax, ymax]`` JSON list."""
    return [rect.xmin, rect.ymin, rect.xmax, rect.ymax]


def rect_from_state(state) -> Rect:
    """Inverse of :func:`rect_state`."""
    return Rect(state[0], state[1], state[2], state[3])


# ---------------------------------------------------------------------- #
# helpers
# ---------------------------------------------------------------------- #
def _pack_circle(circle: Circle) -> bytes:
    return _CIRCLE.pack(circle.center.x, circle.center.y, circle.radius)


def _unpack_circle(buffer: bytes, offset: int) -> Circle:
    cx, cy, r = _CIRCLE.unpack_from(buffer, offset)
    return Circle(Point(cx, cy), r)


def _encode_pdf(pdf: Any) -> "bytes | None":
    """Typed encoding for the built-in pdf families; ``None`` when unknown."""
    if type(pdf) is UniformPdf:
        return bytes([_PDF_UNIFORM])
    if type(pdf) is TruncatedGaussianPdf:
        return bytes([_PDF_GAUSSIAN]) + _DOUBLE.pack(pdf.sigma)
    if type(pdf) is HistogramPdf:
        return (
            bytes([_PDF_HISTOGRAM])
            + _U16.pack(pdf.bars)
            + struct.pack(f"<{pdf.bars}d", *pdf.masses)
        )
    return None


def _decode_pdf(buffer: bytes, offset: int, radius: float):
    tag = buffer[offset]
    offset += 1
    if tag == _PDF_UNIFORM:
        return UniformPdf(radius)
    if tag == _PDF_GAUSSIAN:
        (sigma,) = _DOUBLE.unpack_from(buffer, offset)
        return TruncatedGaussianPdf(radius, sigma)
    if tag == _PDF_HISTOGRAM:
        (bars,) = _U16.unpack_from(buffer, offset)
        masses = struct.unpack_from(f"<{bars}d", buffer, offset + _U16.size)
        # Restore the stored (already normalised) masses verbatim instead of
        # re-running the constructor's normalisation, which could perturb the
        # last ulp and break bit-identical probability parity after reopening.
        pdf = HistogramPdf.__new__(HistogramPdf)
        UncertaintyPdf.__init__(pdf, radius)
        pdf.masses = list(masses)
        pdf.bars = bars
        return pdf
    raise ValueError(f"unknown pdf tag: {tag}")
