"""Simulated disk manager.

Pages are held in a Python dictionary; "reading" or "writing" a page only
bumps the I/O counters.  This keeps the experiments deterministic and fast
while preserving the quantity the paper actually reports: the *number* of
page accesses each index performs per query or per construction.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Iterable, List

from repro.storage.page import DEFAULT_ENTRY_SIZE_BYTES, PAGE_SIZE_BYTES, Page, entries_per_page
from repro.storage.stats import IOStats


class DiskManager:
    """Allocates fixed-size pages and counts accesses.

    Args:
        entry_size_bytes: serialized size of one entry, used to derive the
            per-page capacity.
        page_size_bytes: page size (4 KB by default, as in the paper).
    """

    def __init__(
        self,
        entry_size_bytes: int = DEFAULT_ENTRY_SIZE_BYTES,
        page_size_bytes: int = PAGE_SIZE_BYTES,
        read_latency: float = 0.0,
    ):
        if read_latency < 0:
            raise ValueError("read latency must be non-negative")
        self.page_capacity = entries_per_page(entry_size_bytes, page_size_bytes)
        self.page_size_bytes = page_size_bytes
        self.entry_size_bytes = entry_size_bytes
        self.read_latency = read_latency
        self.stats = IOStats()
        self._pages: Dict[int, Page] = {}
        self._next_page_id = 0

    # ------------------------------------------------------------------ #
    # page lifecycle
    # ------------------------------------------------------------------ #
    def allocate_page(self, capacity: int | None = None) -> Page:
        """Allocate a new empty page and return it."""
        page = Page(self._next_page_id, capacity or self.page_capacity)
        self._pages[page.page_id] = page
        self._next_page_id += 1
        self.stats.pages_allocated += 1
        return page

    def free_page(self, page_id: int) -> None:
        """Release a page (e.g. when a UV-index leaf splits and drops its list)."""
        self._pages.pop(page_id, None)

    # ------------------------------------------------------------------ #
    # access (counted)
    # ------------------------------------------------------------------ #
    def read_page(self, page_id: int) -> Page:
        """Read a page, counting one I/O.

        When ``read_latency`` is non-zero the call also sleeps for that long,
        so that wall-clock measurements reflect the cost of a real page read
        (the paper's query times are dominated by exactly this cost on the
        R-tree side).

        Raises:
            KeyError: for an unknown page id.
        """
        self.stats.page_reads += 1
        if self.read_latency > 0.0:
            time.sleep(self.read_latency)
        return self._pages[page_id]

    def write_page(self, page: Page) -> None:
        """Write a page back, counting one I/O."""
        self.stats.page_writes += 1
        self._pages[page.page_id] = page

    def read_pages(self, page_ids: Iterable[int]) -> List[Page]:
        """Read several pages, counting one I/O each."""
        return [self.read_page(pid) for pid in page_ids]

    # ------------------------------------------------------------------ #
    # inspection (not counted -- used by tests and reports)
    # ------------------------------------------------------------------ #
    def peek_page(self, page_id: int) -> Page:
        """Access a page without counting I/O (for assertions and reports)."""
        return self._pages[page_id]

    @property
    def page_count(self) -> int:
        """Number of live pages."""
        return len(self._pages)

    def total_entries(self) -> int:
        """Total number of entries across all live pages."""
        return sum(len(page) for page in self._pages.values())

    def reset_stats(self) -> IOStats:
        """Reset the I/O counters, returning the counters prior to the reset."""
        before = self.stats.snapshot()
        self.stats.reset()
        return before
