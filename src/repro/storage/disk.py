"""The disk manager: page allocation, counted access, pluggable persistence.

Historically pages were held in a Python dictionary; "reading" or "writing" a
page only bumped the I/O counters.  The manager now fronts a pluggable
:class:`~repro.storage.pagestore.PageStore` -- the dict-backed simulator, a
real file with fixed-size page slots, or a memory-mapped read-mostly view --
while preserving the quantity the paper actually reports: the *number* of
page accesses each index performs per query or per construction.

Loaded pages are kept in a working set (``_cache``) so in-place page mutation
-- how the indexes maintain their leaf lists -- behaves identically over
every store; :meth:`flush` writes the working set back to the store, which is
what makes a built diagram durable on file-backed stores.

An optional integrated :class:`~repro.storage.buffer.BufferPool` sits on the
counted read path: hits are served without an I/O, misses count one read and
admit the page.  ``write_page`` and ``free_page`` invalidate the matching
pool frame, so splits and live updates can never leave a stale page behind.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional

from repro.storage.page import DEFAULT_ENTRY_SIZE_BYTES, PAGE_SIZE_BYTES, Page, entries_per_page
from repro.storage.pagestore import MemoryPageStore, PageStore
from repro.storage.stats import IOStats


class DiskManager:
    """Allocates fixed-size pages and counts accesses.

    Args:
        entry_size_bytes: serialized size of one entry, used to derive the
            per-page capacity.
        page_size_bytes: page size (4 KB by default, as in the paper).
        read_latency: optional simulated seconds per counted page read.
        store: the persistence substrate; defaults to the in-memory
            simulator, preserving the historical behaviour.  Pass a
            :class:`~repro.storage.pagestore.FilePageStore` opened on a
            snapshot to serve a previously built diagram.
        buffer_pages: capacity of the integrated LRU buffer pool; zero (the
            default) disables caching, so every counted read hits the store.
    """

    def __init__(
        self,
        entry_size_bytes: int = DEFAULT_ENTRY_SIZE_BYTES,
        page_size_bytes: int = PAGE_SIZE_BYTES,
        read_latency: float = 0.0,
        store: Optional[PageStore] = None,
        buffer_pages: int = 0,
    ):
        if read_latency < 0:
            raise ValueError("read latency must be non-negative")
        if buffer_pages < 0:
            raise ValueError("buffer_pages must be non-negative")
        self.page_capacity = entries_per_page(entry_size_bytes, page_size_bytes)
        self.page_size_bytes = page_size_bytes
        self.entry_size_bytes = entry_size_bytes
        self.read_latency = read_latency
        self.stats = IOStats()
        self.store: PageStore = store if store is not None else MemoryPageStore()
        self._cache: Dict[int, Page] = {}
        self._next_page_id = self.store.next_page_id()
        self.buffer_pool = None
        if buffer_pages > 0:
            from repro.storage.buffer import BufferPool

            self.buffer_pool = BufferPool(self, capacity=buffer_pages)

    # ------------------------------------------------------------------ #
    # page lifecycle
    # ------------------------------------------------------------------ #
    def allocate_page(self, capacity: int | None = None) -> Page:
        """Allocate a new empty page and return it."""
        page = Page(self._next_page_id, capacity or self.page_capacity)
        self._cache[page.page_id] = page
        self.store.store_page(page)
        self._next_page_id += 1
        self.stats.pages_allocated += 1
        return page

    def free_page(self, page_id: int) -> None:
        """Release a page (e.g. when a UV-index leaf splits and drops its list).

        The matching buffer-pool frame is invalidated so a freed (and later
        reallocated) id can never serve stale content from the cache.
        """
        self._cache.pop(page_id, None)
        self.store.delete_page(page_id)
        if self.buffer_pool is not None:
            self.buffer_pool.invalidate(page_id)

    # ------------------------------------------------------------------ #
    # access (counted)
    # ------------------------------------------------------------------ #
    def read_page(self, page_id: int) -> Page:
        """Read a page, counting one I/O (unless the buffer pool has it).

        When ``read_latency`` is non-zero the call also sleeps for that long,
        so that wall-clock measurements reflect the cost of a real page read
        (the paper's query times are dominated by exactly this cost on the
        R-tree side).

        Raises:
            KeyError: for an unknown page id.
        """
        if self.buffer_pool is not None:
            cached = self.buffer_pool.lookup(page_id)
            if cached is not None:
                self.stats.cache_hits += 1
                return cached
        page = self._materialise(page_id)
        self.stats.page_reads += 1
        if self.buffer_pool is not None:
            self.stats.cache_misses += 1
            self.buffer_pool.admit(page_id, page)
        if self.read_latency > 0.0:
            time.sleep(self.read_latency)
        return page

    def write_page(self, page: Page) -> None:
        """Write a page back, counting one I/O and refreshing the pool frame."""
        self.stats.page_writes += 1
        self._cache[page.page_id] = page
        self.store.store_page(page)
        self._next_page_id = max(self._next_page_id, page.page_id + 1)
        if self.buffer_pool is not None:
            # Coherence: drop any stale frame, then admit the fresh page.
            self.buffer_pool.invalidate(page.page_id)
            self.buffer_pool.admit(page.page_id, page, count_miss=False)

    def read_pages(self, page_ids: Iterable[int]) -> List[Page]:
        """Read several pages, counting one I/O each."""
        return [self.read_page(pid) for pid in page_ids]

    # ------------------------------------------------------------------ #
    # inspection (not counted -- used by tests and reports)
    # ------------------------------------------------------------------ #
    def peek_page(self, page_id: int) -> Page:
        """Access a page without counting I/O (for assertions and reports)."""
        return self._materialise(page_id)

    def _materialise(self, page_id: int) -> Page:
        """The live working-set object for a page, loading from the store once."""
        page = self._cache.get(page_id)
        if page is None:
            page = self.store.load_page(page_id)
            self._cache[page_id] = page
        return page

    @property
    def page_count(self) -> int:
        """Number of live pages."""
        return len(self.store)

    @property
    def next_page_id(self) -> int:
        """The id the next allocation will receive."""
        return self._next_page_id

    def total_entries(self) -> int:
        """Total number of entries across all live pages."""
        return sum(len(self._materialise(pid)) for pid in self.store.page_ids())

    def reset_stats(self) -> IOStats:
        """Reset the I/O counters, returning the counters prior to the reset."""
        before = self.stats.snapshot()
        self.stats.reset()
        return before

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #
    def rebind_store(self, store: PageStore) -> PageStore:
        """Swap the backing store, returning the old one (caller closes it).

        Used after saving a read-only-served engine over its own snapshot
        path: the rewritten file may have a different slot layout, so the
        old handle's cached geometry must not be consulted again.  The
        working set (and the id allocator) carries over unchanged.
        """
        old = self.store
        self.store = store
        self._next_page_id = max(self._next_page_id, store.next_page_id())
        return old

    def flush(self) -> None:
        """Write the working set back to the store and flush the store.

        In-place page mutations (leaf maintenance) only live in the working
        set until this runs; file-backed stores are authoritative afterwards.
        """
        for page in self._cache.values():
            self.store.store_page(page)
        self.store.flush()

    def close(self) -> None:
        """Flush and release the backing store."""
        self.flush()
        self.store.close()
