"""Disk-resident store of the objects' uncertainty information.

Both indexes (UV-index and R-tree) only keep *references* to objects; the
uncertainty region and pdf of an object live on disk and must be fetched
before qualification probabilities can be computed.  The object store packs
objects onto pages and serves lookups through the counting
:class:`~repro.storage.disk.DiskManager`, so "object retrieval" I/O and time
(Figure 6(c)) can be measured for both indexes in the same way.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from repro.storage.disk import DiskManager
from repro.uncertain.objects import UncertainObject


class ObjectStore:
    """Maps object ids to disk pages holding their full uncertainty information.

    Args:
        disk: the disk manager used for page allocation and counted reads.
        objects_per_page: how many full object descriptions fit in a page.
            The default assumes ~200 bytes per object (region + 20-bar
            histogram pdf) on a 4 KB page.
    """

    def __init__(self, disk: DiskManager, objects_per_page: int = 20):
        if objects_per_page < 1:
            raise ValueError("objects_per_page must be positive")
        self.disk = disk
        self.objects_per_page = objects_per_page
        self._page_of_object: Dict[int, int] = {}
        self._tail_page_id: "int | None" = None

    # ------------------------------------------------------------------ #
    # loading
    # ------------------------------------------------------------------ #
    def bulk_load(self, objects: Sequence[UncertainObject]) -> None:
        """Pack the objects onto pages in id order.

        Later calls (live insertions) keep filling the last page before
        allocating a new one, so insert/delete churn does not grow the page
        count without bound.
        """
        page = None
        if self._tail_page_id is not None and self._tail_page_id in self.disk.store:
            tail = self.disk.peek_page(self._tail_page_id)
            if not tail.is_full():
                page = tail
        for obj in objects:
            if page is None or page.is_full():
                page = self.disk.allocate_page(capacity=self.objects_per_page)
            page.add(obj)
            self._page_of_object[obj.oid] = page.page_id
        if page is not None:
            self._tail_page_id = page.page_id

    def remove(self, oid: int) -> bool:
        """Drop one object from its page (freeing the page when emptied)."""
        page_id = self._page_of_object.pop(oid, None)
        if page_id is None:
            return False
        page = self.disk.peek_page(page_id)
        page.entries = [obj for obj in page.entries if obj.oid != oid]
        if not page.entries:
            self.disk.free_page(page_id)
            if self._tail_page_id == page_id:
                self._tail_page_id = None
        return True

    # ------------------------------------------------------------------ #
    # retrieval (counted I/O)
    # ------------------------------------------------------------------ #
    def fetch(self, oid: int) -> UncertainObject:
        """Fetch one object, reading its page (one I/O)."""
        page = self.disk.read_page(self._page_of_object[oid])
        for obj in page.entries:
            if obj.oid == oid:
                return obj
        raise KeyError(f"object {oid} missing from its page")

    def fetch_many(self, oids: Iterable[int]) -> List[UncertainObject]:
        """Fetch several objects, reading each distinct page once."""
        wanted = list(oids)
        needed_pages: Dict[int, List[int]] = {}
        for oid in wanted:
            needed_pages.setdefault(self._page_of_object[oid], []).append(oid)
        found: Dict[int, UncertainObject] = {}
        for page_id, page_oids in needed_pages.items():
            page = self.disk.read_page(page_id)
            lookup = {obj.oid: obj for obj in page.entries}
            for oid in page_oids:
                found[oid] = lookup[oid]
        return [found[oid] for oid in wanted]

    def __contains__(self, oid: int) -> bool:
        return oid in self._page_of_object

    def __len__(self) -> int:
        return len(self._page_of_object)

    @property
    def page_count(self) -> int:
        """Distinct pages currently holding objects (cost-model input)."""
        return len(set(self._page_of_object.values()))

    # ------------------------------------------------------------------ #
    # persistence (diagram snapshots)
    # ------------------------------------------------------------------ #
    def snapshot_state(self) -> Dict[str, object]:
        """JSON-ready state: the id -> page directory (objects stay on pages)."""
        return {
            "objects_per_page": self.objects_per_page,
            "page_of_object": {str(oid): pid for oid, pid in self._page_of_object.items()},
        }

    @classmethod
    def from_snapshot(cls, state: Dict, disk: DiskManager) -> "ObjectStore":
        """Rebind a store to already-persisted object pages."""
        store = cls(disk, objects_per_page=state["objects_per_page"])
        store._page_of_object = {
            int(oid): pid for oid, pid in state["page_of_object"].items()
        }
        return store

    def load_all(self, order: Sequence[int]) -> List[UncertainObject]:
        """Materialise objects in the given id order without counting I/O.

        Used when reopening a snapshot: the engine's in-memory object list is
        rebuilt from the persisted pages (an offline, uncounted pass), so the
        first queries of a reopened engine pay exactly the same counted I/O
        as they would on the freshly built engine.
        """
        loaded: Dict[int, UncertainObject] = {}
        for page_id in sorted(set(self._page_of_object.values())):
            for obj in self.disk.peek_page(page_id).entries:
                loaded[obj.oid] = obj
        return [loaded[oid] for oid in order]
