"""Disk pages.

A page is a fixed-capacity container of opaque entries.  Both the UV-index
leaf lists (``<ID, MBC, pointer>`` tuples, Section V-A) and the R-tree leaf
nodes live on pages; the capacity is derived from a 4 KB page size and a
configurable per-entry size, matching the paper's setup (4 KB pages, R-tree
fanout 100).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List

PAGE_SIZE_BYTES = 4096
"""Default page size used throughout the library (the paper uses 4 KB pages)."""

DEFAULT_ENTRY_SIZE_BYTES = 40
"""Default serialized size of one leaf entry (id + MBC + pointer)."""


@dataclass
class Page:
    """A fixed-capacity disk page.

    Attributes:
        page_id: identifier assigned by the :class:`~repro.storage.disk.DiskManager`.
        capacity: maximum number of entries that fit in the page.
        entries: the stored entries (opaque to the storage layer).
    """

    page_id: int
    capacity: int
    entries: List[Any] = field(default_factory=list)

    def is_full(self) -> bool:
        """Return ``True`` when no further entry fits."""
        return len(self.entries) >= self.capacity

    def remaining(self) -> int:
        """Number of additional entries the page can hold."""
        return self.capacity - len(self.entries)

    def add(self, entry: Any) -> None:
        """Append ``entry``.

        Raises:
            OverflowError: if the page is already full.
        """
        if self.is_full():
            raise OverflowError(f"page {self.page_id} is full (capacity {self.capacity})")
        self.entries.append(entry)

    def __len__(self) -> int:
        return len(self.entries)


def entries_per_page(entry_size_bytes: int = DEFAULT_ENTRY_SIZE_BYTES,
                     page_size_bytes: int = PAGE_SIZE_BYTES) -> int:
    """Number of entries of the given size that fit in one page (at least one)."""
    if entry_size_bytes <= 0:
        raise ValueError("entry size must be positive")
    return max(1, page_size_bytes // entry_size_bytes)
